"""An ``ab``-style closed-loop load generator (§6.3, §7.3, §7.7).

``concurrency`` client coroutines each loop: connect → send a fixed-size
request → read the full response → close (non-keepalive), recording
per-request latency, until the shared request budget is exhausted.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.sockets import SocketApi
from repro.errors import SocketError


class LoadStats:
    """Latency/throughput statistics, ab-style (Table 5)."""

    def __init__(self):
        self.completed = 0
        self.errors = 0
        self.bytes_received = 0
        self.latencies: List[float] = []
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def record(self, latency: float) -> None:
        self.completed += 1
        self.latencies.append(latency)

    @property
    def duration(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def rps(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def latency_summary(self) -> dict:
        """min/mean/stddev/median/max in milliseconds (Table 5's columns)."""
        if not self.latencies:
            return {"min": 0.0, "mean": 0.0, "stddev": 0.0,
                    "median": 0.0, "max": 0.0}
        ms = sorted(latency * 1e3 for latency in self.latencies)
        n = len(ms)
        mean = sum(ms) / n
        variance = sum((x - mean) ** 2 for x in ms) / n
        median = (ms[n // 2] if n % 2 else (ms[n // 2 - 1] + ms[n // 2]) / 2)
        return {"min": ms[0], "mean": mean, "stddev": math.sqrt(variance),
                "median": median, "max": ms[-1]}

    def percentile(self, p: float) -> float:
        """p-th percentile latency in milliseconds."""
        if not self.latencies:
            return 0.0
        ms = sorted(latency * 1e3 for latency in self.latencies)
        index = min(len(ms) - 1, int(p / 100.0 * len(ms)))
        return ms[index]


class LoadGenerator:
    """Closed-loop request generator against one remote address."""

    def __init__(self, sim, api: SocketApi, remote: Tuple[str, int],
                 total_requests: int, concurrency: int = 100,
                 request_size: int = 64, response_size: int = 64,
                 keepalive: bool = False):
        self.sim = sim
        self.api = api
        self.remote = remote
        self.total_requests = total_requests
        self.concurrency = concurrency
        self.request_size = request_size
        self.response_size = response_size
        self.keepalive = keepalive
        self.stats = LoadStats()
        self._remaining = total_requests
        self._request = b"Q" * request_size

    def start(self, vm) -> list:
        """Spawn the client coroutines across the VM's vCPUs."""
        self.stats.started_at = self.sim.now
        return [
            vm.spawn(self._client(i % vm.vcpus))
            for i in range(self.concurrency)
        ]

    def _take(self) -> bool:
        if self._remaining <= 0:
            return False
        self._remaining -= 1
        return True

    def _client(self, vcpu: int):
        api = self.api
        while self._take():
            start = self.sim.now
            try:
                if self.keepalive:
                    yield from self._run_keepalive(vcpu)
                    continue
                sock = yield from api.socket(vcpu)
                yield from api.connect(sock, self.remote, vcpu)
                yield from api.send(sock, self._request, vcpu)
                got = 0
                while got < self.response_size:
                    data = yield from api.recv(sock, self.response_size, vcpu)
                    if not data:
                        break
                    got += len(data)
                yield from api.close(sock, vcpu)
                if got >= self.response_size:
                    self.stats.record(self.sim.now - start)
                    self.stats.bytes_received += got
                else:
                    self.stats.errors += 1
            except SocketError:
                self.stats.errors += 1
        self.stats.finished_at = self.sim.now

    def _run_keepalive(self, vcpu: int):
        """One persistent connection serving many requests."""
        api = self.api
        sock = yield from api.socket(vcpu)
        yield from api.connect(sock, self.remote, vcpu)
        served_one = False
        while served_one is False or self._take():
            served_one = True
            start = self.sim.now
            yield from api.send(sock, self._request, vcpu)
            got = 0
            while got < self.response_size:
                data = yield from api.recv(sock, self.response_size, vcpu)
                if not data:
                    break
                got += len(data)
            if got < self.response_size:
                self.stats.errors += 1
                break
            self.stats.record(self.sim.now - start)
            self.stats.bytes_received += got
        yield from api.close(sock, vcpu)
