"""Bulk TCP stream applications (the §7.3/§7.4 throughput workloads).

:class:`StreamSender` writes fixed-size messages as fast as the socket
accepts them for a configured duration; :class:`StreamReceiver` drains and
counts.  Goodput is measured at the application boundary, matching how
the paper reports send/receive throughput.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.sockets import SocketApi
from repro.errors import SocketError


class StreamStats:
    """Per-direction byte counters with a measurement window."""

    def __init__(self, sim):
        self.sim = sim
        self.bytes = 0
        self.messages = 0
        self.errors = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def mark_start(self) -> None:
        if self.started_at is None:
            self.started_at = self.sim.now

    def mark_finish(self) -> None:
        self.finished_at = self.sim.now

    @property
    def duration(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else self.sim.now
        return max(0.0, end - self.started_at)

    @property
    def goodput_bps(self) -> float:
        duration = self.duration
        return self.bytes * 8.0 / duration if duration > 0 else 0.0

    @property
    def goodput_gbps(self) -> float:
        return self.goodput_bps / 1e9


class StreamSender:
    """Sends ``message_size``-byte messages for ``duration`` seconds."""

    def __init__(self, sim, api: SocketApi, remote: Tuple[str, int],
                 message_size: int = 8192, duration: float = 1.0,
                 streams: int = 1):
        self.sim = sim
        self.api = api
        self.remote = remote
        self.message_size = message_size
        self.duration = duration
        self.streams = streams
        self.stats = StreamStats(sim)
        self._message = b"D" * message_size

    def start(self, vm) -> list:
        return [
            vm.spawn(self._stream(i % vm.vcpus))
            for i in range(self.streams)
        ]

    def _stream(self, vcpu: int):
        api = self.api
        try:
            sock = yield from api.socket(vcpu)
            yield from api.connect(sock, self.remote, vcpu)
        except SocketError:
            self.stats.errors += 1
            return
        self.stats.mark_start()
        deadline = self.sim.now + self.duration
        while self.sim.now < deadline:
            try:
                sent = yield from api.send(sock, self._message, vcpu)
            except SocketError:
                self.stats.errors += 1
                break
            self.stats.bytes += sent
            self.stats.messages += 1
        self.stats.mark_finish()
        try:
            yield from api.close(sock, vcpu)
        except SocketError:
            pass


class StreamReceiver:
    """Accepts streams on a port and drains them."""

    def __init__(self, sim, api: SocketApi, port: int,
                 read_size: int = 65536):
        self.sim = sim
        self.api = api
        self.port = port
        self.read_size = read_size
        self.stats = StreamStats(sim)

    def start(self, vm) -> list:
        return [vm.spawn(self._acceptor(vm))]

    def _acceptor(self, vm):
        listener = yield from self.api.socket(0)
        yield from self.api.bind(listener, self.port)
        yield from self.api.listen(listener, 128)
        index = 0
        while True:
            conn = yield from self.api.accept(listener)
            vm.spawn(self._drain(conn, index % vm.vcpus))
            index += 1

    def _drain(self, conn, vcpu: int):
        self.stats.mark_start()
        while True:
            try:
                data = yield from self.api.recv(conn, self.read_size, vcpu)
            except SocketError:
                self.stats.errors += 1
                break
            if not data:
                break
            self.stats.bytes += len(data)
            self.stats.messages += 1
        self.stats.mark_finish()
        try:
            yield from self.api.close(conn, vcpu)
        except SocketError:
            pass
