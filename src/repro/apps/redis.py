"""A redis-like key-value server and client (§6.3's other application).

The paper's point with nginx *and redis* is that real, protocol-speaking
applications run over any NSM without code change.  This model speaks a
RESP-ish line protocol (GET/SET/DEL/PING over a persistent connection)
against the plain socket facade, so the same server runs on the kernel
NSM, the mTCP NSM, or the baseline architecture.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.sockets import EPOLLIN, SocketApi
from repro.errors import SocketError

#: Cycles of server-side work per command (hash lookup + bookkeeping).
REDIS_COMMAND_CYCLES = 1_800.0


def encode_command(*parts: bytes) -> bytes:
    """Length-prefixed frame: ``<nparts> <len> <part> ...`` newline-free."""
    out = [b"*%d\r\n" % len(parts)]
    for part in parts:
        out.append(b"$%d\r\n" % len(part))
        out.append(part)
        out.append(b"\r\n")
    return b"".join(out)


class _FrameParser:
    """Incremental parser for the framed protocol above."""

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_frame(self) -> Optional[list]:
        """One complete command as a list of byte strings, or None."""
        buf = self._buffer
        if not buf.startswith(b"*"):
            return None
        head_end = buf.find(b"\r\n")
        if head_end < 0:
            return None
        count = int(buf[1:head_end])
        parts = []
        cursor = head_end + 2
        for _ in range(count):
            if not buf[cursor:cursor + 1] == b"$":
                return None
            len_end = buf.find(b"\r\n", cursor)
            if len_end < 0:
                return None
            length = int(buf[cursor + 1:len_end])
            start = len_end + 2
            end = start + length
            if len(buf) < end + 2:
                return None
            parts.append(bytes(buf[start:end]))
            cursor = end + 2
        del buf[:cursor]
        return parts


class RedisServer:
    """Keepalive epoll server executing GET/SET/DEL/PING commands."""

    def __init__(self, sim, api: SocketApi, port: int = 6379, cores=None):
        self.sim = sim
        self.api = api
        self.port = port
        self.cores = cores or []
        self.store: Dict[bytes, bytes] = {}
        self.commands = 0
        self.errors = 0
        self.listener = None

    def start(self, vm) -> list:
        return [vm.spawn(self._boot(vm))]

    def _boot(self, vm):
        self.listener = yield from self.api.socket(0)
        yield from self.api.bind(self.listener, self.port)
        yield from self.api.listen(self.listener, 512)
        for vcpu in range(vm.vcpus):
            vm.spawn(self._worker(vcpu))

    def _worker(self, vcpu: int):
        epoll = self.api.epoll_create()
        self.api.epoll_ctl(epoll, self.listener, EPOLLIN)
        parsers: Dict[int, _FrameParser] = {}
        socks: Dict[int, object] = {}
        while True:
            events = yield from self.api.epoll_wait(epoll, vcpu=vcpu)
            for fd, _mask in events:
                if fd == self.listener.fd:
                    while True:
                        conn = self.api.accept_nonblocking(self.listener)
                        if conn is None:
                            break
                        socks[conn.fd] = conn
                        parsers[conn.fd] = _FrameParser()
                        self.api.epoll_ctl(epoll, conn, EPOLLIN)
                    continue
                conn = socks.get(fd)
                if conn is None:
                    continue
                closed = yield from self._serve(conn, parsers[fd], vcpu)
                if closed:
                    self.api.epoll_ctl(epoll, conn, 0)
                    yield from self.api.close(conn, vcpu)
                    socks.pop(fd, None)
                    parsers.pop(fd, None)

    def _serve(self, conn, parser: _FrameParser, vcpu: int):
        try:
            data = yield from self.api.recv_nonblocking(conn, 1 << 20)
        except SocketError:
            self.errors += 1
            return True
        if data:
            parser.feed(data)
        while True:
            frame = parser.next_frame()
            if frame is None:
                break
            if self.cores:
                core = self.cores[vcpu % len(self.cores)]
                yield core.execute(REDIS_COMMAND_CYCLES, "redis.command")
            reply = self._execute(frame)
            self.commands += 1
            try:
                yield from self.api.send(conn, reply, vcpu)
            except SocketError:
                self.errors += 1
                return True
        return bool(conn.eof)

    def _execute(self, frame: list) -> bytes:
        command = frame[0].upper()
        if command == b"PING":
            return b"+PONG\r\n"
        if command == b"SET" and len(frame) == 3:
            self.store[frame[1]] = frame[2]
            return b"+OK\r\n"
        if command == b"GET" and len(frame) == 2:
            value = self.store.get(frame[1])
            if value is None:
                return b"$-1\r\n"
            return b"$%d\r\n%s\r\n" % (len(value), value)
        if command == b"DEL" and len(frame) == 2:
            existed = self.store.pop(frame[1], None) is not None
            return b":%d\r\n" % (1 if existed else 0)
        return b"-ERR unknown command\r\n"


class RedisClient:
    """A blocking client for tests and benchmarks."""

    def __init__(self, sim, api: SocketApi, remote: Tuple[str, int],
                 vcpu: int = 0):
        self.sim = sim
        self.api = api
        self.remote = remote
        self.vcpu = vcpu
        self.sock = None
        self._rx = bytearray()

    def connect(self):
        self.sock = yield from self.api.socket(self.vcpu)
        yield from self.api.connect(self.sock, self.remote, self.vcpu)

    def _read_reply(self):
        while True:
            newline = self._rx.find(b"\r\n")
            if newline >= 0:
                if self._rx.startswith(b"$") and not self._rx.startswith(b"$-1"):
                    length = int(self._rx[1:newline])
                    total = newline + 2 + length + 2
                    if len(self._rx) < total:
                        pass  # need more bytes
                    else:
                        value = bytes(self._rx[newline + 2:newline + 2 + length])
                        del self._rx[:total]
                        return value
                else:
                    line = bytes(self._rx[:newline])
                    del self._rx[:newline + 2]
                    return line
            data = yield from self.api.recv(self.sock, 65536, self.vcpu)
            if not data:
                raise SocketError("connection closed mid-reply")
            self._rx.extend(data)

    def command(self, *parts: bytes):
        yield from self.api.send(self.sock, encode_command(*parts),
                                 self.vcpu)
        reply = yield from self._read_reply()
        return reply

    def set(self, key: bytes, value: bytes):
        return (yield from self.command(b"SET", key, value))

    def get(self, key: bytes):
        return (yield from self.command(b"GET", key))

    def delete(self, key: bytes):
        return (yield from self.command(b"DEL", key))

    def ping(self):
        return (yield from self.command(b"PING"))

    def close(self):
        yield from self.api.close(self.sock, self.vcpu)
