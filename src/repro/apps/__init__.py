"""Application models.

Each application is a generator coroutine written against the BSD socket
facade (:class:`repro.core.sockets.SocketApi`), so the same code runs in a
NetKernel VM and in a baseline VM — the transparency property of §4.1.
"""

from repro.apps.epoll_server import EpollServer, ServerStats
from repro.apps.load_gen import LoadGenerator, LoadStats
from repro.apps.iperf import StreamSender, StreamReceiver, StreamStats
from repro.apps.app_gateway import ApplicationGateway
from repro.apps.redis import RedisServer, RedisClient

__all__ = [
    "EpollServer",
    "ServerStats",
    "LoadGenerator",
    "LoadStats",
    "StreamSender",
    "StreamReceiver",
    "StreamStats",
    "ApplicationGateway",
    "RedisServer",
    "RedisClient",
]
