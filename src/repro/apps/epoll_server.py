"""The paper's measurement server: multi-threaded epoll, single listening
port, fixed-size request → fixed-size response (§7.3, §7.4).

One worker coroutine runs per vCPU, each with its own epoll instance, all
watching the shared listener (the SO_REUSEPORT-style arrangement the
scaling experiments use).  Connections are non-keepalive by default, as
in the paper's short-connection workloads.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.sockets import EPOLLIN, SocketApi
from repro.errors import SocketError


class ServerStats:
    """Counters a server exposes to the experiment harness."""

    def __init__(self):
        self.requests = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.errors = 0
        self.active_connections = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ServerStats requests={self.requests} "
                f"bytes_in={self.bytes_in} bytes_out={self.bytes_out}>")


class EpollServer:
    """Request/response epoll server."""

    def __init__(self, sim, api: SocketApi, port: int,
                 request_size: int = 64, response_size: int = 64,
                 keepalive: bool = False, backlog: int = 1024,
                 app_cycles_per_request: float = 0.0, cores=None):
        self.sim = sim
        self.api = api
        self.port = port
        self.request_size = request_size
        self.response_size = response_size
        self.keepalive = keepalive
        self.backlog = backlog
        self.app_cycles = app_cycles_per_request
        self.cores = cores or []
        self.stats = ServerStats()
        self.listener = None
        self._response = b"R" * response_size

    def start(self, vm) -> list:
        """Spawn the listener setup plus one worker per vCPU; returns the
        worker processes."""
        boot = vm.spawn(self._boot(vm))
        return [boot]

    def _boot(self, vm):
        self.listener = yield from self.api.socket(0)
        yield from self.api.bind(self.listener, self.port)
        yield from self.api.listen(self.listener, self.backlog)
        yield from self.api.setsockopt(self.listener, "SO_REUSEPORT", 1)
        for vcpu in range(vm.vcpus):
            vm.spawn(self.worker(vcpu))

    def worker(self, vcpu: int):
        """One epoll loop: accept new connections, serve ready ones."""
        epoll = self.api.epoll_create()
        self.api.epoll_ctl(epoll, self.listener, EPOLLIN)
        buffers: Dict[int, bytearray] = {}
        socks: Dict[int, object] = {}
        while True:
            events = yield from self.api.epoll_wait(epoll, max_events=64,
                                                    vcpu=vcpu)
            for fd, _mask in events:
                if fd == self.listener.fd:
                    while True:
                        conn = self.api.accept_nonblocking(self.listener)
                        if conn is None:
                            break
                        self.stats.active_connections += 1
                        socks[conn.fd] = conn
                        buffers[conn.fd] = bytearray()
                        self.api.epoll_ctl(epoll, conn, EPOLLIN)
                    continue
                conn = socks.get(fd)
                if conn is None:
                    continue
                done = yield from self._serve_ready(conn, buffers[fd], vcpu)
                if done:
                    self.api.epoll_ctl(epoll, conn, 0)
                    yield from self.api.close(conn, vcpu)
                    socks.pop(fd, None)
                    buffers.pop(fd, None)
                    self.stats.active_connections -= 1

    def _serve_ready(self, conn, buffer: bytearray, vcpu: int):
        """Read what's there; respond once a full request accumulated.

        Returns True when the connection should be closed.
        """
        try:
            data = yield from self.api.recv_nonblocking(conn, 1 << 20)
        except SocketError:
            self.stats.errors += 1
            return True
        if data:
            buffer.extend(data)
            self.stats.bytes_in += len(data)
        while len(buffer) >= self.request_size:
            del buffer[:self.request_size]
            if self.app_cycles and self.cores:
                core = self.cores[vcpu % len(self.cores)]
                yield core.execute(self.app_cycles, "app.request")
            try:
                yield from self.api.send(conn, self._response, vcpu)
            except SocketError:
                self.stats.errors += 1
                return True
            self.stats.requests += 1
            self.stats.bytes_out += self.response_size
            if not self.keepalive:
                return True
        if conn.eof:
            return True
        return False
