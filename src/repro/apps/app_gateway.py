"""The application gateway (AG) model for the multiplexing use case (§6.1).

AGs are operator-deployed VMs doing load balancing / proxying of tenant
web traffic.  Functionally an AG is a keepalive epoll server whose
per-request application work (proxy/LB logic) is substantial — the
nginx-class cost from the cost model — and whose offered load follows a
bursty trace.

The trace-replay client drives an AG open-loop at the trace's per-interval
request rates, which is what makes consolidation (many bursty AGs on one
NSM) pay off.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.apps.epoll_server import EpollServer
from repro.core.sockets import SocketApi
from repro.errors import SocketError


class ApplicationGateway(EpollServer):
    """An AG: keepalive request/response service with proxy-grade app cost."""

    def __init__(self, sim, api: SocketApi, port: int, cores,
                 request_size: int = 64, response_size: int = 512,
                 app_cycles_per_request: float = 23_445.0):
        super().__init__(sim, api, port, request_size=request_size,
                         response_size=response_size, keepalive=True,
                         app_cycles_per_request=app_cycles_per_request,
                         cores=cores)


class TraceReplayClient:
    """Open-loop driver: sends requests at per-interval rates over a pool
    of persistent connections."""

    def __init__(self, sim, api: SocketApi, remote: Tuple[str, int],
                 rates_per_interval: Sequence[float], interval_sec: float,
                 connections: int = 8, request_size: int = 64,
                 response_size: int = 512):
        self.sim = sim
        self.api = api
        self.remote = remote
        self.rates = list(rates_per_interval)
        self.interval_sec = interval_sec
        self.connections = connections
        self.request_size = request_size
        self.response_size = response_size
        self._request = b"Q" * request_size
        self.sent = 0
        self.completed = 0
        self.errors = 0
        self.latencies: List[float] = []

    def start(self, vm) -> list:
        return [
            vm.spawn(self._connection(i, i % vm.vcpus))
            for i in range(self.connections)
        ]

    def _connection(self, index: int, vcpu: int):
        """One persistent connection paced at its share of the trace rate."""
        api = self.api
        try:
            sock = yield from api.socket(vcpu)
            yield from api.connect(sock, self.remote, vcpu)
        except SocketError:
            self.errors += 1
            return
        for rate in self.rates:
            share = rate / self.connections
            if share <= 0:
                yield self.sim.timeout(self.interval_sec)
                continue
            gap = 1.0 / share
            interval_end = self.sim.now + self.interval_sec
            while self.sim.now < interval_end:
                started = self.sim.now
                try:
                    yield from api.send(sock, self._request, vcpu)
                    self.sent += 1
                    got = 0
                    while got < self.response_size:
                        data = yield from api.recv(sock, self.response_size,
                                                   vcpu)
                        if not data:
                            break
                        got += len(data)
                    if got >= self.response_size:
                        self.completed += 1
                        self.latencies.append(self.sim.now - started)
                    else:
                        self.errors += 1
                        return
                except SocketError:
                    self.errors += 1
                    return
                elapsed = self.sim.now - started
                if elapsed < gap:
                    yield self.sim.timeout(gap - elapsed)
        try:
            yield from api.close(sock, vcpu)
        except SocketError:
            pass
