"""The multiplexing use case, analytically (§6.1, Fig. 8, Table 2).

Baseline: every AG is an independent VM provisioned for its own peak —
cores sit idle because utilization is low and bursts are rare.
NetKernel: the TCP work of all AGs runs in one shared NSM sized for the
*aggregate* (whose bursts don't align), and each AG keeps one core for
application logic.

Trace values are RPS normalized to the AG's *provisioned capacity*
(100 = the AG's reserved cores running flat out).  Fig. 8's AGs are the
three most utilized, provisioned at 4 cores each; Table 2's fleet AGs
reserve 2 cores each, as in the paper.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.trace.ag_trace import AgTrace, aggregate


def ag_request_cycles(cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Total per-request cycles of a baseline AG (app + proxy stack)."""
    return cost.ag_app_request_cycles + cost.ag_stack_request_cycles


def ag_rps_per_core(cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Requests/second one baseline AG core sustains."""
    return cost.core_hz / ag_request_cycles(cost)


def unit_rps(provisioned_cores: int,
             cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """RPS behind one normalized trace unit for an AG reserving
    ``provisioned_cores`` (100 units == the reservation's capacity)."""
    return provisioned_cores * ag_rps_per_core(cost) / 100.0


def nsm_capacity_rps(nsm_cores: int,
                     cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Request rate a kernel-stack NSM of ``nsm_cores`` sustains for AG
    (proxy) traffic."""
    speedup = CostModel.amdahl_speedup(nsm_cores, cost.alpha_ktcp_reuseport)
    return cost.core_hz / cost.ag_stack_request_cycles * speedup


def nsm_cores_for(traces: Sequence[AgTrace], provisioned_cores: int = 4,
                  cost: CostModel = DEFAULT_COST_MODEL,
                  headroom: float = 1.1) -> int:
    """Smallest NSM serving the aggregate stack load of these AGs."""
    agg_peak_units = max(aggregate(traces)) if traces else 0.0
    required = agg_peak_units * unit_rps(provisioned_cores, cost) * headroom
    cores = 1
    while nsm_capacity_rps(cores, cost) < required and cores < 64:
        cores += 1
    return cores


def app_capacity_units(provisioned_cores: int,
                       cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Peak units (at ``provisioned_cores`` normalization) a 1-core
    NetKernel AG VM — app logic only — sustains."""
    per_core = cost.core_hz / cost.ag_app_request_cycles
    return per_core / unit_rps(provisioned_cores, cost)


def fig8_comparison(traces: Sequence[AgTrace], provisioned_cores: int = 4,
                    cost: CostModel = DEFAULT_COST_MODEL) -> Dict:
    """Fig. 8: per-core RPS of baseline vs NetKernel for the same AGs.

    Baseline provisions each AG at its reservation; NetKernel runs one
    1-core VM per AG plus a right-sized shared NSM plus CoreEngine.
    """
    baseline_cores = provisioned_cores * len(traces)
    nsm_cores = nsm_cores_for(traces, provisioned_cores, cost)
    nk_cores = len(traces) + nsm_cores + 1
    agg_units = aggregate(traces)
    rps_series = [u * unit_rps(provisioned_cores, cost) for u in agg_units]
    cap_units = app_capacity_units(provisioned_cores, cost)
    infeasible = [t.name for t in traces if t.peak > cap_units]
    return {
        "baseline_cores": baseline_cores,
        "netkernel_cores": nk_cores,
        "nsm_cores": nsm_cores,
        "per_core_rps_baseline": [r / baseline_cores for r in rps_series],
        "per_core_rps_netkernel": [r / nk_cores for r in rps_series],
        "per_core_improvement": baseline_cores / nk_cores,
        "app_core_infeasible": infeasible,
    }


def table2_packing(fleet: Sequence[AgTrace], machine_cores: int = 32,
                   reserved_per_ag: int = 2, nsm_cores: int = 2,
                   nsm_util_limit: float = 0.6,
                   cost: CostModel = DEFAULT_COST_MODEL) -> Dict:
    """Table 2: AGs per 32-core machine under each scheme.

    Baseline fits ``machine_cores / reserved_per_ag`` AGs.  NetKernel
    dedicates one core to CoreEngine, ``nsm_cores`` to a shared NSM, and
    packs 1-core AG VMs into the rest as long as the NSM's *typical*
    (mean-aggregate) utilization stays under ``nsm_util_limit`` — burst
    minutes above the limit queue briefly and are reported, mirroring the
    paper's "well under 60% in the worst case for ~97% of the AGs".
    """
    baseline_ags = machine_cores // reserved_per_ag
    available_ag_cores = machine_cores - nsm_cores - 1
    capacity = nsm_capacity_rps(nsm_cores, cost)
    per_unit = unit_rps(reserved_per_ag, cost)

    packed: List[AgTrace] = []
    for trace in fleet:
        if len(packed) >= available_ag_cores:
            break
        candidate = packed + [trace]
        agg = aggregate(candidate)
        mean_util = (sum(agg) / len(agg)) * per_unit / capacity
        if mean_util > nsm_util_limit:
            break
        packed.append(trace)

    netkernel_ags = len(packed)
    agg = aggregate(packed) if packed else [0.0]
    utils = [u * per_unit / capacity for u in agg]
    under_limit = sum(1 for u in utils if u <= nsm_util_limit) / len(utils)
    return {
        "baseline_ags": baseline_ags,
        "netkernel_ags": netkernel_ags,
        "nsm_cores": nsm_cores,
        "coreengine_cores": 1,
        "extra_ags_fraction": (netkernel_ags - baseline_ags)
        / max(1, baseline_ags),
        # Cores per AG shrink from machine/baseline_ags to machine/nk_ags:
        # with 16 -> 29 AGs this is the paper's "save over 40% cores".
        "cores_saved_fraction": 1.0 - baseline_ags / max(1, netkernel_ags),
        "nsm_mean_utilization": sum(utils) / len(utils),
        "nsm_peak_utilization": max(utils),
        "fraction_minutes_under_limit": under_limit,
    }
