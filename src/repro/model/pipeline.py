"""Generic pipeline bottleneck solver.

A datapath is a chain of stages; each stage has a per-operation cycle
cost, a number of cores, and an Amdahl-style contention coefficient.  The
sustainable operation rate is the minimum stage capacity — the classic
bottleneck law, which is exactly how the paper reasons about its own
numbers ("the network stack's scalability limits its multicore
performance", §7.5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL


class Stage:
    """One pipeline stage."""

    def __init__(self, name: str, cycles_per_op: float, cores: int = 1,
                 alpha: float = 0.0, rate_cap: Optional[float] = None):
        if cycles_per_op < 0:
            raise ValueError(f"negative cycles for stage {name}")
        if cores < 1:
            raise ValueError(f"stage {name} needs >=1 core")
        self.name = name
        self.cycles_per_op = cycles_per_op
        self.cores = cores
        self.alpha = alpha
        #: Optional hard rate cap (ops/sec) independent of CPU, e.g. a NIC.
        self.rate_cap = rate_cap

    def capacity(self, core_hz: float) -> float:
        """Maximum operations/second this stage sustains."""
        if self.cycles_per_op == 0:
            cpu_rate = float("inf")
        else:
            speedup = CostModel.amdahl_speedup(self.cores, self.alpha)
            cpu_rate = core_hz * speedup / self.cycles_per_op
        if self.rate_cap is not None:
            return min(cpu_rate, self.rate_cap)
        return cpu_rate


class PipelineModel:
    """A chain of stages evaluated against one cost model."""

    def __init__(self, stages: Sequence[Stage],
                 cost_model: CostModel = DEFAULT_COST_MODEL):
        if not stages:
            raise ValueError("pipeline needs >=1 stage")
        self.stages: List[Stage] = list(stages)
        self.cost = cost_model

    def throughput_ops(self) -> float:
        """Sustainable ops/sec: the bottleneck stage's capacity."""
        return min(stage.capacity(self.cost.core_hz) for stage in self.stages)

    def bottleneck(self) -> Stage:
        """The stage that limits throughput."""
        return min(self.stages,
                   key=lambda stage: stage.capacity(self.cost.core_hz))

    def utilizations(self, offered_ops: float) -> dict:
        """Per-stage utilization at a given offered load."""
        return {
            stage.name: min(1.0, offered_ops / stage.capacity(self.cost.core_hz))
            for stage in self.stages
        }
