"""Analytic steady-state models.

The discrete-event simulation reproduces dynamics (fairness, isolation,
latency tails, trace replay); these models evaluate the same calibrated
cost model (:mod:`repro.cpu.cost_model`) in closed form for the paper's
steady-state throughput/RPS numbers, where event-level simulation of a
100G datapath would be pointless work.
"""

from repro.model.pipeline import Stage, PipelineModel
from repro.model import throughput
from repro.model import overhead
from repro.model import multiplexing
from repro.model import latency

__all__ = ["Stage", "PipelineModel", "throughput", "overhead",
           "multiplexing",
           "latency"]
