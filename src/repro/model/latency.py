"""Closed-loop latency model (the analytic companion to Table 5).

ab is a *closed* system: ``concurrency`` clients each wait for their
response before issuing the next request.  By Little's law, once the
server saturates, mean response time is simply concurrency / capacity —
which is why the paper's Table 5 means follow directly from Fig. 20's
capacities:

* kernel stack: 1000 / 70K rps  → ~14 ms  (paper mean: 16 ms)
* mTCP:         1000 / 190K rps → ~5.3 ms (paper mean: 4 ms)

The tail comes from SYN drops at the accept queue: a dropped SYN retries
after an exponentially backed-off RTO, so the k-th retry completes near
``rto_initial * (2^k - 1)`` — the 7-second maxima in the paper are ~5
retries at Linux's 1s initial SYN RTO (our simulator uses a smaller RTO,
hence proportionally smaller maxima in the DES Table 5).
"""

from __future__ import annotations

from typing import Dict

from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.model import throughput as tp


def closed_loop_mean_latency(concurrency: int, capacity_rps: float,
                             base_rtt: float = 100e-6) -> float:
    """Mean response time of a closed-loop benchmark, seconds."""
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1: {concurrency}")
    if capacity_rps <= 0:
        raise ValueError(f"capacity must be positive: {capacity_rps}")
    # Below saturation the response time is the bare RTT + service time;
    # at and past saturation Little's law dominates.
    unloaded = base_rtt + 1.0 / capacity_rps
    saturated = concurrency / capacity_rps
    return max(unloaded, saturated)


def syn_retry_completion_time(retries: int, rto_initial: float = 1.0) -> float:
    """When a connection whose SYN dropped ``retries`` times completes."""
    if retries < 0:
        raise ValueError(f"negative retries: {retries}")
    return rto_initial * (2 ** retries - 1)


def table5_prediction(concurrency: int = 1000,
                      cost: CostModel = DEFAULT_COST_MODEL) -> Dict[str, Dict]:
    """Predicted Table 5 means for the three systems (milliseconds)."""
    rows = {}
    for label, arch, stack in (("Baseline", "baseline", "kernel"),
                               ("NetKernel", "netkernel", "kernel"),
                               ("NetKernel, mTCP NSM", "netkernel", "mtcp")):
        capacity = tp.requests_per_second(arch, stack=stack, cost=cost)
        mean = closed_loop_mean_latency(concurrency, capacity)
        rows[label] = {
            "capacity_rps": capacity,
            "mean_ms": mean * 1e3,
        }
    return rows
