"""Closed-form capacity models for the paper's steady-state experiments.

Every function evaluates the calibrated :class:`~repro.cpu.cost_model.
CostModel` through the bottleneck law.  Where NetKernel's extra
hugepage→NSM copy cost depends on the achieved throughput (memory
bandwidth contention, §7.8), the model iterates to a fixed point.

Terminology: ``arch`` is "baseline" (stack in guest, Fig. 1a) or
"netkernel"; ``direction`` is "send" or "recv"; sizes are app-level
message bytes; results are application-level Gbps or requests/second.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL

#: Application-level line rate of the 100G NIC.
LINE_RATE_GBPS = 100.0
#: Effective receive-side ceiling: the paper's RX path tops out at 91 Gbps
#: even with 8 vCPUs (Fig. 19 / Table 4) — IRQ/DMA overheads keep the RX
#: direction below nominal line rate.
RECV_LINE_RATE_GBPS = 91.0
#: Colocated (same-host) traffic crosses the software vSwitch twice and
#: loses NIC offloads, inflating RX stack cycles by this factor (Fig. 10).
COLOCATED_STACK_FACTOR = 1.25
#: NQEs per short-connection request (accept, attach, data, send, result,
#: close) — the VM/NSM fixed overhead multiplier for RPS workloads.
NQES_PER_REQUEST = 6


def _speedup(cores: int, alpha: float) -> float:
    return CostModel.amdahl_speedup(cores, alpha)


# ---------------------------------------------------------------------------
# Component cycle costs
# ---------------------------------------------------------------------------


def kernel_tx_stack_cycles(size: int, streams: int,
                           cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Kernel-stack send-path cycles per message (TSO batching with >1
    stream, Fig. 15 vs Fig. 13)."""
    stack = cost.ktcp_tx_fixed + size * cost.ktcp_tx_per_byte
    if streams > 1:
        stack *= cost.ktcp_tx_multistream_discount
    return stack


def kernel_rx_stack_cycles(size: int, streams: int,
                           cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Kernel-stack receive-path cycles per message (interrupt coalescing
    with >1 stream, Fig. 16 vs Fig. 14)."""
    stack = cost.ktcp_rx_fixed + size * cost.ktcp_rx_per_byte
    if streams > 1:
        stack *= cost.ktcp_rx_multistream_discount
    return stack


def baseline_send_cycles(size: int, streams: int = 1,
                         cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Baseline guest: syscall + user→skb copy + stack TX, on one pool."""
    return (cost.baseline_syscall_fixed + size * cost.baseline_copy_per_byte
            + kernel_tx_stack_cycles(size, streams, cost))


def baseline_recv_cycles(size: int, streams: int = 1,
                         cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Baseline guest: syscall + skb copy + stack RX, on one pool."""
    return (cost.baseline_syscall_fixed + size * cost.baseline_copy_per_byte
            + kernel_rx_stack_cycles(size, streams, cost))


def nk_vm_send_cycles(size: int,
                      cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """NetKernel guest side of send(): syscall + hugepage copy + NQE."""
    return (cost.vm_send_fixed + cost.hugepage_copy_fixed
            + cost.guestlib_nqe_prep + cost.guestlib_nqe_complete
            + size * cost.vm_send_path_per_byte)


def nk_vm_recv_cycles(size: int,
                      cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """NetKernel guest side of recv(): copy-out + NQE + credit."""
    return (cost.vm_recv_fixed + cost.hugepage_copy_fixed
            + cost.guestlib_nqe_prep + cost.guestlib_nqe_complete
            + size * cost.vm_recv_path_per_byte)


def nk_nsm_cycles(size: int, streams: int, direction: str,
                  aggregate_gbps: float,
                  cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """NSM side: ServiceLib dispatch + stack + hugepage↔stack copy."""
    svc = cost.servicelib_nqe_dispatch + cost.servicelib_nqe_prep
    if direction == "send":
        svc += cost.nsm_send_fixed
        stack = kernel_tx_stack_cycles(size, streams, cost)
    else:
        svc += cost.nsm_recv_fixed
        stack = kernel_rx_stack_cycles(size, streams, cost)
    # The memory-bandwidth contention term is a send-side effect (the
    # hugepage read competes with the stack's own copies; Table 6 is a
    # send measurement).  The RX copy overlaps softirq processing.
    copy = cost.nsm_copy_cycles(size,
                                aggregate_gbps if direction == "send" else 0.0)
    return svc + stack + copy


# ---------------------------------------------------------------------------
# Bulk-stream throughput (Figs. 13-16, 18, 19; Table 4)
# ---------------------------------------------------------------------------


def stream_throughput_gbps(arch: str, direction: str, msg_size: int,
                           streams: int = 1, vm_vcpus: int = 1,
                           nsm_vcpus: int = 1, nsm_count: int = 1,
                           line_rate_gbps: float = LINE_RATE_GBPS,
                           cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Application goodput for bulk TCP streams.

    ``nsm_count`` > 1 models Table 4 (multiple independent NSMs serving
    one VM); the NSMs scale linearly with each NSM's internal contention
    applied per NSM.
    """
    if direction not in ("send", "recv"):
        raise ValueError(f"unknown direction {direction!r}")
    if direction == "recv":
        line_rate_gbps = min(line_rate_gbps, RECV_LINE_RATE_GBPS)
    alpha = (cost.alpha_ktcp_tx if direction == "send"
             else cost.alpha_ktcp_rx)
    hz = cost.core_hz

    if arch == "baseline":
        cycles = (baseline_send_cycles(msg_size, streams, cost)
                  if direction == "send"
                  else baseline_recv_cycles(msg_size, streams, cost))
        rate = hz * _speedup(vm_vcpus, alpha) / cycles
        return min(rate * msg_size * 8 / 1e9, line_rate_gbps)

    if arch != "netkernel":
        raise ValueError(f"unknown arch {arch!r}")

    vm_cycles = (nk_vm_send_cycles(msg_size, cost) if direction == "send"
                 else nk_vm_recv_cycles(msg_size, cost))
    vm_rate = hz * vm_vcpus / vm_cycles  # GuestLib path scales linearly

    # Fixed point: NSM copy cost depends on the achieved throughput.
    gbps = 10.0
    for _ in range(20):
        nsm_cycles = nk_nsm_cycles(msg_size, streams, direction, gbps, cost)
        nsm_rate = (hz * _speedup(nsm_vcpus, alpha) / nsm_cycles) * nsm_count
        rate = min(vm_rate, nsm_rate)
        new_gbps = min(rate * msg_size * 8 / 1e9, line_rate_gbps)
        if abs(new_gbps - gbps) < 1e-6:
            break
        gbps = new_gbps
    return gbps


# ---------------------------------------------------------------------------
# Hugepage memory copy microbenchmark (Fig. 12)
# ---------------------------------------------------------------------------


def memcopy_throughput_gbps(msg_size: int,
                            cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Fig. 12: the VM-side copy + NQE path alone, one core, no stack."""
    cycles = cost.hugepage_copy_cycles(msg_size)
    rate = cost.core_hz / cycles
    return rate * msg_size * 8 / 1e9


def nqe_switch_rate(batch: int, cores: int = 1,
                    cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Fig. 11: CoreEngine switching throughput, NQEs/second."""
    return cost.ce_nqe_rate(batch, cores)


# ---------------------------------------------------------------------------
# Short connections / RPS (Fig. 17, Fig. 20, Tables 3-4)
# ---------------------------------------------------------------------------


def _stack_request_cycles(stack: str, msg_size: int,
                          cost: CostModel) -> float:
    if stack == "kernel":
        return cost.ktcp_request_cycles + msg_size * cost.ktcp_request_per_byte
    if stack == "mtcp":
        return cost.mtcp_request_cycles + msg_size * cost.mtcp_request_per_byte
    raise ValueError(f"unknown stack {stack!r}")


def _stack_alpha(stack: str, reuseport: bool, cost: CostModel) -> float:
    if stack == "mtcp":
        return cost.alpha_mtcp  # per-core partitioned by design
    return (cost.alpha_ktcp_reuseport if reuseport
            else cost.alpha_ktcp_shared_accept)


def _app_request_cycles(app: str, cost: CostModel) -> float:
    if app == "epoll":
        return cost.epoll_app_request_cycles
    if app == "nginx":
        return cost.nginx_app_request_cycles
    raise ValueError(f"unknown app {app!r}")


def _app_alpha(app: str, cost: CostModel) -> float:
    return cost.alpha_nginx if app == "nginx" else 0.01


def requests_per_second(arch: str, stack: str = "kernel", vcpus: int = 1,
                        msg_size: int = 64, app: str = "epoll",
                        reuseport: bool = True,
                        vm_vcpus: Optional[int] = None, nsm_count: int = 1,
                        cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Short-connection request rate.

    ``vcpus`` is the stack's core count (guest cores for baseline, NSM
    cores under NetKernel); ``vm_vcpus`` defaults to ``vcpus`` for
    NetKernel's guest side.
    """
    hz = cost.core_hz
    app_cycles = _app_request_cycles(app, cost)
    stack_cycles = _stack_request_cycles(stack, msg_size, cost)
    copy_cycles = 2 * (cost.hugepage_copy_fixed
                       + msg_size * cost.hugepage_copy_per_byte)

    if arch == "baseline":
        total = (cost.baseline_app_request_cycles
                 if app == "epoll" else app_cycles)
        total += stack_cycles + 2 * msg_size * cost.baseline_copy_per_byte
        alpha = _stack_alpha(stack, reuseport, cost)
        return hz * _speedup(vcpus, alpha) / total

    if arch != "netkernel":
        raise ValueError(f"unknown arch {arch!r}")

    vm_vcpus = vm_vcpus if vm_vcpus is not None else vcpus
    nqe_vm = NQES_PER_REQUEST * (cost.guestlib_nqe_prep
                                 + cost.guestlib_nqe_complete)
    vm_cycles = app_cycles + nqe_vm + copy_cycles
    vm_rate = hz * _speedup(vm_vcpus, _app_alpha(app, cost)) / vm_cycles

    nqe_nsm = NQES_PER_REQUEST * (cost.servicelib_nqe_dispatch
                                  + cost.servicelib_nqe_prep)
    nsm_cycles = stack_cycles + nqe_nsm
    alpha = _stack_alpha(stack, reuseport, cost)
    nsm_rate = (hz * _speedup(vcpus, alpha) / nsm_cycles) * nsm_count
    return min(vm_rate, nsm_rate)


def short_conn_goodput_gbps(rps: float, msg_size: int) -> float:
    """The throughput companion series of Fig. 17."""
    return rps * msg_size * 8 / 1e9


# ---------------------------------------------------------------------------
# Shared-memory NSM vs baseline colocated TCP (Fig. 10)
# ---------------------------------------------------------------------------


def shm_throughput_gbps(msg_size: int, vm_vcpus: int = 2, nsm_vcpus: int = 2,
                        cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """NetKernel with the shared-memory NSM between colocated VMs."""
    hz = cost.core_hz
    send_rate = hz * vm_vcpus / nk_vm_send_cycles(msg_size, cost)
    recv_rate = hz * vm_vcpus / nk_vm_recv_cycles(msg_size, cost)
    nsm_cycles = cost.shm_nsm_fixed + msg_size * cost.shm_nsm_per_byte
    nsm_rate = hz * nsm_vcpus / nsm_cycles
    rate = min(send_rate, recv_rate, nsm_rate)
    gbps = rate * msg_size * 8 / 1e9
    return min(gbps, cost.mem_bw_cap_bps / 1e9)


def baseline_colocated_gbps(msg_size: int, send_vcpus: int = 2,
                            recv_vcpus: int = 5, streams: int = 8,
                            cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Baseline colocated VMs: full TCP through the vSwitch (Fig. 10)."""
    hz = cost.core_hz
    send_cycles = baseline_send_cycles(msg_size, streams, cost)
    recv_stack = kernel_rx_stack_cycles(msg_size, streams, cost)
    recv_cycles = (cost.baseline_syscall_fixed
                   + msg_size * cost.baseline_copy_per_byte
                   + recv_stack * COLOCATED_STACK_FACTOR)
    send_rate = hz * _speedup(send_vcpus, cost.alpha_ktcp_tx) / send_cycles
    recv_rate = hz * _speedup(recv_vcpus, cost.alpha_ktcp_rx) / recv_cycles
    rate = min(send_rate, recv_rate)
    return min(rate * msg_size * 8 / 1e9, LINE_RATE_GBPS)


# ---------------------------------------------------------------------------
# Paper reference series (for harness comparison printouts)
# ---------------------------------------------------------------------------

PAPER = {
    "fig11_nqe_rate_millions": {1: 8.0, 2: 14.4, 4: 22.3, 8: 41.4, 16: 65.9,
                                32: 100.2, 64: 119.6, 128: 178.2, 256: 198.5},
    "fig12_memcopy_gbps": {64: 4.9, 128: 8.3, 256: 14.7, 512: 25.8,
                           1024: 45.9, 2048: 80.3, 4096: 118.0, 8192: 144.2},
    "fig13_single_send_top_gbps": 30.9,
    "fig14_single_recv_top_gbps": 13.6,
    "fig15_multi_send_top_gbps": 55.2,
    "fig16_multi_recv_top_gbps": 17.4,
    "fig17_rps_64b": 70_000.0,
    "fig18_line_rate_vcpus": 3,
    "fig19_recv_8vcpu_gbps": 91.0,
    "fig20_kernel_rps": {1: 70_000, 8: 400_000},
    "fig20_mtcp_rps": {1: 190_000, 2: 366_000, 4: 652_000, 8: 1_100_000},
    "table3_kernel_rps": {1: 71_900, 2: 133_600, 4: 200_100},
    "table3_mtcp_rps": {1: 98_100, 2: 183_600, 4: 379_200},
    "table4_send_gbps": {1: 85.1, 2: 94.0, 3: 94.1, 4: 94.2},
    "table4_recv_gbps": {1: 33.6, 2: 61.2, 3: 91.0, 4: 91.0},
    "table4_rps": {1: 131_600, 2: 260_400, 3: 399_100, 4: 520_100},
}
