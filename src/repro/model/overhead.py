"""CPU-overhead models (Tables 6 and 7, §7.8).

The paper normalizes NetKernel's total cycles (VM + NSM) over Baseline's
(VM only) at matched performance.  We evaluate both from the component
model in :mod:`repro.model.throughput`.  Two regimes:

* **Bulk throughput (Table 6)** — the extra hugepage→NSM copy dominates
  and its per-byte cost grows with offered load (memory-bandwidth
  contention), so the ratio rises with throughput.  The paper measured
  1.14×→1.70× from 20G to 100G; our conservatively-charged NQE fixed
  costs put the curve higher at the low end, with the same monotone
  rising shape (recorded in EXPERIMENTS.md).
* **Short connections (Table 7)** — per-request NQE costs are small
  relative to connection setup/teardown, so overhead is mild and nearly
  flat (paper: 1.05–1.09×).
"""

from __future__ import annotations

from typing import Dict

from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.model import throughput as tp


def cycles_per_second_bulk(arch: str, gbps: float, msg_size: int = 8192,
                           streams: int = 8,
                           cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Total cycles/second to push ``gbps`` of bulk send traffic."""
    msgs_per_sec = gbps * 1e9 / (msg_size * 8)
    if arch == "baseline":
        return msgs_per_sec * tp.baseline_send_cycles(msg_size, streams, cost)
    if arch == "netkernel":
        vm = tp.nk_vm_send_cycles(msg_size, cost)
        nsm = tp.nk_nsm_cycles(msg_size, streams, "send", gbps, cost)
        return msgs_per_sec * (vm + nsm)
    raise ValueError(f"unknown arch {arch!r}")


def overhead_ratio_throughput(gbps: float, msg_size: int = 8192,
                              streams: int = 8,
                              cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Table 6: NetKernel cycles / Baseline cycles at equal throughput."""
    baseline = cycles_per_second_bulk("baseline", gbps, msg_size, streams,
                                      cost)
    netkernel = cycles_per_second_bulk("netkernel", gbps, msg_size, streams,
                                       cost)
    return netkernel / baseline


def cycles_per_request(arch: str, msg_size: int = 64, app: str = "epoll",
                       cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Total (VM [+ NSM]) cycles to serve one short connection."""
    stack = tp._stack_request_cycles("kernel", msg_size, cost)
    if arch == "baseline":
        return (cost.baseline_app_request_cycles + stack
                + 2 * msg_size * cost.baseline_copy_per_byte)
    if arch == "netkernel":
        nqe_vm = tp.NQES_PER_REQUEST * (cost.guestlib_nqe_prep
                                        + cost.guestlib_nqe_complete)
        nqe_nsm = tp.NQES_PER_REQUEST * (cost.servicelib_nqe_dispatch
                                         + cost.servicelib_nqe_prep)
        copies = 2 * (cost.hugepage_copy_fixed
                      + msg_size * cost.hugepage_copy_per_byte)
        vm = cost.epoll_app_request_cycles + nqe_vm + copies
        nsm = stack + nqe_nsm + 2 * msg_size * cost.nsm_copy_per_byte
        return vm + nsm
    raise ValueError(f"unknown arch {arch!r}")


def overhead_ratio_rps(rps: float, msg_size: int = 64,
                       cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Table 7: the per-request cycle ratio (flat in offered RPS, as the
    paper found: 1.05-1.09 across 100K-500K rps)."""
    if rps <= 0:
        raise ValueError(f"rps must be positive: {rps}")
    baseline = cycles_per_request("baseline", msg_size, cost=cost)
    netkernel = cycles_per_request("netkernel", msg_size, cost=cost)
    return netkernel / baseline


PAPER_TABLE6: Dict[float, float] = {20: 1.14, 40: 1.28, 60: 1.42,
                                    80: 1.56, 100: 1.70}
PAPER_TABLE7: Dict[float, float] = {100e3: 1.06, 200e3: 1.05, 300e3: 1.08,
                                    400e3: 1.08, 500e3: 1.09}
