"""CPU accounting across components.

The paper's overhead evaluation (§7.8) compares *total cycles spent by the
VM* in Baseline against *total cycles spent by the VM and NSM together* in
NetKernel.  :class:`CpuAccountant` aggregates the per-core ledgers so an
experiment can produce exactly that normalized comparison.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.cpu.core import Core


class CpuAccountant:
    """Aggregates busy-cycle ledgers over groups of cores."""

    def __init__(self):
        self._groups: Dict[str, List[Core]] = {}

    def register(self, group: str, cores: Iterable[Core]) -> None:
        """Add ``cores`` to an accounting group (e.g. "vm", "nsm", "ce")."""
        self._groups.setdefault(group, []).extend(cores)

    def groups(self) -> List[str]:
        return sorted(self._groups)

    def cycles(self, group: str) -> float:
        """Total busy cycles accumulated by a group."""
        return sum(core.busy_cycles for core in self._groups.get(group, []))

    def total_cycles(self, groups: Iterable[str]) -> float:
        return sum(self.cycles(group) for group in groups)

    def by_component(self, group: str) -> Dict[str, float]:
        """Busy cycles per labelled component within a group."""
        merged: Dict[str, float] = {}
        for core in self._groups.get(group, []):
            for component, cycles in core.busy_by_component.items():
                merged[component] = merged.get(component, 0.0) + cycles
        return merged

    def normalized_usage(self, numerator: Iterable[str],
                         denominator: Iterable[str]) -> float:
        """Cycle ratio between two group sets (Tables 6 and 7).

        Raises ZeroDivisionError if the denominator groups did no work,
        which always indicates a mis-wired experiment.
        """
        denom = self.total_cycles(denominator)
        return self.total_cycles(numerator) / denom
