"""The calibrated cost model.

Every constant that maps an operation to CPU cycles lives here, together
with the derivation from the paper's own measurements.  The same model
drives both the functional discrete-event simulation and the analytic
steady-state solver in :mod:`repro.model`, so the two agree by
construction.

Calibration sources (paper section / figure):

* **Fig. 11** — CoreEngine switches 8.0 M NQEs/s unbatched on one 2.3 GHz
  core → 2.3e9 / 8.0e6 ≈ 287 cycles per unbatched switch.  The batch curve
  saturates at 198.5 M NQEs/s at batch 256 → ≈ 11.6 cycles/NQE marginal.
  We model cycles(batch b) = ce_switch_fixed + b * ce_switch_per_nqe with
  ce_switch_fixed ≈ 277 and ce_switch_per_nqe ≈ 10.5.
* **Fig. 12** — hugepage copy path (user copy + NQE prep + switch + pointer
  hand-off) moves 4.9 Gbps at 64 B and 144.2 Gbps at 8 KiB on one core:
  cycles/msg = 240 at 64 B and 1046 at 8 KiB → per-byte ≈ 0.099, fixed ≈ 234.
* **Figs. 13–16** — kernel stack TX tops at 30.9 Gbps (1 stream) and
  55.2 Gbps (8 streams) per core; RX tops at 13.6 / 17.4 Gbps.  RX is far
  costlier than TX (interrupt-driven softirq processing), which fixes the
  per-byte TX/RX costs below.
* **Fig. 17 / Fig. 20 / Table 3** — short-connection capacity: kernel stack
  ≈ 70 K rps/core (≈ 32.9 K cycles per request), mTCP ≈ 190 K rps/core
  (≈ 12.1 K cycles).  nginx application logic ≈ 23.4 K cycles per request
  (98.1 K rps/core bound in Table 3's mTCP rows).
* **Fig. 18–20 / Table 4** — multicore scaling factors (lock/accept-queue
  contention) are fitted as Amdahl-style coefficients: rate(n) =
  n / (1 + alpha (n-1)) * rate(1).
* **Tables 6–7** — NetKernel's extra hugepage→NSM copy costs grow with
  aggregate throughput (cache-resident at low rates, DRAM-bound at high
  rates); modelled as a per-byte cost linear in offered load, fitted to the
  1.14×→1.70× overhead ramp.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import PAPER_CORE_HZ


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for every operation in the system.

    All ``*_fixed`` fields are cycles per operation; all ``*_per_byte``
    fields are cycles per byte.  Instances are frozen so a simulation's
    calibration cannot drift mid-run; use :meth:`with_overrides` to derive
    variants for ablations.
    """

    core_hz: float = PAPER_CORE_HZ

    # -- CoreEngine NQE switching (Fig. 11) --------------------------------
    ce_switch_fixed: float = 277.0
    ce_switch_per_nqe: float = 10.5
    #: Cycles burned probing an empty queue set while polling.
    ce_poll_empty: float = 60.0
    #: Cycles to (de)register an NK device (control plane, §5).
    ce_device_setup: float = 12_000.0

    # -- GuestLib / NK device (Figs. 4, 12; §4.6) --------------------------
    #: Translate one socket call to an NQE and enqueue it.
    guestlib_nqe_prep: float = 120.0
    #: Parse one response NQE and wake the blocked call.
    guestlib_nqe_complete: float = 110.0
    #: Copy user payload into (or out of) the hugepage region.
    hugepage_copy_fixed: float = 234.0
    hugepage_copy_per_byte: float = 0.099
    #: Interrupt-driven polling (§4.6): busy-poll window before sleeping.
    nk_poll_window_sec: float = 20e-6
    #: Cost of arming/handling one interrupt-based wakeup.
    nk_interrupt_cycles: float = 900.0

    # -- ServiceLib (§4.5) --------------------------------------------------
    #: Parse an NQE and invoke the stack API.
    servicelib_nqe_dispatch: float = 150.0
    #: Prepare a result/receive-event NQE.
    servicelib_nqe_prep: float = 110.0
    #: NSM-side per-message fixed cost of driving the stack through the
    #: exported kernel API (buffer setup, per-message bookkeeping) — what
    #: keeps NetKernel at parity with Baseline for small messages
    #: (Figs. 13-16 show overlap at every size).
    nsm_send_fixed: float = 380.0
    nsm_recv_fixed: float = 380.0
    #: NSM-side copy between hugepages and the stack's buffers, at low load
    #: (cache-resident).  See membw_contention_per_byte for the load term.
    nsm_copy_per_byte: float = 0.02
    #: Additional per-byte copy cost per Gbps of aggregate throughput
    #: (memory-bandwidth contention; calibrated to Table 6's 1.14→1.70 ramp).
    membw_contention_per_byte_per_gbps: float = 0.0015

    # -- Kernel TCP stack (Figs. 13-17) -------------------------------------
    #: Per-message send-path cost inside the stack (tcp_sendmsg + qdisc +
    #: driver TX), excluding the user copy.
    ktcp_tx_fixed: float = 600.0
    ktcp_tx_per_byte: float = 0.411
    #: Multi-stream TX benefits from TSO/qdisc batching (Fig. 15 vs 13);
    #: applied to the whole stack TX component, fitted to 55.2 Gbps.
    ktcp_tx_multistream_discount: float = 0.417
    #: Per-message receive-path cost (softirq, IRQ, skb handling).
    ktcp_rx_fixed: float = 1_600.0
    ktcp_rx_per_byte: float = 1.14
    #: Multi-stream RX benefits from interrupt coalescing (Fig. 16 vs 14);
    #: applied to the whole stack RX component, fitted to 17.4 Gbps.
    ktcp_rx_multistream_discount: float = 0.735
    #: Full short-connection request cost (accept+recv+send+close) in the
    #: kernel stack, small messages (Fig. 17: ~70K rps/core).
    ktcp_request_cycles: float = 30_400.0
    #: Added cycles per payload byte for request/response traffic.
    ktcp_request_per_byte: float = 0.9

    # -- mTCP stack (Fig. 20, Table 3) ---------------------------------------
    mtcp_request_cycles: float = 10_500.0
    mtcp_request_per_byte: float = 0.45
    mtcp_tx_per_byte: float = 0.23
    mtcp_rx_per_byte: float = 0.40

    # -- Multicore contention coefficients (Amdahl-style alphas) ------------
    #: Kernel stack, short connections, SO_REUSEPORT set (Fig. 20).
    alpha_ktcp_reuseport: float = 0.0573
    #: Kernel stack, short connections, single shared accept queue (Table 3).
    alpha_ktcp_shared_accept: float = 0.12
    #: Kernel stack bulk TX across cores (Fig. 18 / Table 4: 85.1G at 2).
    alpha_ktcp_tx: float = 0.15
    #: Kernel stack bulk RX across cores (Fig. 19: 91G at 8).
    alpha_ktcp_rx: float = 0.054
    #: mTCP short connections (per-core partitioned; Fig. 20).
    alpha_mtcp: float = 0.053
    #: nginx application logic across worker cores (Table 3 mTCP rows).
    alpha_nginx: float = 0.03

    # -- Applications --------------------------------------------------------
    #: epoll server application work per request (excluding stack).
    epoll_app_request_cycles: float = 2_500.0
    #: Baseline epoll server per-request app work (no NQE machinery).
    baseline_app_request_cycles: float = 2_500.0
    #: nginx application work per request (Table 3's mTCP rows bound at
    #: 98.1 K rps/core on the VM side).
    nginx_app_request_cycles: float = 22_000.0
    #: Application-gateway request costs (§6.1).  An AG proxies: each
    #: tenant request crosses two connections (front + back), so its
    #: stack share is ~2x a plain server's while its app logic fits one
    #: core at peak — which is exactly what lets NetKernel run each AG as
    #: a 1-core VM in Fig. 8.
    ag_app_request_cycles: float = 13_000.0
    ag_stack_request_cycles: float = 39_400.0
    #: VM-side send/recv fixed cost per message under NetKernel: the
    #: redirected call skips the guest TCP entry entirely, so it is far
    #: cheaper than a baseline syscall.  Calibrated (with the hugepage
    #: copy) to Table 4's VM-side ceilings: 94.2 Gbps send and 91 Gbps
    #: receive from a 1-vCPU VM with 8 KiB messages.
    vm_send_fixed: float = 330.0
    vm_recv_fixed: float = 380.0
    #: VM-side per-byte cost of the NetKernel send/recv paths (the
    #: hugepage copy dominates).
    vm_send_path_per_byte: float = 0.099
    vm_recv_path_per_byte: float = 0.099

    # -- Shared-memory NSM (Fig. 10) -----------------------------------------
    shm_nsm_fixed: float = 300.0
    shm_nsm_per_byte: float = 0.20
    #: Effective cap on cross-VM copy bandwidth (DRAM limit), bits/sec.
    mem_bw_cap_bps: float = 101e9

    # -- Baseline (stack in guest) -------------------------------------------
    #: User→skb copy inside the guest (baseline's single copy).
    baseline_copy_per_byte: float = 0.099
    baseline_syscall_fixed: float = 780.0
    #: vSwitch per-packet cost on the baseline colocated-VM path.
    vswitch_per_packet: float = 250.0

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy of this model with selected fields replaced."""
        return replace(self, **kwargs)

    # -- derived helpers -----------------------------------------------------

    def ce_batch_cycles(self, batch: int) -> float:
        """Cycles for CoreEngine to switch one batch of ``batch`` NQEs."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        return self.ce_switch_fixed + batch * self.ce_switch_per_nqe

    def ce_nqe_rate(self, batch: int, cores: int = 1) -> float:
        """NQEs/second CoreEngine sustains at a given batch size (Fig. 11)."""
        return cores * self.core_hz * batch / self.ce_batch_cycles(batch)

    def hugepage_copy_cycles(self, size: int) -> float:
        """VM-side cycles to stage one ``size``-byte message via hugepages."""
        return self.hugepage_copy_fixed + size * self.hugepage_copy_per_byte

    def nsm_copy_cycles(self, size: int, aggregate_gbps: float = 0.0) -> float:
        """NSM-side hugepage→stack copy, with memory-bandwidth contention."""
        per_byte = (self.nsm_copy_per_byte
                    + self.membw_contention_per_byte_per_gbps * aggregate_gbps)
        return size * per_byte

    @staticmethod
    def amdahl_speedup(cores: int, alpha: float) -> float:
        """Effective speedup of ``cores`` with contention ``alpha``."""
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        return cores / (1.0 + alpha * (cores - 1))


#: The model used everywhere unless an experiment overrides it.
DEFAULT_COST_MODEL = CostModel()
