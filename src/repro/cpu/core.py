"""A simulated CPU core.

A :class:`Core` serializes work: processes submit an amount of work in
cycles and wait for it to finish.  The core keeps a per-component busy-cycle
ledger so experiments can report CPU usage the way the paper does (total
cycles spent by the VM, the NSM, and CoreEngine — §7.8).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, TYPE_CHECKING

from repro.errors import ResourceError
from repro.sim.event import Event, Timeout
from repro.units import PAPER_CORE_HZ

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Core:
    """One physical core with a clock rate, executing work FIFO."""

    def __init__(self, sim: "Simulator", name: str = "core",
                 hz: float = PAPER_CORE_HZ):
        if hz <= 0:
            raise ResourceError(f"core clock must be positive, got {hz}")
        self.sim = sim
        self.name = name
        self.hz = hz
        self.busy_cycles: float = 0.0
        self.busy_by_component: Dict[str, float] = defaultdict(float)
        # Time at which the core finishes everything currently queued.
        self._free_at: float = 0.0

    def execute(self, cycles: float, component: str = "unattributed") -> Event:
        """Submit ``cycles`` of work; returns an event firing on completion.

        Work is serialized: if the core is busy, the new work starts when
        the queue drains.  ``component`` labels the cycles in the ledger.
        """
        if cycles < 0:
            raise ResourceError(f"negative work: {cycles}")
        self.busy_cycles += cycles
        self.busy_by_component[component] += cycles
        now = self.sim._now
        start = self._free_at if self._free_at > now else now
        self._free_at = start + cycles / self.hz
        return Timeout(self.sim, self._free_at - now)

    def charge(self, cycles: float, component: str = "unattributed") -> None:
        """Account cycles without modelling their latency.

        Used for background work (polling loops) whose cost matters for
        the CPU-usage ledger but whose latency is modelled elsewhere.
        """
        if cycles < 0:
            raise ResourceError(f"negative work: {cycles}")
        self.busy_cycles += cycles
        self.busy_by_component[component] += cycles

    def execute_nowait(self, cycles: float,
                       component: str = "unattributed") -> None:
        """Occupy core time without returning a completion event.

        Same timeline effect as :meth:`execute` (later work queues behind
        it), but allocation-free — the fast path for per-packet stack
        work nobody waits on directly.
        """
        if cycles < 0:
            raise ResourceError(f"negative work: {cycles}")
        self.busy_cycles += cycles
        self.busy_by_component[component] += cycles
        start = self._free_at if self._free_at > self.sim.now else self.sim.now
        self._free_at = start + cycles / self.hz

    @property
    def busy_until(self) -> float:
        """Simulated time at which currently queued work completes."""
        return self._free_at

    def utilization(self, window: Optional[float] = None) -> float:
        """Fraction of cycles spent busy since t=0 (or over ``window``)."""
        elapsed = window if window is not None else self.sim.now
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / (elapsed * self.hz))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Core {self.name} {self.hz / 1e9:.2f}GHz>"
