"""CPU substrate: cores as cycle-budget resources plus the calibrated
cost model that maps NetKernel/stack operations to cycles."""

from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.cpu.accounting import CpuAccountant

__all__ = ["Core", "CostModel", "DEFAULT_COST_MODEL", "CpuAccountant"]
