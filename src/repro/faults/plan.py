"""Declarative fault plans: what breaks, when, and how badly (§8).

A plan is data, not behaviour — :class:`~repro.faults.injector.FaultInjector`
interprets it against a live host.  Keeping plans declarative makes them
printable (``describe``), comparable across runs, and easy to sweep in
experiments (vary one knob, keep the seed).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError

#: Everything the injector knows how to break.
FAULT_KINDS = frozenset((
    "nsm-crash",            # ServiceLib stops, silently (the §8 scenario)
    "nsm-stall",            # ServiceLib freezes for a while, then resumes
    "doorbell-loss",        # kick() notifications dropped with probability p
    "ring-slot-drop",       # CE->ring writes lost with probability p
    "hugepage-exhaustion",  # a slab of the VM's region held hostage
    "delayed-completion",   # CE delivery toward a device delayed by d sec
    "overload",             # pin the overload governor at level 2
))

#: CLI-facing canonical plan names (see :func:`named_plan`).
PLAN_NAMES = (
    "nsm-crash",
    "nsm-stall",
    "doorbell-loss",
    "ring-drop",
    "hugepage-squeeze",
    "delayed-completion",
    "overload",
)


class FaultEvent:
    """One fault: a point event (crash, stall, squeeze) or a window
    during which a probabilistic hook is active."""

    __slots__ = ("kind", "at", "target", "duration", "probability", "param")

    def __init__(self, kind: str, at: float, target: Optional[str] = None,
                 duration: float = 0.0, probability: float = 1.0,
                 param: float = 0.0):
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; choose from {sorted(FAULT_KINDS)}")
        if at < 0 or duration < 0:
            raise ConfigurationError("fault times must be non-negative")
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(f"probability {probability} not in [0, 1]")
        self.kind = kind
        self.at = at
        self.target = target
        self.duration = duration
        self.probability = probability
        self.param = param

    @property
    def end(self) -> float:
        return self.at + self.duration

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "at": self.at,
            "target": self.target,
            "duration": self.duration,
            "probability": self.probability,
            "param": self.param,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FaultEvent {self.kind} at={self.at} "
                f"target={self.target}>")


class FaultPlan:
    """A seeded list of fault events, built fluently::

        plan = (FaultPlan(seed=7)
                .nsm_crash(0.2, "nsm-a")
                .doorbell_loss(0.05, 0.1, probability=0.2))
    """

    def __init__(self, seed: int = 0, name: str = "custom"):
        self.seed = seed
        self.name = name
        self.events: List[FaultEvent] = []

    def _add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    # -- builders ----------------------------------------------------------

    def nsm_crash(self, at: float, nsm: str) -> "FaultPlan":
        """Silently kill one NSM's ServiceLib at ``at`` (never recovers)."""
        return self._add(FaultEvent("nsm-crash", at, target=nsm))

    def nsm_stall(self, at: float, nsm: str, duration: float) -> "FaultPlan":
        """Freeze one NSM's pollers for ``duration`` seconds."""
        return self._add(FaultEvent("nsm-stall", at, target=nsm,
                                    duration=duration))

    def doorbell_loss(self, start: float, duration: float,
                      probability: float,
                      target: Optional[str] = None) -> "FaultPlan":
        """Drop device doorbells with ``probability`` inside the window
        (None target = every device)."""
        return self._add(FaultEvent("doorbell-loss", start, target=target,
                                    duration=duration,
                                    probability=probability))

    def ring_slot_drop(self, start: float, duration: float,
                       probability: float,
                       target: Optional[str] = None) -> "FaultPlan":
        """Lose CE->device ring writes with ``probability`` in the window."""
        return self._add(FaultEvent("ring-slot-drop", start, target=target,
                                    duration=duration,
                                    probability=probability))

    def hugepage_squeeze(self, at: float, vm: str, fraction: float,
                         duration: float) -> "FaultPlan":
        """Hold ``fraction`` of the VM's free hugepage bytes hostage for
        ``duration`` seconds (memory pressure / leak simulation)."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction {fraction} not in (0, 1]")
        return self._add(FaultEvent("hugepage-exhaustion", at, target=vm,
                                    duration=duration, param=fraction))

    def overload(self, at: float, duration: float) -> "FaultPlan":
        """Pin the host's overload governor(s) at level 2 (overloaded)
        for ``duration`` seconds: admission control and switch-side
        shedding engage regardless of the measured pressure signals.
        Enables overload control on the engine if it was off."""
        return self._add(FaultEvent("overload", at, duration=duration))

    def delayed_completion(self, start: float, duration: float,
                           delay: float,
                           target: Optional[str] = None) -> "FaultPlan":
        """Add ``delay`` seconds to every CE delivery toward the target
        device inside the window (slow consumer / PCIe congestion)."""
        return self._add(FaultEvent("delayed-completion", start,
                                    target=target, duration=duration,
                                    param=delay))

    # -- introspection -----------------------------------------------------

    def describe(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [event.describe() for event in self.events],
        }

    def __len__(self) -> int:
        return len(self.events)


def named_plan(name: str, duration: float, seed: int = 0,
               primary: str = "nsm-a", vm: str = "client") -> FaultPlan:
    """The canonical CLI/CI plans, parameterized by workload duration.

    Fault onsets are fractions of ``duration`` so the same plan name
    scales with the run length: the primary fault lands at 0.3×duration,
    probabilistic windows span [0.3, 0.5]×duration.
    """
    plan = FaultPlan(seed=seed, name=name)
    start, end = 0.3 * duration, 0.5 * duration
    window = end - start
    if name == "nsm-crash":
        plan.nsm_crash(start, primary)
    elif name == "nsm-stall":
        plan.nsm_stall(start, primary, duration=window)
    elif name == "doorbell-loss":
        plan.doorbell_loss(start, window, probability=0.2)
    elif name == "ring-drop":
        plan.ring_slot_drop(start, window, probability=0.05)
    elif name == "hugepage-squeeze":
        plan.hugepage_squeeze(start, vm, fraction=0.8, duration=window)
    elif name == "delayed-completion":
        plan.delayed_completion(start, window, delay=200e-6)
    elif name == "overload":
        plan.overload(start, duration=window)
    else:
        raise ConfigurationError(
            f"unknown plan {name!r}; choose from {PLAN_NAMES}")
    return plan
