"""The shared chaos workload: echo traffic under an armed fault plan.

``run_chaos`` builds a small canonical topology — a client VM served by
``nsm-a`` (the fault target), a standby ``nsm-b``, and an echo server VM
on ``nsm-srv`` — arms a :class:`~repro.faults.plan.FaultPlan`, and drives
paced request/response traffic through the failure.  The client survives
every plan by construction: per-op deadlines (GuestLib ``op_timeout``)
bound each blocking call, ECONNRESET from CoreEngine's quarantine path
fails the connection fast, and the loop reconnects until traffic stops.

The result carries a ``switch_fingerprint``: a SHA-256 over the
simulated timeline's counters (sim clock/event counts, CoreEngine switch
stats, application counters).  Process-global allocator state (NQE pool
hits, token values, socket-id counters) is deliberately excluded — it
differs between two runs in one process without affecting the timeline —
so the same (seed, plan) replays to the same fingerprint, which
``repro chaos --verify`` and the CI chaos-smoke job assert.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.core.host import NetKernelHost
from repro.core.nqe import NQE_POOL
from repro.errors import SocketError, TimedOutError, TryAgainError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, named_plan
from repro.net.fabric import Network
from repro.sim.engine import Simulator

#: Echo service port and request payload size.
ECHO_PORT = 7000
REQUEST_BYTES = 256
#: Gap between client requests (keeps the run cheap but steady).
REQUEST_PACING = 0.5e-3


def switch_fingerprint(payload: dict) -> str:
    """SHA-256 over a JSON-canonicalized counter dict."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _echo_server(api, vm):
    """Accept loop + per-connection echo children."""

    def echo(conn):
        try:
            while True:
                data = yield from api.recv(conn, 64 * 1024)
                if not data:
                    break
                yield from api.send(conn, data)
        except SocketError:
            pass

    listener = yield from api.socket()
    yield from api.bind(listener, ECHO_PORT)
    yield from api.listen(listener, backlog=128)
    while True:
        conn = yield from api.accept(listener)
        vm.spawn(echo(conn))


def _chaos_client(sim, api, counters, stop, fault_onset: float):
    """Paced request loop that reconnects through failures."""
    sock = None
    while not stop["flag"]:
        try:
            if sock is None:
                sock = yield from api.socket()
                yield from api.connect(sock, ("nsm-srv", ECHO_PORT))
                counters["connects"] += 1
            payload = bytes(REQUEST_BYTES)
            yield from api.send(sock, payload)
            got = b""
            while len(got) < REQUEST_BYTES:
                data = yield from api.recv(sock, REQUEST_BYTES - len(got))
                if not data:
                    raise SocketError("peer closed mid-reply")
                got += data
            counters["requests_ok"] += 1
            if (fault_onset is not None and sim.now > fault_onset
                    and counters["recovered_at"] is None):
                counters["recovered_at"] = sim.now
            yield sim.timeout(REQUEST_PACING)
        except TryAgainError:
            # Admission control: the op provably never issued, so the
            # socket is intact — back off and retry on it.
            counters["sheds"] += 1
            yield sim.timeout(2e-3)
        except TimedOutError:
            counters["timeouts"] += 1
            sock = yield from _scrap(api, sock)
            yield sim.timeout(2e-3)
        except SocketError as error:
            if error.errno_name == "ECONNRESET":
                counters["resets"] += 1
            else:
                counters["other_errors"] += 1
            sock = yield from _scrap(api, sock)
            yield sim.timeout(2e-3)
    if sock is not None:
        try:
            yield from api.close(sock)
        except SocketError:
            pass


def _scrap(api, sock):
    """Best-effort close of a failed socket; always returns None."""
    if sock is not None:
        try:
            yield from api.close(sock)
        except SocketError:
            pass
    return None


def run_chaos(seed: int = 0, plan_name: str = "nsm-crash",
              duration: float = 0.6,
              detection_timeout: float = 10e-3,
              heartbeat_interval: float = 2e-3,
              op_timeout: float = 20e-3,
              plan: Optional[FaultPlan] = None,
              fleet_probe=None,
              fleet_probe_interval: float = 2e-3) -> dict:
    """One seeded chaos run; returns counters, fingerprint, leak report.

    ``plan`` overrides ``plan_name`` when provided (for custom plans).
    The client stops issuing requests at 0.8×duration and the health
    monitor stops at 0.9×duration, so every in-flight element drains
    before the resource-balance checks at the end.

    ``fleet_probe`` (control-plane hook) is called with the live host
    every ``fleet_probe_interval`` simulated seconds, so ``GET /fleet``
    can reflect mid-run state (e.g. a quarantined NSM) while the job is
    still running.  The probe adds scheduler events, so two runs compare
    fingerprints only against runs with the same probe configuration —
    ``--verify`` and the CI jobs always use matching settings.
    """
    pool_outstanding_before = NQE_POOL.outstanding

    sim = Simulator()
    network = Network(sim)
    host = NetKernelHost(sim, network)
    host.add_nsm("nsm-a", vcpus=1, stack="kernel")
    host.add_nsm("nsm-b", vcpus=1, stack="kernel")
    host.add_nsm("nsm-srv", vcpus=1, stack="kernel")
    server_vm = host.add_vm("server", vcpus=1, nsm=host.nsms["nsm-srv"])
    client_vm = host.add_vm("client", vcpus=1, nsm=host.nsms["nsm-a"],
                            op_timeout=op_timeout, max_op_retries=3)
    host.enable_failover(heartbeat_interval=heartbeat_interval,
                         detection_timeout=detection_timeout)

    if plan is None:
        plan = named_plan(plan_name, duration, seed=seed,
                          primary="nsm-a", vm="client")
    injector = FaultInjector(sim, host, plan).arm()
    fault_onset = min((e.at for e in plan.events), default=None)

    counters = {
        "connects": 0,
        "requests_ok": 0,
        "resets": 0,
        "timeouts": 0,
        "sheds": 0,
        "other_errors": 0,
        "recovered_at": None,
    }
    stop = {"flag": False}

    server_api = host.socket_api(server_vm)
    client_api = host.socket_api(client_vm)
    server_vm.spawn(_echo_server(server_api, server_vm))
    client_vm.spawn(_chaos_client(sim, client_api, counters, stop,
                                  fault_onset))

    def stop_traffic():
        stop["flag"] = True

    if fleet_probe is not None:
        fleet_probe(host)
        sim.every(fleet_probe_interval, lambda: fleet_probe(host))

    sim.call_at(0.8 * duration, stop_traffic)
    # Quiesce heartbeats before the end so in-flight probes drain and the
    # pool-balance check below sees a stable state.
    sim.call_at(0.9 * duration,
                host.coreengine.disable_health_monitor)
    sim.run(until=duration)

    ce = host.coreengine
    ce_stats = ce.stats()
    timeline = {
        "sim": {
            "now": round(sim.now, 9),
            "events_processed": sim.events_processed,
            "events_cancelled": sim.events_cancelled,
        },
        "ce": ce_stats,
        "client": dict(counters, recovered_at=(
            round(counters["recovered_at"], 9)
            if counters["recovered_at"] is not None else None)),
        "nsms": {
            name: nsm.servicelib.stats()
            for name, nsm in sorted(host.nsms.items())
        },
        "guestlib": {
            name: {
                "nqes_sent": vm.guestlib.nqes_sent,
                "nqes_received": vm.guestlib.nqes_received,
                "op_timeouts": vm.guestlib.op_timeouts,
                "op_retries": vm.guestlib.op_retries,
                "admission_waits": vm.guestlib.admission_waits,
                "ops_shed": vm.guestlib.ops_shed,
                "send_results_shed": vm.guestlib.send_results_shed,
            }
            for name, vm in sorted(host.vms.items())
        },
        "per_vm_drops": {str(vm_id): drops for vm_id, drops
                         in ce.per_vm_drops().items()},
        "overload": (ce.overload.stats()
                     if ce.overload is not None else None),
        "faults": injector.stats(),
    }

    leaks = []
    for name, vm in sorted(host.vms.items()):
        region = ce.vm_device(vm.vm_id).hugepages
        if region.live_buffers or region.allocated:
            leaks.append(
                f"{name}: {region.live_buffers} live hugepage buffer(s), "
                f"{region.allocated} B still allocated")
    pool_delta = NQE_POOL.outstanding - pool_outstanding_before
    if pool_delta != 0:
        leaks.append(f"NQE pool outstanding delta {pool_delta:+d}")

    recovery = None
    if counters["recovered_at"] is not None and fault_onset is not None:
        recovery = counters["recovered_at"] - fault_onset

    return {
        "plan": plan.describe(),
        "seed": seed,
        "duration": duration,
        "detection_timeout": detection_timeout,
        "heartbeat_interval": heartbeat_interval,
        "op_timeout": op_timeout,
        "counters": counters,
        "fault_onset": fault_onset,
        "recovery_sec": recovery,
        "quarantined": dict(ce.quarantined),
        "ce": ce_stats,
        "faults": injector.stats(),
        "leaks": leaks,
        "switch_fingerprint": switch_fingerprint(timeline),
    }
