"""repro.faults: seeded, deterministic fault injection (§8).

A :class:`FaultPlan` declares *what* goes wrong and *when* (NSM crash,
NSM stall, doorbell loss, ring-slot drops, hugepage exhaustion, delayed
completions); a :class:`FaultInjector` arms the plan against a live
:class:`~repro.core.host.NetKernelHost`, scheduling one-shot faults on
the sim clock and installing itself as ``coreengine.faults`` so the
probabilistic hooks fire on the datapath.  All randomness comes from one
``random.Random(plan.seed)`` consumed in simulation order, so the same
seed and plan produce a bit-identical timeline — the property the
``repro chaos --verify`` CLI and the chaos-smoke CI job assert.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan, PLAN_NAMES, named_plan

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "PLAN_NAMES",
    "named_plan",
]
