"""The shared live-migration workload: echo streams across a migration.

``run_migration`` builds the same canonical topology as ``run_chaos`` —
a client VM served by ``nsm-a``, a target ``nsm-b``, and an echo server
VM on ``nsm-srv`` — opens ``streams`` concurrent echo connections, then
live-migrates the client VM from nsm-a to nsm-b mid-traffic via
:meth:`NetKernelHost.migrate_vm`.  The migration must be invisible to
the guest: every stream keeps its connection (zero ECONNRESET, zero
timeouts in the fault-free run) and every echoed byte matches the bytes
sent, because GuestLib ops *park* during the blackout instead of
failing.

An optional :class:`~repro.faults.plan.FaultPlan` overlaps the
migration with injected faults (the satellite-4 property tests); with a
plan armed the client gets per-op deadlines and failover is enabled, so
resource balance still holds even when the migration itself aborts.

The result carries the same deterministic ``switch_fingerprint`` scheme
as ``run_chaos`` — same (seed, streams, plan) replays bit-identically —
which ``repro migrate --verify`` and the CI migration-smoke job assert.
"""

from __future__ import annotations

from typing import Optional

from repro.core.host import NetKernelHost
from repro.core.nqe import NQE_POOL
from repro.errors import ConfigurationError, SocketError, TimedOutError
from repro.faults.chaos import ECHO_PORT, _echo_server, switch_fingerprint
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, named_plan
from repro.net.fabric import Network
from repro.sim.engine import Simulator

#: Gap between successive echo rounds on one stream.
STREAM_PACING = 0.5e-3
#: Stagger between stream start times (avoids a thundering connect herd).
STREAM_STAGGER = 50e-6


def _stream(sim, api, index: int, seed: int, payload_bytes: int,
            pacing: float, counters: dict, stop: dict):
    """One long-lived echo stream verifying payload integrity per round."""
    pattern = bytes((index * 31 + i * 7 + seed) % 256
                    for i in range(payload_bytes))
    yield sim.timeout(index * STREAM_STAGGER)
    sock = None
    clean = False
    try:
        sock = yield from api.socket()
        yield from api.connect(sock, ("nsm-srv", ECHO_PORT))
        counters["connects"] += 1
        while not stop["flag"]:
            yield from api.send(sock, pattern)
            counters["bytes_sent"] += payload_bytes
            got = b""
            while len(got) < payload_bytes:
                data = yield from api.recv(sock, payload_bytes - len(got))
                if not data:
                    raise SocketError("peer closed mid-echo")
                got += data
            counters["bytes_echoed"] += len(got)
            if got == pattern:
                counters["echoes_ok"] += 1
            else:
                counters["mismatches"] += 1
            yield sim.timeout(pacing)
        clean = True
    except TimedOutError:
        counters["timeouts"] += 1
    except SocketError as error:
        if error.errno_name == "ECONNRESET":
            counters["resets"] += 1
        else:
            counters["other_errors"] += 1
    if sock is not None:
        try:
            yield from api.close(sock)
            if clean:
                counters["closed_clean"] += 1
        except (SocketError, TimedOutError):
            pass


def run_migration(seed: int = 0, streams: int = 8, duration: float = 0.12,
                  migrate_at: float = 0.04, payload_bytes: int = 512,
                  pacing: float = STREAM_PACING,
                  plan: Optional[FaultPlan] = None,
                  plan_name: Optional[str] = None,
                  target_nsm: str = "nsm-b",
                  blackout_base_sec: float = 50e-6,
                  blackout_per_conn_sec: float = 1e-6,
                  op_timeout: Optional[float] = None) -> dict:
    """One seeded migration run; returns counters, record, fingerprint.

    ``plan`` / ``plan_name`` optionally overlap the migration with an
    armed fault plan (faults land in the [0.3, 0.5]×duration window, so
    the default ``migrate_at=0.04`` at duration 0.12 sits inside it).
    With a plan armed the client gets per-op deadlines and failover, so
    streams survive even when the migration aborts.  Traffic stops at
    0.8×duration so every in-flight element drains before the
    resource-balance checks.
    """
    pool_outstanding_before = NQE_POOL.outstanding

    if plan is None and plan_name is not None:
        plan = named_plan(plan_name, duration, seed=seed,
                          primary="nsm-a", vm="client")
    if plan is not None and op_timeout is None:
        op_timeout = 20e-3

    sim = Simulator()
    network = Network(sim)
    host = NetKernelHost(sim, network)
    host.add_nsm("nsm-a", vcpus=1, stack="kernel")
    host.add_nsm("nsm-b", vcpus=1, stack="kernel")
    host.add_nsm("nsm-srv", vcpus=1, stack="kernel")
    server_vm = host.add_vm("server", vcpus=1, nsm=host.nsms["nsm-srv"])
    client_vm = host.add_vm("client", vcpus=1, nsm=host.nsms["nsm-a"],
                            op_timeout=op_timeout,
                            max_op_retries=3 if op_timeout else 0)

    injector = None
    if plan is not None:
        host.enable_failover(heartbeat_interval=2e-3,
                             detection_timeout=10e-3)
        injector = FaultInjector(sim, host, plan).arm()

    counters = {
        "connects": 0,
        "echoes_ok": 0,
        "bytes_sent": 0,
        "bytes_echoed": 0,
        "mismatches": 0,
        "resets": 0,
        "timeouts": 0,
        "other_errors": 0,
        "closed_clean": 0,
    }
    stop = {"flag": False}
    migration = {"record": None, "error": None}

    server_api = host.socket_api(server_vm)
    client_api = host.socket_api(client_vm)
    server_vm.spawn(_echo_server(server_api, server_vm))
    for index in range(streams):
        client_vm.spawn(_stream(sim, client_api, index, seed, payload_bytes,
                                pacing, counters, stop))

    def _migrate():
        try:
            record = yield from host.migrate_vm(
                client_vm, host.nsms[target_nsm],
                blackout_base_sec=blackout_base_sec,
                blackout_per_conn_sec=blackout_per_conn_sec)
            migration["record"] = record
        except ConfigurationError as error:
            migration["error"] = str(error)

    sim.call_at(migrate_at, lambda: sim.process(_migrate()))

    def stop_traffic():
        stop["flag"] = True

    sim.call_at(0.8 * duration, stop_traffic)
    if plan is not None:
        sim.call_at(0.9 * duration, host.coreengine.disable_health_monitor)
    sim.run(until=duration)

    ce = host.coreengine
    ce_stats = ce.stats()
    record = migration["record"]
    record_public = None
    if record is not None:
        record_public = {k: v for k, v in record.items() if k != "tcbs"}
        record_public["tcb_states"] = sorted(
            tcb["state"] for tcb in record["tcbs"])
    timeline = {
        "sim": {
            "now": round(sim.now, 9),
            "events_processed": sim.events_processed,
            "events_cancelled": sim.events_cancelled,
        },
        "ce": ce_stats,
        "client": dict(counters),
        "nsms": {
            name: nsm.servicelib.stats()
            for name, nsm in sorted(host.nsms.items())
        },
        "guestlib": {
            name: {
                "nqes_sent": vm.guestlib.nqes_sent,
                "nqes_received": vm.guestlib.nqes_received,
                "op_timeouts": vm.guestlib.op_timeouts,
                "op_retries": vm.guestlib.op_retries,
            }
            for name, vm in sorted(host.vms.items())
        },
        "migration": {
            "record": record_public,
            "error": migration["error"],
        },
        "faults": injector.stats() if injector is not None else None,
    }

    leaks = []
    for name, vm in sorted(host.vms.items()):
        region = ce.vm_device(vm.vm_id).hugepages
        if region.live_buffers or region.allocated:
            leaks.append(
                f"{name}: {region.live_buffers} live hugepage buffer(s), "
                f"{region.allocated} B still allocated")
    pool_delta = NQE_POOL.outstanding - pool_outstanding_before
    if pool_delta != 0:
        leaks.append(f"NQE pool outstanding delta {pool_delta:+d}")

    return {
        "seed": seed,
        "streams": streams,
        "duration": duration,
        "migrate_at": migrate_at,
        "payload_bytes": payload_bytes,
        "plan": plan.describe() if plan is not None else None,
        "op_timeout": op_timeout,
        "counters": counters,
        "migration": record_public,
        "migration_error": migration["error"],
        "ce": ce_stats,
        "faults": injector.stats() if injector is not None else None,
        "table_size": len(ce.table),
        "client_table_entries": len(ce.table.entries_for_vm(
            client_vm.vm_id)),
        "leaks": leaks,
        "switch_fingerprint": switch_fingerprint(timeline),
    }
