"""The fault injector: arms a FaultPlan against a live host (§8).

Point faults (crash, stall, hugepage squeeze) are scheduled on the sim
clock with ``call_at``.  Probabilistic faults (doorbell loss, ring-slot
drops, delayed completions) install the injector as
``coreengine.faults``; CoreEngine consults the three hook methods on its
datapath.  Hooks draw from one seeded ``random.Random`` in simulation
order, so a given (plan, seed, workload) triple replays bit-identically.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan


class FaultInjector:
    """Interprets one :class:`FaultPlan` against one NetKernelHost."""

    def __init__(self, sim, host, plan: FaultPlan):
        self.sim = sim
        self.host = host
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self._armed = False

        # Window tables: (start, end, probability/param, device-or-None).
        self._doorbell_windows: List[Tuple[float, float, float, object]] = []
        self._slot_windows: List[Tuple[float, float, float, object]] = []
        self._delay_windows: List[Tuple[float, float, float, object]] = []
        self._held_buffers: List[object] = []

        # Per-kind counters (surfaced by stats()).
        self.crashes = 0
        self.stalls = 0
        self.doorbells_dropped = 0
        self.slots_dropped = 0
        self.completions_delayed = 0
        self.squeezes = 0
        self.squeezed_bytes = 0
        self.overloads = 0

    # -- wiring ------------------------------------------------------------

    def _device_for(self, target: Optional[str]):
        """Resolve a plan target name to its NK device (None = wildcard)."""
        if target is None:
            return None
        vm = self.host.vms.get(target)
        if vm is not None:
            return self.host.coreengine.vm_device(vm.vm_id)
        nsm = self.host.nsms.get(target)
        if nsm is not None:
            return nsm.servicelib.device
        raise ConfigurationError(
            f"fault target {target!r} names no VM or NSM on this host")

    def _servicelib_for(self, target: str):
        nsm = self.host.nsms.get(target)
        if nsm is None:
            raise ConfigurationError(f"no NSM named {target!r} to fault")
        return nsm.servicelib

    def arm(self) -> "FaultInjector":
        """Schedule the plan's faults and hook into CoreEngine."""
        if self._armed:
            raise ConfigurationError("injector already armed")
        self._armed = True
        self.host.coreengine.faults = self
        for event in self.plan.events:
            if event.kind == "nsm-crash":
                svc = self._servicelib_for(event.target)

                def do_crash(svc=svc):
                    self.crashes += 1
                    svc.crash()

                self.sim.call_at(event.at, do_crash)
            elif event.kind == "nsm-stall":
                svc = self._servicelib_for(event.target)

                def do_stall(svc=svc, duration=event.duration):
                    self.stalls += 1
                    svc.stall(duration)

                self.sim.call_at(event.at, do_stall)
            elif event.kind == "hugepage-exhaustion":
                self.sim.call_at(
                    event.at,
                    lambda e=event: self._squeeze(e.target, e.param,
                                                  e.duration))
            elif event.kind == "overload":
                self.sim.call_at(
                    event.at,
                    lambda e=event: self._force_overload(e.duration))
            elif event.kind == "doorbell-loss":
                self._doorbell_windows.append(
                    (event.at, event.end, event.probability,
                     self._device_for(event.target)))
            elif event.kind == "ring-slot-drop":
                self._slot_windows.append(
                    (event.at, event.end, event.probability,
                     self._device_for(event.target)))
            elif event.kind == "delayed-completion":
                self._delay_windows.append(
                    (event.at, event.end, event.param,
                     self._device_for(event.target)))
        return self

    def _squeeze(self, vm_name: str, fraction: float,
                 duration: float) -> None:
        """Grab ``fraction`` of the VM's free hugepage bytes, release
        them ``duration`` seconds later."""
        vm = self.host.vms.get(vm_name)
        if vm is None:
            raise ConfigurationError(f"no VM named {vm_name!r} to squeeze")
        region = self.host.coreengine.vm_device(vm.vm_id).hugepages
        hold = int(region.free_bytes * fraction)
        buffer = region.try_alloc(hold)
        if buffer is None:
            return
        self.squeezes += 1
        self.squeezed_bytes += hold
        self._held_buffers.append(buffer)

        def release(buffer=buffer):
            if not buffer.freed:
                buffer.free()
            if buffer in self._held_buffers:
                self._held_buffers.remove(buffer)

        self.sim.call_at(self.sim.now + duration, release)

    def _force_overload(self, duration: float) -> None:
        """Pin the host's overload governor(s) at level 2 until ``now +
        duration``.  Enables overload control first if the host runs
        without it (the fault is the opt-in)."""
        engine = self.host.coreengine
        if engine.overload is None:
            engine.enable_overload_control()
        until = self.sim.now + duration
        if hasattr(engine, "overload_governors"):
            governors = engine.overload_governors()
        else:
            governors = [engine.overload]
        self.overloads += 1
        for governor in governors:
            governor.force_overload(until)

    # -- CoreEngine hooks (hot path; must stay cheap) ----------------------

    def _roll(self, windows, device) -> Optional[float]:
        """The active window's parameter if one matches, else None.

        Probability windows consume one RNG draw per matching check —
        always in simulation order, so determinism holds."""
        now = self.sim.now
        for start, end, param, target in windows:
            if start <= now < end and (target is None or target is device):
                return param
        return None

    def should_drop_doorbell(self, device) -> bool:
        probability = self._roll(self._doorbell_windows, device)
        if probability is not None and self.rng.random() < probability:
            self.doorbells_dropped += 1
            return True
        return False

    def should_drop_slot(self, nqe, target_device) -> bool:
        probability = self._roll(self._slot_windows, target_device)
        if probability is not None and self.rng.random() < probability:
            self.slots_dropped += 1
            return True
        return False

    def completion_delay(self, target_device) -> float:
        delay = self._roll(self._delay_windows, target_device)
        if delay is not None and delay > 0:
            self.completions_delayed += 1
            return delay
        return 0.0

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        return {
            "crashes": self.crashes,
            "stalls": self.stalls,
            "doorbells_dropped": self.doorbells_dropped,
            "slots_dropped": self.slots_dropped,
            "completions_delayed": self.completions_delayed,
            "squeezes": self.squeezes,
            "squeezed_bytes": self.squeezed_bytes,
            "overloads": self.overloads,
            "buffers_held": len(self._held_buffers),
        }
