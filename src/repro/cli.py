"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Show every reproducible paper artifact with its title.
run <ids...>
    Regenerate the given tables/figures (or ``all``); ``--quick`` shrinks
    the packet-level experiments.
calibration
    Dump the calibrated cost model constants.
stats
    Run a quickstart-style workload with the repro.obs layer enabled and
    print per-stage NQE latency, ring occupancy, and token-bucket state
    (``--json`` for machine-readable output).
bench
    Run the wall-clock perf harness (``repro.perf``): events/sec, NQE
    switches/sec, fig. 8 multiplexing at 10/100/1000 VMs (ready-set vs
    full-scan speedup + timeline-identity check), and an end-to-end RPS
    workload.  ``--out`` writes one ``BENCH_<name>.json`` per result;
    ``--floors`` fails the run when a wall time regresses more than 2x
    against the checked-in floor.
chaos
    Run the seeded fault-injection workload (``repro.faults``): echo
    traffic through an NSM that crashes/stalls/drops per ``--plan``,
    with heartbeat failure detection and connection failover armed.
    ``--verify`` runs the plan twice and fails unless the two timelines
    are bit-identical (switch-fingerprint equality) and leak-free —
    the same check the chaos-smoke CI job runs.
migrate
    Run the seeded live-migration workload (``repro.faults.migration``):
    N echo streams through a client VM that is live-migrated between
    NSMs mid-traffic, with ops parked (not failed) during the blackout.
    ``--verify`` runs twice and fails unless bit-identical, leak-free,
    and zero-reset — the same check the migration-smoke CI job runs.
autoscale
    Run the NSM autoscaling workload (``repro.experiments.fig_autoscale``)
    on a sharded CoreEngine: the AG-trace aggregate drives NSM
    spawn/retire/rebalance through the serialized job queue, with echo
    traffic live across every migration.  ``--chaos`` crashes the
    busiest autoscaler-spawned NSM mid-rebalance.  Fails on any leaked
    forward, pool imbalance, or VM-on-inactive-NSM assignment — the
    same check the autoscale-smoke CI job runs.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import List

from repro.experiments import REGISTRY, run_experiment

QUICK_KWARGS = {
    "fig9": {"duration": 0.6},
    "fig21": {"scale": 0.02, "time_factor": 0.1},
    "table5": {"requests": 400, "concurrency": 80},
}

TITLES = {
    "fig7": "Traffic of three most-utilized AGs",
    "fig8": "Per-core RPS under multiplexing",
    "fig9": "VM-level fair bandwidth sharing",
    "fig10": "Shared-memory NSM vs colocated TCP",
    "fig11": "CoreEngine NQE switching vs batch size",
    "fig12": "Hugepage memory-copy throughput",
    "fig13": "Single-stream send throughput",
    "fig14": "Single-stream receive throughput",
    "fig15": "8-stream send throughput",
    "fig16": "8-stream receive throughput",
    "fig17": "Short-connection RPS vs message size",
    "fig18": "Send scaling with vCPUs",
    "fig19": "Receive scaling with vCPUs",
    "fig20": "RPS scaling (kernel and mTCP NSMs)",
    "fig21": "Isolation with per-VM rate caps",
    "table2": "AG packing on a 32-core machine",
    "table3": "nginx over kernel vs mTCP NSMs",
    "table4": "Scaling with number of NSMs",
    "table5": "Response-time distribution",
    "table6": "CPU overhead vs throughput",
    "table7": "CPU overhead vs request rate",
    "ablation-batching": "Ablation: CoreEngine batch size",
    "ablation-polling": "Ablation: interrupt-driven polling window",
    "ablation-pipelining": "Ablation: pipelined vs synchronous send()",
    "ablation-queues": "Ablation: lockless per-vCPU queues vs shared",
    "ablation-double-stack": "Ablation: stack-on-hypervisor alternative",
    "fig-failover": "Recovery time vs failure-detection timeout",
    "fig-migration": "Migration downtime vs live-connection count",
    "fig-autoscale": "NSM autoscaling on the AG-trace load signal",
}


def _cmd_list() -> int:
    for exp_id in sorted(REGISTRY, key=_sort_key):
        print(f"  {exp_id:<8} {TITLES.get(exp_id, '')}")
    return 0


def _sort_key(exp_id: str):
    digits = "".join(ch for ch in exp_id if ch.isdigit())
    if exp_id.startswith("fig") and digits:
        kind = 0
    elif exp_id.startswith("table") and digits:
        kind = 1
    else:
        return (2, 0, exp_id)
    return (kind, int(digits), "")


def _cmd_run(ids: List[str], quick: bool) -> int:
    if ids == ["all"]:
        ids = sorted(REGISTRY, key=_sort_key)
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 1
    for exp_id in ids:
        kwargs = QUICK_KWARGS.get(exp_id, {}) if quick else {}
        started = time.time()
        result = run_experiment(exp_id, **kwargs)
        print(result.table_str())
        print(f"({time.time() - started:.1f}s wall)\n")
    return 0


def _stats_workload(transfer_bytes: int):
    """The quickstart topology with observability on: one kernel-stack
    NSM serving a rate-capped client VM talking to a server VM."""
    from repro import NetKernelHost, Network, Simulator
    from repro.units import gbps, mbps, usec

    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(100),
                      default_delay_sec=usec(25))
    host = NetKernelHost(sim, network)
    obs = host.enable_observability(sample_interval=100e-6)

    nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
    vm_server = host.add_vm("vm-server", vcpus=1, nsm=nsm)
    vm_client = host.add_vm("vm-client", vcpus=1, nsm=nsm)
    # Exercise both bucket kinds so the report shows isolation state.
    host.coreengine.set_bandwidth_limit(vm_client.vm_id, mbps(500))
    host.coreengine.set_ops_limit(vm_client.vm_id, 200_000)
    api_server = host.socket_api(vm_server)
    api_client = host.socket_api(vm_client)
    payload = b"x" * transfer_bytes
    done = {}

    def server():
        listener = yield from api_server.socket()
        yield from api_server.bind(listener, 80)
        yield from api_server.listen(listener, backlog=64)
        conn = yield from api_server.accept(listener)
        received = 0
        while received < transfer_bytes:
            data = yield from api_server.recv(conn, 1 << 16)
            if not data:
                break
            received += len(data)
        yield from api_server.send(conn, b"OK")
        yield from api_server.close(conn)
        done["server_bytes"] = received

    def client():
        yield sim.timeout(0.001)  # let the server bind first
        sock = yield from api_client.socket()
        yield from api_client.connect(sock, ("nsm0", 80))
        yield from api_client.send(sock, payload)
        reply = yield from api_client.recv(sock, 4096)
        yield from api_client.close(sock)
        done["reply"] = reply

    vm_server.spawn(server())
    vm_client.spawn(client())
    sim.run(until=2.0)
    return obs, done


def _cmd_stats(as_json: bool, transfer_bytes: int) -> int:
    obs, done = _stats_workload(transfer_bytes)
    report = obs.report()
    if as_json:
        print(json.dumps(report, indent=2, default=str))
        return 0
    from repro.experiments.report import obs_ops_table, obs_stage_table

    print(obs_stage_table(report).table_str())
    print()
    print(obs_ops_table(report).table_str())
    print("\nToken buckets (per VM):")
    for vm, buckets in sorted(report["token_buckets"].items()):
        for kind, state in sorted(buckets.items()):
            print(f"  vm={vm} {kind:<3} rate={state['rate']:.3g}/s "
                  f"burst={state['burst']:.3g} tokens={state['tokens']:.3g}")
    print("\nRing peak occupancy (non-empty):")
    for ring, fields in sorted(report["rings"].items()):
        if fields.get("peak_depth"):
            print(f"  {ring:<40} peak={fields['peak_depth']:.0f} "
                  f"now={fields['depth']:.0f}")
    ce = report["coreengine"]
    print(f"\nCoreEngine: {ce['nqes_switched']} NQEs in {ce['batches']} "
          f"batches (avg {ce['avg_batch']:.2f}), "
          f"{ce['rate_limited_stalls']} rate-limit stalls, "
          f"{ce['nqes_dropped']} drops; "
          f"transferred {done.get('server_bytes', 0)} B")
    print(f"Scheduler: mode={ce['sched.mode']} "
          f"passes={ce['sched.passes']} "
          f"stale_wakeups={ce['sched.stale_wakeups']} "
          "(stall timeouts disarmed after a doorbell won the race)")
    return 0


def _cmd_bench(names: List[str], quick: bool, out_dir: str,
               floors_path: str) -> int:
    from repro.perf import check_floors, run_benchmarks, write_results

    try:
        results = run_benchmarks(names or None, quick=quick)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 1
    for name, result in results.items():
        line = (f"  {name:<16} wall={result['wall_s']:.3f}s "
                f"events={result['events']} "
                f"peak_rss={result['peak_rss']}KiB")
        if "speedup_vs_full" in result:
            line += (f" speedup={result['speedup_vs_full']:.2f}x "
                     f"identical={result['fingerprint_match']}")
        print(line)
    if out_dir:
        for path in write_results(results, out_dir):
            print(f"wrote {path}")
    exit_code = 0
    mismatched = [n for n, r in results.items()
                  if r.get("fingerprint_match") is False]
    if mismatched:
        print(f"TIMELINE DIVERGENCE between scan modes: {mismatched}",
              file=sys.stderr)
        exit_code = 1
    if floors_path:
        with open(floors_path) as handle:
            floors = json.load(handle)
        failures = check_floors(results, floors)
        for failure in failures:
            print(f"FLOOR REGRESSION: {failure}", file=sys.stderr)
        if failures:
            exit_code = 1
    return exit_code


def _cmd_chaos(seed: int, plan: str, duration: float,
               detection_timeout: float, heartbeat_interval: float,
               as_json: bool, verify: bool) -> int:
    from repro.faults.chaos import run_chaos

    runs = 2 if verify else 1
    results = [run_chaos(seed=seed, plan_name=plan, duration=duration,
                         detection_timeout=detection_timeout,
                         heartbeat_interval=heartbeat_interval)
               for _ in range(runs)]
    result = results[0]
    if as_json:
        print(json.dumps(result, indent=2, default=str))
    else:
        counters = result["counters"]
        recovery = result["recovery_sec"]
        print(f"plan={plan} seed={seed} duration={duration}s "
              f"detect={detection_timeout * 1e3:g}ms")
        print(f"  requests_ok={counters['requests_ok']} "
              f"connects={counters['connects']} "
              f"resets={counters['resets']} "
              f"timeouts={counters['timeouts']}")
        print(f"  faults={result['faults']}")
        print(f"  quarantined={result['quarantined']} "
              f"recovery="
              f"{'n/a' if recovery is None else f'{recovery * 1e3:.2f}ms'}")
        print(f"  fingerprint={result['switch_fingerprint'][:16]}…")
    exit_code = 0
    for index, run in enumerate(results):
        for leak in run["leaks"]:
            print(f"RESOURCE LEAK (run {index + 1}): {leak}",
                  file=sys.stderr)
            exit_code = 1
    if verify:
        fingerprints = {run["switch_fingerprint"] for run in results}
        if len(fingerprints) != 1:
            print("TIMELINE DIVERGENCE: same seed+plan produced "
                  f"{len(fingerprints)} distinct fingerprints",
                  file=sys.stderr)
            exit_code = 1
        elif exit_code == 0:
            print("verify OK: 2 runs bit-identical, no leaks")
    return exit_code


def _cmd_migrate(seed: int, streams: int, duration: float,
                 as_json: bool, verify: bool) -> int:
    from repro.faults.migration import run_migration

    runs = 2 if verify else 1
    results = [run_migration(seed=seed, streams=streams, duration=duration)
               for _ in range(runs)]
    result = results[0]
    if as_json:
        print(json.dumps(result, indent=2, default=str))
    else:
        counters = result["counters"]
        record = result["migration"]
        print(f"seed={seed} streams={streams} duration={duration}s")
        print(f"  echoes_ok={counters['echoes_ok']} "
              f"connects={counters['connects']} "
              f"mismatches={counters['mismatches']} "
              f"resets={counters['resets']} "
              f"timeouts={counters['timeouts']}")
        if record is not None:
            print(f"  migrated {record['sockets_moved']} socket(s) "
                  f"nsm{record['source_nsm']}→nsm{record['target_nsm']} "
                  f"blackout={record['blackout_sec'] * 1e6:.1f}us "
                  f"parked_ops={record['parked_ops']}")
        else:
            print(f"  migration FAILED: {result['migration_error']}")
        print(f"  fingerprint={result['switch_fingerprint'][:16]}…")
    exit_code = 0
    for index, run in enumerate(results):
        for leak in run["leaks"]:
            print(f"RESOURCE LEAK (run {index + 1}): {leak}",
                  file=sys.stderr)
            exit_code = 1
        counters = run["counters"]
        if run["migration"] is None:
            print(f"MIGRATION FAILED (run {index + 1}): "
                  f"{run['migration_error']}", file=sys.stderr)
            exit_code = 1
        if counters["resets"] or counters["timeouts"] \
                or counters["mismatches"]:
            print(f"GUEST-VISIBLE DISRUPTION (run {index + 1}): "
                  f"resets={counters['resets']} "
                  f"timeouts={counters['timeouts']} "
                  f"mismatches={counters['mismatches']}", file=sys.stderr)
            exit_code = 1
    if verify:
        fingerprints = {run["switch_fingerprint"] for run in results}
        if len(fingerprints) != 1:
            print("TIMELINE DIVERGENCE: same seed+streams produced "
                  f"{len(fingerprints)} distinct fingerprints",
                  file=sys.stderr)
            exit_code = 1
        elif exit_code == 0:
            print("verify OK: 2 runs bit-identical, zero-reset, no leaks")
    return exit_code


def _cmd_autoscale(seed: int, ticks: int, shards: int, chaos: bool,
                   as_json: bool) -> int:
    from repro.experiments.fig_autoscale import run_autoscale_scenario

    result = run_autoscale_scenario(seed=seed, ticks=ticks,
                                    ce_shards=shards, chaos=chaos)
    if as_json:
        print(json.dumps(result, indent=2, default=str))
    else:
        counters = result["autoscaler"]["counters"]
        workload = result["workload"]
        print(f"seed={seed} ticks={ticks} shards={shards} chaos={chaos}")
        print(f"  rtts={workload['rtts']} "
              f"client_errors={workload['client_errors']} "
              f"handoffs={result['handoffs']}")
        print(f"  spawned={counters['spawned']} "
              f"retired={counters['retired']} "
              f"migrations={counters['migrations']} "
              f"migration_failures={counters['migration_failures']}")
        print(f"  leaked_forwards={result['forward_leaks']} "
              f"live_forward_entries={result['forward_entries']} "
              f"pool_delta={result['pool_delta']}")
    exit_code = 0
    for violation in result["violations"]:
        print(f"ASSIGNMENT VIOLATION: {violation}", file=sys.stderr)
        exit_code = 1
    if result["forward_leaks"]:
        print(f"FORWARD LEAK: {result['forward_leaks']} dangling "
              "forwarding entries", file=sys.stderr)
        exit_code = 1
    if result["pool_delta"]:
        print(f"POOL IMBALANCE: NQE pool outstanding delta "
              f"{result['pool_delta']}", file=sys.stderr)
        exit_code = 1
    if not chaos and result["forward_entries"]:
        print(f"FORWARD ENTRIES after clean shutdown: "
              f"{result['forward_entries']}", file=sys.stderr)
        exit_code = 1
    if exit_code == 0:
        print("autoscale OK: no leaks, pool balanced, "
              "no inactive assignments")
    return exit_code


def _cmd_calibration() -> int:
    from repro.cpu.cost_model import DEFAULT_COST_MODEL

    for field in dataclasses.fields(DEFAULT_COST_MODEL):
        value = getattr(DEFAULT_COST_MODEL, field.name)
        print(f"  {field.name:<40} {value}")
    return 0


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="NetKernel reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible paper artifacts")
    run_parser = sub.add_parser("run", help="regenerate tables/figures")
    run_parser.add_argument("ids", nargs="+",
                            help="experiment ids, or 'all'")
    run_parser.add_argument("--quick", action="store_true",
                            help="shrink the packet-level experiments")
    sub.add_parser("calibration", help="dump cost-model constants")
    stats_parser = sub.add_parser(
        "stats", help="run an instrumented workload and print obs report")
    stats_parser.add_argument("--json", action="store_true",
                              help="emit the full report as JSON")
    stats_parser.add_argument("--bytes", type=int, default=1 << 20,
                              help="bytes the client transfers (default 1MiB)")
    bench_parser = sub.add_parser(
        "bench", help="run wall-clock performance benchmarks")
    bench_parser.add_argument("names", nargs="*",
                              help="benchmark names (default: all)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="shrink workloads for CI smoke runs")
    bench_parser.add_argument("--out", default="",
                              help="directory for BENCH_<name>.json files")
    bench_parser.add_argument("--floors", default="",
                              help="JSON of wall-time floors; fail at >2x")
    from repro.faults.plan import PLAN_NAMES

    chaos_parser = sub.add_parser(
        "chaos", help="run a seeded fault-injection workload")
    chaos_parser.add_argument("--seed", type=int, default=0,
                              help="fault-plan RNG seed (default 0)")
    chaos_parser.add_argument("--plan", choices=PLAN_NAMES,
                              default="nsm-crash",
                              help="named fault plan (default nsm-crash)")
    chaos_parser.add_argument("--duration", type=float, default=0.6,
                              help="simulated seconds (default 0.6)")
    chaos_parser.add_argument("--detection-timeout", type=float,
                              default=10e-3,
                              help="NSM failure-detection timeout in "
                                   "seconds (default 0.01)")
    chaos_parser.add_argument("--heartbeat-interval", type=float,
                              default=2e-3,
                              help="heartbeat probe period in seconds "
                                   "(default 0.002)")
    chaos_parser.add_argument("--json", action="store_true",
                              help="emit the full result as JSON")
    chaos_parser.add_argument("--verify", action="store_true",
                              help="run twice; fail unless bit-identical "
                                   "and leak-free")
    migrate_parser = sub.add_parser(
        "migrate", help="run a seeded live-migration workload")
    migrate_parser.add_argument("--seed", type=int, default=0,
                                help="payload-pattern seed (default 0)")
    migrate_parser.add_argument("--streams", type=int, default=8,
                                help="concurrent echo streams (default 8)")
    migrate_parser.add_argument("--duration", type=float, default=0.12,
                                help="simulated seconds (default 0.12)")
    migrate_parser.add_argument("--json", action="store_true",
                                help="emit the full result as JSON")
    migrate_parser.add_argument("--verify", action="store_true",
                                help="run twice; fail unless bit-identical, "
                                     "zero-reset, and leak-free")
    autoscale_parser = sub.add_parser(
        "autoscale", help="run the NSM autoscaling workload")
    autoscale_parser.add_argument("--seed", type=int, default=0,
                                  help="AG-trace seed (default 0)")
    autoscale_parser.add_argument("--ticks", type=int, default=14,
                                  help="autoscaler ticks / trace minutes "
                                       "(default 14)")
    autoscale_parser.add_argument("--shards", type=int, default=2,
                                  help="CoreEngine shards (default 2)")
    autoscale_parser.add_argument("--chaos", action="store_true",
                                  help="crash the busiest managed NSM "
                                       "mid-rebalance")
    autoscale_parser.add_argument("--json", action="store_true",
                                  help="emit the full result as JSON")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.ids, args.quick)
    if args.command == "calibration":
        return _cmd_calibration()
    if args.command == "stats":
        return _cmd_stats(args.json, args.bytes)
    if args.command == "bench":
        return _cmd_bench(args.names, args.quick, args.out, args.floors)
    if args.command == "chaos":
        return _cmd_chaos(args.seed, args.plan, args.duration,
                          args.detection_timeout, args.heartbeat_interval,
                          args.json, args.verify)
    if args.command == "migrate":
        return _cmd_migrate(args.seed, args.streams, args.duration,
                            args.json, args.verify)
    if args.command == "autoscale":
        return _cmd_autoscale(args.seed, args.ticks, args.shards,
                              args.chaos, args.json)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
