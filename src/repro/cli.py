"""Command-line interface: ``python -m repro <command>``.

Every subcommand supports ``--json``, emitting one result envelope —
``{"ok": bool, "kind": ..., "data": ..., "error": ...}`` — and draws
its process exit code from the single ``repro.errors.EXIT_CODES``
table.  Run-producing subcommands are thin adapters over the
control-plane executor (``repro.ctrl``): they build a JobSpec and run
it through exactly the code path ``repro serve`` uses.

Commands
--------
list
    Show every reproducible paper artifact with its title.
run <ids...>
    Regenerate the given tables/figures (or ``all``); ``--quick``
    shrinks the packet-level experiments.
calibration
    Dump the calibrated cost model constants.
stats
    Run a quickstart-style workload with the repro.obs layer enabled
    and print per-stage NQE latency, ring occupancy, token buckets.
bench
    Run the wall-clock perf harness (``repro.perf``).  ``--out`` writes
    BENCH_<name>.json files; ``--floors`` fails on >2x regressions.
chaos
    Run the seeded fault-injection workload (``repro.faults``);
    ``--verify`` replays the plan and fails unless bit-identical and
    leak-free (the chaos-smoke CI check).
migrate
    Run the seeded live-migration workload; ``--verify`` fails unless
    bit-identical, leak-free, and zero-reset (migration-smoke CI).
autoscale
    Run the NSM autoscaling workload on a sharded CoreEngine; fails on
    any leaked forward, pool imbalance, or VM-on-inactive-NSM
    assignment (autoscale-smoke CI).
job submit|status|list|result
    The control plane as a CLI: submit runs a JobSpec through the
    serialized worker against the JSON RunStore (``--store``, default
    ./runs) — queued jobs recovered from a killed worker run first.
serve
    Boot the REST control plane (``POST /jobs``, ``GET /jobs/<id>``,
    ``GET /fleet``) over the same store and worker.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import List, Optional

from repro.ctrl.envelope import Envelope
from repro.ctrl.executor import execute_job
from repro.ctrl.jobs import JobSpec, KIND_PARAMS
from repro.ctrl.store import DEFAULT_STORE, RunStore
from repro.ctrl.worker import JobWorker
from repro.errors import (ControlPlaneError, JobValidationError,
                          UnknownJobError)
from repro.experiments import ExperimentResult
from repro.experiments.registry import REGISTRY, canonical_id

QUICK_KWARGS = {
    "fig9": {"duration": 0.6},
    "fig21": {"scale": 0.02, "time_factor": 0.1},
    "table5": {"requests": 400, "concurrency": 80},
}


def _finish(env: Envelope, as_json: bool) -> int:
    """Emit the envelope (JSON mode) or its failures (human mode) and
    return the table-derived exit code."""
    if as_json:
        print(env.to_json())
    else:
        for failure in env.failures:
            print(failure["message"], file=sys.stderr)
    return env.exit_code


def _sort_key(exp_id: str):
    digits = "".join(ch for ch in exp_id if ch.isdigit())
    if exp_id.startswith("fig") and digits:
        kind = 0
    elif exp_id.startswith("table") and digits:
        kind = 1
    else:
        return (2, 0, exp_id)
    return (kind, int(digits), "")


def _cmd_list(as_json: bool) -> int:
    env = Envelope("list", {
        "experiments": {
            exp_id: {"title": entry.title, "params": list(entry.params)}
            for exp_id, entry in sorted(REGISTRY.items())
        },
    })
    if not as_json:
        for exp_id in sorted(REGISTRY, key=_sort_key):
            print(f"  {exp_id:<8} {REGISTRY[exp_id].title}")
    return _finish(env, as_json)


def _cmd_run(ids: List[str], quick: bool, as_json: bool) -> int:
    env = Envelope("run", {"results": []})
    if ids == ["all"]:
        ids = sorted(REGISTRY, key=_sort_key)
    unknown = [i for i in ids if canonical_id(i) not in REGISTRY]
    if unknown:
        env.fail("usage", f"unknown experiments: {unknown}")
        return _finish(env, as_json)
    for exp_id in ids:
        exp_id = canonical_id(exp_id)
        kwargs = QUICK_KWARGS.get(exp_id, {}) if quick else {}
        started = time.time()
        payload = execute_job(JobSpec("experiment", experiment=exp_id,
                                      params=kwargs))
        env.data["results"].append(payload)
        if not as_json:
            result = ExperimentResult.from_dict(payload["result"])
            print(result.table_str())
            print(f"({time.time() - started:.1f}s wall)\n")
    return _finish(env, as_json)


def _stats_workload(transfer_bytes: int):
    """The quickstart topology with observability on: one kernel-stack
    NSM serving a rate-capped client VM talking to a server VM."""
    from repro import NetKernelHost, Network, Simulator
    from repro.units import gbps, mbps, usec

    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(100),
                      default_delay_sec=usec(25))
    host = NetKernelHost(sim, network)
    obs = host.enable_observability(sample_interval=100e-6)

    nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
    vm_server = host.add_vm("vm-server", vcpus=1, nsm=nsm)
    vm_client = host.add_vm("vm-client", vcpus=1, nsm=nsm)
    # Exercise both bucket kinds so the report shows isolation state.
    host.coreengine.set_bandwidth_limit(vm_client.vm_id, mbps(500))
    host.coreengine.set_ops_limit(vm_client.vm_id, 200_000)
    api_server = host.socket_api(vm_server)
    api_client = host.socket_api(vm_client)
    payload = b"x" * transfer_bytes
    done = {}

    def server():
        listener = yield from api_server.socket()
        yield from api_server.bind(listener, 80)
        yield from api_server.listen(listener, backlog=64)
        conn = yield from api_server.accept(listener)
        received = 0
        while received < transfer_bytes:
            data = yield from api_server.recv(conn, 1 << 16)
            if not data:
                break
            received += len(data)
        yield from api_server.send(conn, b"OK")
        yield from api_server.close(conn)
        done["server_bytes"] = received

    def client():
        yield sim.timeout(0.001)  # let the server bind first
        sock = yield from api_client.socket()
        yield from api_client.connect(sock, ("nsm0", 80))
        yield from api_client.send(sock, payload)
        reply = yield from api_client.recv(sock, 4096)
        yield from api_client.close(sock)
        done["reply"] = reply

    vm_server.spawn(server())
    vm_client.spawn(client())
    sim.run(until=2.0)
    return obs, done


def _cmd_stats(as_json: bool, transfer_bytes: int) -> int:
    obs, done = _stats_workload(transfer_bytes)
    report = obs.report()
    env = Envelope("stats", report)
    if as_json:
        return _finish(env, as_json)
    from repro.experiments.report import obs_ops_table, obs_stage_table

    print(obs_stage_table(report).table_str())
    print()
    print(obs_ops_table(report).table_str())
    print("\nToken buckets (per VM):")
    for vm, buckets in sorted(report["token_buckets"].items()):
        for kind, state in sorted(buckets.items()):
            print(f"  vm={vm} {kind:<3} rate={state['rate']:.3g}/s "
                  f"burst={state['burst']:.3g} tokens={state['tokens']:.3g}")
    print("\nRing peak occupancy (non-empty):")
    for ring, fields in sorted(report["rings"].items()):
        if fields.get("peak_depth"):
            print(f"  {ring:<40} peak={fields['peak_depth']:.0f} "
                  f"now={fields['depth']:.0f}")
    ce = report["coreengine"]
    print(f"\nCoreEngine: {ce['nqes_switched']} NQEs in {ce['batches']} "
          f"batches (avg {ce['avg_batch']:.2f}), "
          f"{ce['rate_limited_stalls']} rate-limit stalls, "
          f"{ce['nqes_dropped']} drops; "
          f"transferred {done.get('server_bytes', 0)} B")
    print(f"Scheduler: mode={ce['sched.mode']} "
          f"passes={ce['sched.passes']} "
          f"stale_wakeups={ce['sched.stale_wakeups']} "
          "(stall timeouts disarmed after a doorbell won the race)")
    return _finish(env, as_json)


def _cmd_bench(names: List[str], quick: bool, out_dir: str,
               floors_path: str, as_json: bool, profile_top: int = 0) -> int:
    from repro.perf import check_floors, write_results

    env = Envelope("bench")
    try:
        payload = execute_job(JobSpec("bench", params={
            "names": names or None, "quick": quick,
            "profile_top": profile_top}))
    except KeyError as error:
        env.fail("usage", error.args[0])
        return _finish(env, as_json)
    results = payload["results"]
    env.data = {"results": results, "written": [], "floor_failures": []}
    if not as_json:
        for name, result in results.items():
            line = (f"  {name:<16} wall={result['wall_s']:.3f}s "
                    f"events={result['events']} "
                    f"peak_rss={result['peak_rss']}KiB")
            if "speedup_vs_full" in result:
                line += f" speedup={result['speedup_vs_full']:.2f}x"
            if "speedup_vs_scalar" in result:
                line += f" vec={result['speedup_vs_scalar']:.2f}x"
            if "fingerprint_match" in result:
                line += f" identical={result['fingerprint_match']}"
            print(line)
            if result.get("profile"):
                print(result["profile"])
    if out_dir:
        for path in write_results(results, out_dir):
            env.data["written"].append(path)
            if not as_json:
                print(f"wrote {path}")
    mismatched = [n for n, r in results.items()
                  if r.get("fingerprint_match") is False]
    if mismatched:
        env.fail("divergence",
                 f"TIMELINE DIVERGENCE between scan modes: {mismatched}")
    if floors_path:
        with open(floors_path) as handle:
            floors = json.load(handle)
        failures = check_floors(results, floors)
        env.data["floor_failures"] = failures
        for failure in failures:
            env.fail("floor", f"FLOOR REGRESSION: {failure}")
    return _finish(env, as_json)


def _cmd_chaos(seed: int, plan: str, duration: float,
               detection_timeout: float, heartbeat_interval: float,
               as_json: bool, verify: bool) -> int:
    env = Envelope("chaos")
    spec = JobSpec("chaos", params={
        "seed": seed, "plan_name": plan, "duration": duration,
        "detection_timeout": detection_timeout,
        "heartbeat_interval": heartbeat_interval}, seed=seed)
    runs = 2 if verify else 1
    results = [execute_job(spec)["result"] for _ in range(runs)]
    result = results[0]
    env.data = {"result": result, "verify": verify}
    if not as_json:
        counters = result["counters"]
        recovery = result["recovery_sec"]
        print(f"plan={plan} seed={seed} duration={duration}s "
              f"detect={detection_timeout * 1e3:g}ms")
        print(f"  requests_ok={counters['requests_ok']} "
              f"connects={counters['connects']} "
              f"resets={counters['resets']} "
              f"timeouts={counters['timeouts']}")
        print(f"  faults={result['faults']}")
        print(f"  quarantined={result['quarantined']} "
              f"recovery="
              f"{'n/a' if recovery is None else f'{recovery * 1e3:.2f}ms'}")
        print(f"  fingerprint={result['switch_fingerprint'][:16]}…")
    for index, run in enumerate(results):
        for leak in run["leaks"]:
            env.fail("leak", f"RESOURCE LEAK (run {index + 1}): {leak}")
    if verify:
        fingerprints = {run["switch_fingerprint"] for run in results}
        if len(fingerprints) != 1:
            env.fail("divergence",
                     "TIMELINE DIVERGENCE: same seed+plan produced "
                     f"{len(fingerprints)} distinct fingerprints")
        elif env.ok and not as_json:
            print("verify OK: 2 runs bit-identical, no leaks")
    return _finish(env, as_json)


def _cmd_capacity(scenario: str, seed: int, window: Optional[float],
                  n_vms: int, iterations: int, as_json: bool,
                  verify: bool) -> int:
    env = Envelope("capacity")
    params = {"scenario": scenario, "seed": seed, "n_vms": n_vms,
              "iterations": iterations}
    if window is not None:
        params["window"] = window
    spec = JobSpec("capacity", params=params, seed=seed)
    runs = 2 if verify else 1
    results = [execute_job(spec)["result"] for _ in range(runs)]
    result = results[0]
    env.data = {"result": result, "verify": verify}
    if not as_json:
        print(f"scenario={scenario} seed={seed} "
              f"window={result['window']}s n_vms={n_vms} "
              f"steps={len(result['steps'])}")
        for label in ("ndr", "pdr"):
            point = result[label]
            if point is None:
                print(f"  {label.upper()}: none within bounds "
                      f"[{result['rate_lo']:g}, {result['rate_hi']:g}]")
            else:
                print(f"  {label.upper()}: {point['rate']:g} ops/s "
                      f"(goodput {point['goodput']:g}, "
                      f"loss {point['loss']:.4f}, "
                      f"p50 {point['p50_us']:g}us, "
                      f"p99 {point['p99_us']:g}us)")
        graceful = result["graceful"]
        if graceful is not None:
            verdict = "pass" if graceful["pass"] else "FAIL"
            print(f"  2xNDR: goodput ratio "
                  f"{graceful['goodput_ratio']:g}, jain "
                  f"{graceful['jain_fairness']:g}, hung "
                  f"{graceful['hung_ops']} -> {verdict}")
        print(f"  fingerprint={result['fingerprint'][:16]}…")
    for index, run in enumerate(results):
        for leak in run["leaks"]:
            env.fail("leak", f"RESOURCE LEAK (run {index + 1}): {leak}")
    graceful = result["graceful"]
    if graceful is not None and not graceful["pass"]:
        env.fail("degradation",
                 "GRACELESS DEGRADATION at 2xNDR: "
                 f"goodput ratio {graceful['goodput_ratio']} "
                 f"(need >= 0.8), jain {graceful['jain_fairness']} "
                 f"(need >= 0.9), hung ops {graceful['hung_ops']} "
                 "(need 0)")
    if verify:
        fingerprints = {run["fingerprint"] for run in results}
        if len(fingerprints) != 1:
            env.fail("divergence",
                     "SEARCH DIVERGENCE: same seed+scenario produced "
                     f"{len(fingerprints)} distinct fingerprints")
        elif env.ok and not as_json:
            print("verify OK: 2 searches bit-identical, no leaks")
    return _finish(env, as_json)


def _cmd_migrate(seed: int, streams: int, duration: float,
                 as_json: bool, verify: bool) -> int:
    env = Envelope("migrate")
    spec = JobSpec("migrate", params={
        "seed": seed, "streams": streams, "duration": duration},
        seed=seed)
    runs = 2 if verify else 1
    results = [execute_job(spec)["result"] for _ in range(runs)]
    result = results[0]
    env.data = {"result": result, "verify": verify}
    if not as_json:
        counters = result["counters"]
        record = result["migration"]
        print(f"seed={seed} streams={streams} duration={duration}s")
        print(f"  echoes_ok={counters['echoes_ok']} "
              f"connects={counters['connects']} "
              f"mismatches={counters['mismatches']} "
              f"resets={counters['resets']} "
              f"timeouts={counters['timeouts']}")
        if record is not None:
            print(f"  migrated {record['sockets_moved']} socket(s) "
                  f"nsm{record['source_nsm']}→nsm{record['target_nsm']} "
                  f"blackout={record['blackout_sec'] * 1e6:.1f}us "
                  f"parked_ops={record['parked_ops']}")
        else:
            print(f"  migration FAILED: {result['migration_error']}")
        print(f"  fingerprint={result['switch_fingerprint'][:16]}…")
    for index, run in enumerate(results):
        for leak in run["leaks"]:
            env.fail("leak", f"RESOURCE LEAK (run {index + 1}): {leak}")
        counters = run["counters"]
        if run["migration"] is None:
            env.fail("failure", f"MIGRATION FAILED (run {index + 1}): "
                                f"{run['migration_error']}")
        if counters["resets"] or counters["timeouts"] \
                or counters["mismatches"]:
            env.fail("disruption",
                     f"GUEST-VISIBLE DISRUPTION (run {index + 1}): "
                     f"resets={counters['resets']} "
                     f"timeouts={counters['timeouts']} "
                     f"mismatches={counters['mismatches']}")
    if verify:
        fingerprints = {run["switch_fingerprint"] for run in results}
        if len(fingerprints) != 1:
            env.fail("divergence",
                     "TIMELINE DIVERGENCE: same seed+streams produced "
                     f"{len(fingerprints)} distinct fingerprints")
        elif env.ok and not as_json:
            print("verify OK: 2 runs bit-identical, zero-reset, no leaks")
    return _finish(env, as_json)


def _cmd_autoscale(seed: int, ticks: int, shards: int, chaos: bool,
                   as_json: bool) -> int:
    env = Envelope("autoscale")
    spec = JobSpec("autoscale", params={
        "seed": seed, "ticks": ticks, "ce_shards": shards,
        "chaos": chaos}, seed=seed)
    result = execute_job(spec)["result"]
    env.data = {"result": result}
    if not as_json:
        counters = result["autoscaler"]["counters"]
        workload = result["workload"]
        print(f"seed={seed} ticks={ticks} shards={shards} chaos={chaos}")
        print(f"  rtts={workload['rtts']} "
              f"client_errors={workload['client_errors']} "
              f"handoffs={result['handoffs']}")
        print(f"  spawned={counters['spawned']} "
              f"retired={counters['retired']} "
              f"migrations={counters['migrations']} "
              f"migration_failures={counters['migration_failures']}")
        print(f"  leaked_forwards={result['forward_leaks']} "
              f"live_forward_entries={result['forward_entries']} "
              f"pool_delta={result['pool_delta']}")
    for violation in result["violations"]:
        env.fail("invariant", f"ASSIGNMENT VIOLATION: {violation}")
    if result["forward_leaks"]:
        env.fail("leak", f"FORWARD LEAK: {result['forward_leaks']} "
                         "dangling forwarding entries")
    if result["pool_delta"]:
        env.fail("leak", f"POOL IMBALANCE: NQE pool outstanding delta "
                         f"{result['pool_delta']}")
    if not chaos and result["forward_entries"]:
        env.fail("leak", f"FORWARD ENTRIES after clean shutdown: "
                         f"{result['forward_entries']}")
    if env.ok and not as_json:
        print("autoscale OK: no leaks, pool balanced, "
              "no inactive assignments")
    return _finish(env, as_json)


def _cmd_calibration(as_json: bool) -> int:
    from repro.cpu.cost_model import DEFAULT_COST_MODEL

    constants = {field.name: getattr(DEFAULT_COST_MODEL, field.name)
                 for field in dataclasses.fields(DEFAULT_COST_MODEL)}
    env = Envelope("calibration", constants)
    if not as_json:
        for name, value in constants.items():
            print(f"  {name:<40} {value}")
    return _finish(env, as_json)


# -- control-plane verbs -------------------------------------------------------


def _parse_params(pairs: List[str]) -> dict:
    """``--param key=value`` items; values parse as JSON, then string."""
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise JobValidationError(
                f"--param wants key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _cmd_job_submit(args) -> int:
    env = Envelope("job-submit")
    try:
        spec = JobSpec(kind=args.kind, experiment=args.id,
                       params=_parse_params(args.param),
                       seed=args.seed, max_retries=args.retries)
        spec.validate()
    except JobValidationError as error:
        env.fail("usage", str(error))
        return _finish(env, args.json)
    worker = JobWorker(RunStore(args.store))
    if args.no_wait:
        job = worker.submit(spec)
    else:
        job = worker.run_to_completion(spec)
    env.data = {"job": job.to_dict()}
    if job.state == "failed":
        env.fail("job-failed",
                 f"job {job.job_id} failed after {job.attempts} "
                 f"attempt(s): {job.error}")
    if not args.json:
        print(f"{job.job_id} {job.spec.kind} state={job.state} "
              f"attempts={job.attempts}")
        if job.state == "done" and job.spec.kind == "experiment":
            payload = worker.store.load_result(job.job_id)
            print(ExperimentResult.from_dict(
                payload["result"]).table_str())
    return _finish(env, args.json)


def _cmd_job_status(args) -> int:
    env = Envelope("job-status")
    try:
        job = RunStore(args.store).load_job(args.job_id)
    except UnknownJobError as error:
        env.fail("usage", str(error))
        return _finish(env, args.json)
    env.data = {"job": job.to_dict()}
    if not args.json:
        print(f"{job.job_id} {job.spec.kind} state={job.state} "
              f"attempts={job.attempts}"
              + (f" error={job.error}" if job.error else ""))
    return _finish(env, args.json)


def _cmd_job_list(args) -> int:
    store = RunStore(args.store)
    jobs = store.list_jobs()
    env = Envelope("job-list", {"jobs": [j.to_dict() for j in jobs]})
    if not args.json:
        for job in jobs:
            result = "result" if store.has_result(job.job_id) else "-"
            print(f"  {job.job_id}  {job.spec.kind:<10} "
                  f"{job.state:<8} attempts={job.attempts} {result}")
    return _finish(env, args.json)


def _cmd_job_result(args) -> int:
    env = Envelope("job-result")
    store = RunStore(args.store)
    try:
        payload = store.load_result(args.job_id)
    except UnknownJobError as error:
        env.fail("usage", str(error))
        return _finish(env, args.json)
    env.data = payload
    if not args.json:
        # The stored bytes, verbatim: what the acceptance check diffs.
        sys.stdout.write(store.result_bytes(args.job_id).decode())
    return _finish(env, args.json)


def _cmd_serve(args) -> int:
    from repro.ctrl.service import serve

    serve(host=args.host, port=args.port, store_root=args.store)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="NetKernel reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json(p):
        p.add_argument("--json", action="store_true",
                       help="emit the result envelope as JSON")
        return p

    add_json(sub.add_parser("list",
                            help="list reproducible paper artifacts"))
    run_parser = add_json(sub.add_parser(
        "run", help="regenerate tables/figures"))
    run_parser.add_argument("ids", nargs="+",
                            help="experiment ids, or 'all'")
    run_parser.add_argument("--quick", action="store_true",
                            help="shrink the packet-level experiments")
    add_json(sub.add_parser("calibration",
                            help="dump cost-model constants"))
    stats_parser = add_json(sub.add_parser(
        "stats", help="run an instrumented workload and print obs report"))
    stats_parser.add_argument("--bytes", type=int, default=1 << 20,
                              help="bytes the client transfers (default 1MiB)")
    bench_parser = add_json(sub.add_parser(
        "bench", help="run wall-clock performance benchmarks"))
    bench_parser.add_argument("names", nargs="*",
                              help="benchmark names (default: all)")
    bench_parser.add_argument("--profile", type=int, default=0,
                              metavar="N", dest="profile_top",
                              help="cProfile each benchmark and print the "
                                   "top N functions by cumulative time")
    bench_parser.add_argument("--quick", action="store_true",
                              help="shrink workloads for CI smoke runs")
    bench_parser.add_argument("--out", default="",
                              help="directory for BENCH_<name>.json files")
    bench_parser.add_argument("--floors", default="",
                              help="JSON of wall-time floors; fail at >2x")
    from repro.faults.plan import PLAN_NAMES

    chaos_parser = add_json(sub.add_parser(
        "chaos", help="run a seeded fault-injection workload"))
    chaos_parser.add_argument("--seed", type=int, default=0,
                              help="fault-plan RNG seed (default 0)")
    chaos_parser.add_argument("--plan", choices=PLAN_NAMES,
                              default="nsm-crash",
                              help="named fault plan (default nsm-crash)")
    chaos_parser.add_argument("--duration", type=float, default=0.6,
                              help="simulated seconds (default 0.6)")
    chaos_parser.add_argument("--detection-timeout", type=float,
                              default=10e-3,
                              help="NSM failure-detection timeout in "
                                   "seconds (default 0.01)")
    chaos_parser.add_argument("--heartbeat-interval", type=float,
                              default=2e-3,
                              help="heartbeat probe period in seconds "
                                   "(default 0.002)")
    chaos_parser.add_argument("--verify", action="store_true",
                              help="run twice; fail unless bit-identical "
                                   "and leak-free")
    migrate_parser = add_json(sub.add_parser(
        "migrate", help="run a seeded live-migration workload"))
    migrate_parser.add_argument("--seed", type=int, default=0,
                                help="payload-pattern seed (default 0)")
    migrate_parser.add_argument("--streams", type=int, default=8,
                                help="concurrent echo streams (default 8)")
    migrate_parser.add_argument("--duration", type=float, default=0.12,
                                help="simulated seconds (default 0.12)")
    migrate_parser.add_argument("--verify", action="store_true",
                                help="run twice; fail unless bit-identical, "
                                     "zero-reset, and leak-free")
    autoscale_parser = add_json(sub.add_parser(
        "autoscale", help="run the NSM autoscaling workload"))
    autoscale_parser.add_argument("--seed", type=int, default=0,
                                  help="AG-trace seed (default 0)")
    autoscale_parser.add_argument("--ticks", type=int, default=14,
                                  help="autoscaler ticks / trace minutes "
                                       "(default 14)")
    autoscale_parser.add_argument("--shards", type=int, default=2,
                                  help="CoreEngine shards (default 2)")
    autoscale_parser.add_argument("--chaos", action="store_true",
                                  help="crash the busiest managed NSM "
                                       "mid-rebalance")

    from repro.perf.capacity import SCENARIOS

    capacity_parser = add_json(sub.add_parser(
        "capacity", help="binary-search the NDR/PDR capacity envelope"))
    capacity_parser.add_argument("--seed", type=int, default=0,
                                 help="workload RNG seed (default 0)")
    capacity_parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                                 default="mux",
                                 help="offered-load scenario (default mux)")
    capacity_parser.add_argument("--window", type=float, default=None,
                                 help="measurement window in simulated "
                                      "seconds (default per scenario)")
    capacity_parser.add_argument("--vms", type=int, default=4,
                                 help="competing VMs (default 4)")
    capacity_parser.add_argument("--iterations", type=int, default=6,
                                 help="bisection steps per threshold "
                                      "(default 6)")
    capacity_parser.add_argument("--verify", action="store_true",
                                 help="run the search twice; fail unless "
                                      "bit-identical and leak-free")

    job_parser = sub.add_parser(
        "job", help="control-plane jobs against the RunStore")
    job_sub = job_parser.add_subparsers(dest="job_command", required=True)

    def add_store(p):
        p.add_argument("--store", default=DEFAULT_STORE,
                       help=f"RunStore directory (default {DEFAULT_STORE})")
        return add_json(p)

    submit_parser = add_store(job_sub.add_parser(
        "submit", help="submit a job and (by default) run it"))
    submit_parser.add_argument("--kind", required=True,
                               choices=sorted(KIND_PARAMS),
                               help="what to run")
    submit_parser.add_argument("--id", default=None,
                               help="experiment id (kind=experiment)")
    submit_parser.add_argument("--param", action="append", default=[],
                               metavar="KEY=VALUE",
                               help="runner parameter (repeatable; "
                                    "values parse as JSON)")
    submit_parser.add_argument("--seed", type=int, default=0,
                               help="job seed (default 0)")
    submit_parser.add_argument("--retries", type=int, default=2,
                               help="max retries on failure (default 2)")
    submit_parser.add_argument("--no-wait", action="store_true",
                               help="enqueue only; a later submit or "
                                    "'repro serve' worker runs it")
    status_parser = add_store(job_sub.add_parser(
        "status", help="show one job record"))
    status_parser.add_argument("job_id")
    add_store(job_sub.add_parser("list", help="list every job"))
    result_parser = add_store(job_sub.add_parser(
        "result", help="print a job's stored result"))
    result_parser.add_argument("job_id")

    serve_parser = sub.add_parser(
        "serve", help="boot the REST control plane")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8642)
    serve_parser.add_argument("--store", default=DEFAULT_STORE,
                              help=f"RunStore directory "
                                   f"(default {DEFAULT_STORE})")

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args.json)
        if args.command == "run":
            return _cmd_run(args.ids, args.quick, args.json)
        if args.command == "calibration":
            return _cmd_calibration(args.json)
        if args.command == "stats":
            return _cmd_stats(args.json, args.bytes)
        if args.command == "bench":
            return _cmd_bench(args.names, args.quick, args.out,
                              args.floors, args.json, args.profile_top)
        if args.command == "chaos":
            return _cmd_chaos(args.seed, args.plan, args.duration,
                              args.detection_timeout,
                              args.heartbeat_interval,
                              args.json, args.verify)
        if args.command == "migrate":
            return _cmd_migrate(args.seed, args.streams, args.duration,
                                args.json, args.verify)
        if args.command == "autoscale":
            return _cmd_autoscale(args.seed, args.ticks, args.shards,
                                  args.chaos, args.json)
        if args.command == "capacity":
            return _cmd_capacity(args.scenario, args.seed, args.window,
                                 args.vms, args.iterations,
                                 args.json, args.verify)
        if args.command == "job":
            handler = {"submit": _cmd_job_submit,
                       "status": _cmd_job_status,
                       "list": _cmd_job_list,
                       "result": _cmd_job_result}[args.job_command]
            return handler(args)
        if args.command == "serve":
            return _cmd_serve(args)
    except ControlPlaneError as error:
        as_json = bool(getattr(args, "json", False))
        return _finish(Envelope(args.command).fail("usage", str(error)),
                       as_json)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
