"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Show every reproducible paper artifact with its title.
run <ids...>
    Regenerate the given tables/figures (or ``all``); ``--quick`` shrinks
    the packet-level experiments.
calibration
    Dump the calibrated cost model constants.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import List

from repro.experiments import REGISTRY, run_experiment

QUICK_KWARGS = {
    "fig9": {"duration": 0.6},
    "fig21": {"scale": 0.02, "time_factor": 0.1},
    "table5": {"requests": 400, "concurrency": 80},
}

TITLES = {
    "fig7": "Traffic of three most-utilized AGs",
    "fig8": "Per-core RPS under multiplexing",
    "fig9": "VM-level fair bandwidth sharing",
    "fig10": "Shared-memory NSM vs colocated TCP",
    "fig11": "CoreEngine NQE switching vs batch size",
    "fig12": "Hugepage memory-copy throughput",
    "fig13": "Single-stream send throughput",
    "fig14": "Single-stream receive throughput",
    "fig15": "8-stream send throughput",
    "fig16": "8-stream receive throughput",
    "fig17": "Short-connection RPS vs message size",
    "fig18": "Send scaling with vCPUs",
    "fig19": "Receive scaling with vCPUs",
    "fig20": "RPS scaling (kernel and mTCP NSMs)",
    "fig21": "Isolation with per-VM rate caps",
    "table2": "AG packing on a 32-core machine",
    "table3": "nginx over kernel vs mTCP NSMs",
    "table4": "Scaling with number of NSMs",
    "table5": "Response-time distribution",
    "table6": "CPU overhead vs throughput",
    "table7": "CPU overhead vs request rate",
    "ablation-batching": "Ablation: CoreEngine batch size",
    "ablation-polling": "Ablation: interrupt-driven polling window",
    "ablation-pipelining": "Ablation: pipelined vs synchronous send()",
    "ablation-queues": "Ablation: lockless per-vCPU queues vs shared",
    "ablation-double-stack": "Ablation: stack-on-hypervisor alternative",
}


def _cmd_list() -> int:
    for exp_id in sorted(REGISTRY, key=_sort_key):
        print(f"  {exp_id:<8} {TITLES.get(exp_id, '')}")
    return 0


def _sort_key(exp_id: str):
    if exp_id.startswith("fig"):
        kind = 0
    elif exp_id.startswith("table"):
        kind = 1
    else:
        return (2, 0, exp_id)
    return (kind, int("".join(ch for ch in exp_id if ch.isdigit())), "")


def _cmd_run(ids: List[str], quick: bool) -> int:
    if ids == ["all"]:
        ids = sorted(REGISTRY, key=_sort_key)
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 1
    for exp_id in ids:
        kwargs = QUICK_KWARGS.get(exp_id, {}) if quick else {}
        started = time.time()
        result = run_experiment(exp_id, **kwargs)
        print(result.table_str())
        print(f"({time.time() - started:.1f}s wall)\n")
    return 0


def _cmd_calibration() -> int:
    from repro.cpu.cost_model import DEFAULT_COST_MODEL

    for field in dataclasses.fields(DEFAULT_COST_MODEL):
        value = getattr(DEFAULT_COST_MODEL, field.name)
        print(f"  {field.name:<40} {value}")
    return 0


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="NetKernel reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible paper artifacts")
    run_parser = sub.add_parser("run", help="regenerate tables/figures")
    run_parser.add_argument("ids", nargs="+",
                            help="experiment ids, or 'all'")
    run_parser.add_argument("--quick", action="store_true",
                            help="shrink the packet-level experiments")
    sub.add_parser("calibration", help="dump cost-model constants")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.ids, args.quick)
    if args.command == "calibration":
        return _cmd_calibration()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
