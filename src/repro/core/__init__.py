"""NetKernel proper: the paper's contribution.

GuestLib redirects BSD socket calls inside the guest into NQEs; CoreEngine
switches NQEs between VM and NSM over lockless shared-memory queues;
ServiceLib translates them into real stack operations inside the NSM; and
application payloads travel through shared hugepages.
"""

from repro.core.nqe import Nqe, NqeOp, NQE_SIZE
from repro.core.queues import QueueSet
from repro.core.nk_device import NKDevice
from repro.core.conn_table import ConnectionTable
from repro.core.coreengine import CoreEngine
from repro.core.control import ControlPlane
from repro.core.guestlib import GuestLib
from repro.core.servicelib import ServiceLib
from repro.core.nsm import NetworkStackModule
from repro.core.vm import GuestVM
from repro.core.host import NetKernelHost

__all__ = [
    "Nqe",
    "NqeOp",
    "NQE_SIZE",
    "QueueSet",
    "NKDevice",
    "ConnectionTable",
    "CoreEngine",
    "ControlPlane",
    "GuestLib",
    "ServiceLib",
    "NetworkStackModule",
    "GuestVM",
    "NetKernelHost",
]
