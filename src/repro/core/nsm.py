"""The Network Stack Module: a VM-based NSM running one network stack.

The paper's design choice (§3, "VM Based NSM"): each NSM is a full VM with
dedicated cores, running either the kernel stack, mTCP, the shared-memory
stack, or a custom congestion-control stack — all provided and operated
by the cloud provider.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import ConfigurationError


class NetworkStackModule:
    """One NSM: cores + a stack + (after registration) a ServiceLib."""

    def __init__(self, sim, name: str, vcpus: int = 1,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 core_hz: Optional[float] = None):
        if vcpus < 1:
            raise ConfigurationError(f"NSM needs >=1 vCPU, got {vcpus}")
        self.sim = sim
        self.name = name
        hz = core_hz or cost_model.core_hz
        self.cores: List[Core] = [
            Core(sim, name=f"{name}.cpu{i}", hz=hz) for i in range(vcpus)
        ]
        self.cost = cost_model
        # Installed by NetKernelHost.add_nsm().
        self.nsm_id: Optional[int] = None
        self.stack = None
        self.servicelib = None

    @property
    def vcpus(self) -> int:
        return len(self.cores)

    @property
    def stack_name(self) -> str:
        return self.stack.name if self.stack is not None else "unassigned"

    def total_cycles(self) -> float:
        return sum(core.busy_cycles for core in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<NSM {self.name} stack={self.stack_name} "
                f"vcpus={self.vcpus}>")
