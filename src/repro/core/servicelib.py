"""ServiceLib: the NSM-side peer of GuestLib (§4.5, §5).

One poller per queue set (per NSM vCPU) consumes job/send NQEs, invokes
the NSM's network stack, and produces completion/receive NQEs.  Payloads
travel through the hugepage region shared with the VM: sends are read out
of hugepages into the stack, received data is copied into hugepages and
announced with DATA_ARRIVED events.

Accept and send are pipelined as in §4.6: the NSM accepts connections the
moment the stack surfaces them (before the guest application calls
``accept()``), and send results flow back asynchronously as send-buffer
credit.

Receive-side flow control mirrors the paper's per-connection "receive
buffer usage": ServiceLib stops draining the stack (letting TCP flow
control push back on the sender) once a connection has
``recv_window_bytes`` in flight toward the guest, and resumes when
RECV_CREDIT NQEs report consumption.

Failure handling (§8): a ServiceLib can be crashed (fault injection or a
real NSM death in the model) via :meth:`ServiceLib.crash` — pollers stop,
stack callbacks turn into no-ops and every emission path drops its NQE
(freeing hugepage payloads), so a dead NSM neither answers heartbeats nor
leaks resources.  :meth:`ServiceLib.stall` models a slow/overloaded NSM:
pollers sleep until the stall expires, which delays heartbeat ACKs and can
trip CoreEngine's failure detector exactly like a crash would.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.core.nk_device import NKDevice
from repro.core.nqe import NQE_POOL, Nqe, NqeOp, RESULT_ERRNO
from repro.core.overload import LEVEL_PRESSURED, governor_for_device
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import ConfigurationError, SocketError
from repro.stack.tcp.tcb import tcb_manifest

VmTuple = Tuple[int, int, int]

#: Largest chunk copied into one hugepage buffer / one DATA_ARRIVED NQE.
RX_CHUNK = 64 * 1024


class _SocketContext:
    """ServiceLib's per-connection state."""

    _ids = itertools.count(1)

    def __init__(self, stack_sock, qset: int, kind: str = "stream",
                 lib: Optional["ServiceLib"] = None):
        self.nsm_sock_id = next(self._ids)
        self.stack_sock = stack_sock
        self.qset = qset
        self.kind = kind
        #: The ServiceLib that currently owns this context.  Live
        #: migration re-homes contexts; stale scheduled closures on the
        #: old NSM check this before touching the socket.
        self.lib = lib
        self.vm_tuple: Optional[VmTuple] = None
        self.is_listener = False
        self.listener_ctx: Optional["_SocketContext"] = None
        #: Outbound bytes taken from hugepages but not yet in the stack.
        self.pending_tx: Deque[bytes] = deque()
        self.pending_tx_bytes = 0
        #: Bytes announced to the guest and not yet credited back.
        self.rx_window_used = 0
        self.closing = False
        self.peer_closed_sent = False
        self.connect_token: Optional[Nqe] = None
        #: setsockopt values recorded for getsockopt round-trips.
        self.options: Dict[str, int] = {}


class ServiceLib:
    """Translates NQEs to stack calls inside one NSM."""

    def __init__(self, sim, nsm_id: int, device: NKDevice, stack, cores,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 recv_window_bytes: int = 256 * 1024):
        self.sim = sim
        self.nsm_id = nsm_id
        self.device = device
        self.stack = stack
        self.cores = list(cores)
        self.cost = cost_model
        self.recv_window_bytes = recv_window_bytes
        #: Per-VM shared hugepage regions ("a unique set of hugepages are
        #: shared between each VM-NSM tuple", §4): vm_id -> region.
        self._regions: Dict[int, object] = {}

        self._by_vm_tuple: Dict[VmTuple, _SocketContext] = {}
        self._by_nsm_id: Dict[int, _SocketContext] = {}

        self._pollers = [
            sim.process(self._poller(idx))
            for idx in range(len(device.queue_sets))
        ]

        # Statistics.
        self.nqes_processed = 0
        self.nqes_emitted = 0
        self.nqes_dropped_crashed = 0
        #: Pump passes run with an overload-clamped receive window.
        self.rx_window_clamps = 0
        #: Handlers currently executing (migration waits for zero before
        #: exporting, so no NQE is half-processed across the move).
        self.busy_handlers = 0

        # Failure state (§8): crashed NSMs stop polling and emitting;
        # stalled NSMs sleep until the stall expires.
        self.crashed = False
        self._stall_until = 0.0

        # Observability (repro.obs); None = tracing disabled (default).
        self.obs = None

    def attach_vm_region(self, vm_id: int, region) -> None:
        """Map the hugepage region shared with one served VM."""
        self._regions[vm_id] = region

    def detach_vm_region(self, vm_id: int) -> None:
        """Unmap a VM's hugepage region (the VM migrated away)."""
        self._regions.pop(vm_id, None)

    def _region_for(self, vm_id: int):
        region = self._regions.get(vm_id)
        if region is None:
            raise KeyError(f"no hugepage region attached for VM {vm_id}")
        return region

    # -- failure injection (§8) ---------------------------------------------

    def crash(self) -> None:
        """Kill this NSM's stack processing: pollers exit, callbacks and
        emissions become drops.  Irreversible (a restarted NSM registers
        as a fresh one, as in the paper's failover discussion)."""
        self.crashed = True

    def stall(self, duration: float) -> None:
        """Freeze the pollers for ``duration`` seconds of sim time (an
        overloaded or wedged NSM).  Heartbeat ACKs are delayed with
        everything else, so a long stall looks like a failure to CE."""
        self._stall_until = max(self._stall_until, self.sim.now + duration)

    def _discard(self, nqe: Nqe) -> None:
        """Drop an NQE a crashed NSM would have emitted, freeing any
        hugepage payload it references so nothing leaks."""
        self.nqes_dropped_crashed += 1
        if nqe.data_ptr:
            region = self._regions.get(nqe.vm_id)
            if region is not None:
                buffer = region.lookup(nqe.data_ptr)
                if buffer is not None and not buffer.freed:
                    buffer.free()
        NQE_POOL.release(nqe)

    # -- emission (NSM -> VM) ------------------------------------------------

    def _emit(self, ctx_qset: int, nqe: Nqe, event: bool) -> None:
        """Produce one NQE toward CoreEngine, retrying while the ring is
        full (callback-safe: retries are scheduled, not blocking)."""
        if self.crashed:
            self._discard(nqe)
            return
        qs = self.device.queue_sets[ctx_qset % len(self.device.queue_sets)]
        completion_ring, receive_ring = self.device.produce_rings(qs)
        ring = receive_ring if event else completion_ring
        core = self.cores[ctx_qset % len(self.cores)]
        core.charge(self.cost.servicelib_nqe_prep, "servicelib.prep")

        def attempt() -> None:
            if self.crashed:
                self._discard(nqe)
            elif ring.try_push(nqe, owner=self):
                self.nqes_emitted += 1
                if self.obs is not None:
                    self.obs.on_nsm_emit(nqe)
                self.device.ring_doorbell()
            else:
                self.sim.call_later(2e-6, attempt)

        attempt()

    def _respond(self, request: Nqe, ctx_qset: int, op_data: int = 0,
                 req_op: Optional[NqeOp] = None) -> None:
        response = request.response(NqeOp.OP_RESULT, op_data=op_data,
                                    aux={"req_op": req_op or request.op})
        self._emit(ctx_qset, response, event=False)

    def _respond_errno(self, request: Nqe, ctx_qset: int,
                       errno_name: str) -> None:
        code = RESULT_ERRNO.get(errno_name, 5)
        self._respond(request, ctx_qset, op_data=-code)

    # -- pollers (VM -> NSM) -----------------------------------------------------

    def _poller(self, qset_index: int):
        qs = self.device.queue_sets[qset_index]
        core = self.cores[qset_index % len(self.cores)]
        job_ring, send_ring = self.device.consume_rings(qs)
        # Reusable drain scratch: steady-state passes allocate no lists.
        scratch: list = []
        while not self.crashed:
            if self._stall_until > self.sim.now:
                yield self.sim.timeout(self._stall_until - self.sim.now)
                continue
            n = job_ring.drain_into(scratch, 32, owner=self)
            n += send_ring.drain_into(scratch, 32, owner=self, start=n)
            if not n:
                yield self.device.wait_for_inbound()
                continue
            cycles = n * self.cost.servicelib_nqe_dispatch
            yield core.execute(cycles, "servicelib.dispatch")
            for i in range(n):
                nqe = scratch[i]
                scratch[i] = None
                if self.crashed:
                    # Crash landed mid-batch: drop the rest unprocessed.
                    self._discard(nqe)
                    continue
                self.nqes_processed += 1
                if self.obs is not None:
                    self.obs.on_nsm_consume(nqe)
                self.busy_handlers += 1
                try:
                    yield from self._handle(nqe, qset_index, core)
                finally:
                    self.busy_handlers -= 1
                # ServiceLib is the final consumer of request NQEs; a
                # CONNECT stays live inside the stack's completion
                # callbacks until the connection resolves.
                if nqe.op is not NqeOp.CONNECT:
                    NQE_POOL.release(nqe)

    def _handle(self, nqe: Nqe, qset: int, core):
        handler = {
            NqeOp.SOCKET: self._op_socket,
            NqeOp.BIND: self._op_bind,
            NqeOp.LISTEN: self._op_listen,
            NqeOp.CONNECT: self._op_connect,
            NqeOp.ACCEPT_ATTACH: self._op_accept_attach,
            NqeOp.SEND: self._op_send,
            NqeOp.SENDTO: self._op_sendto,
            NqeOp.RECV_CREDIT: self._op_recv_credit,
            NqeOp.CLOSE: self._op_close,
            NqeOp.SETSOCKOPT: self._op_setsockopt,
            NqeOp.GETSOCKOPT: self._op_getsockopt,
            NqeOp.SHUTDOWN: self._op_shutdown,
            NqeOp.HEARTBEAT: self._op_heartbeat,
        }.get(nqe.op)
        if handler is None:
            self._respond_errno(nqe, qset, "EINVAL")
            return
        yield from handler(nqe, qset, core)

    # -- control operations ----------------------------------------------------------

    def _op_socket(self, nqe: Nqe, qset: int, core):
        """Create the NSM-side socket; op_data of the result carries the
        NSM socket id that completes the connection-table entry.

        op_data of the request selects the family: 0 stream, 1 datagram.
        """
        if nqe.op_data == 1:
            if not hasattr(self.stack, "udp_socket"):
                self._respond_errno(nqe, qset, "EINVAL")
                return
            stack_sock = self.stack.udp_socket()
            ctx = _SocketContext(stack_sock, qset, kind="udp", lib=self)
            ctx.vm_tuple = nqe.vm_tuple
            self._by_vm_tuple[ctx.vm_tuple] = ctx
            self._by_nsm_id[ctx.nsm_sock_id] = ctx
            stack_sock.on_readable = lambda _s: self._pump_udp_rx(ctx)
            self._respond(nqe, qset, op_data=ctx.nsm_sock_id)
            return
        stack_sock = self.stack.socket()
        ctx = _SocketContext(stack_sock, qset, lib=self)
        ctx.vm_tuple = nqe.vm_tuple
        self._by_vm_tuple[ctx.vm_tuple] = ctx
        self._by_nsm_id[ctx.nsm_sock_id] = ctx
        self._install_callbacks(ctx)
        self._respond(nqe, qset, op_data=ctx.nsm_sock_id)
        return
        yield  # pragma: no cover - keeps this a generator

    def _op_bind(self, nqe: Nqe, qset: int, core):
        ctx = self._by_vm_tuple.get(nqe.vm_tuple)
        if ctx is None:
            self._respond_errno(nqe, qset, "EBADF")
            return
        try:
            if ctx.kind == "udp":
                self.stack.udp_bind(ctx.stack_sock, nqe.op_data)
            else:
                self.stack.bind(ctx.stack_sock, nqe.op_data)
            self._respond(nqe, qset, op_data=0)
        except SocketError as error:
            self._respond_errno(nqe, qset, error.errno_name)
        return
        yield  # pragma: no cover

    def _op_listen(self, nqe: Nqe, qset: int, core):
        ctx = self._by_vm_tuple.get(nqe.vm_tuple)
        if ctx is None:
            self._respond_errno(nqe, qset, "EBADF")
            return
        try:
            self.stack.listen(ctx.stack_sock, nqe.op_data or 128)
            ctx.is_listener = True
            self._respond(nqe, qset, op_data=0)
        except SocketError as error:
            self._respond_errno(nqe, qset, error.errno_name)
        return
        yield  # pragma: no cover

    def _op_connect(self, nqe: Nqe, qset: int, core):
        # The poller does not release CONNECT requests (they stay live in
        # the stack's completion callbacks), so every exit from this
        # handler must release the request itself.
        ctx = self._by_vm_tuple.get(nqe.vm_tuple)
        if ctx is None:
            self._respond_errno(nqe, qset, "EBADF")
            NQE_POOL.release(nqe)
            return
        remote = (nqe.aux or {}).get("remote")
        if remote is None:
            self._respond_errno(nqe, qset, "EINVAL")
            NQE_POOL.release(nqe)
            return
        ctx.connect_token = nqe
        finish = self._arm_connect_resolution(ctx, nqe, qset)
        try:
            self.stack.connect(ctx.stack_sock, remote)
        except SocketError as error:
            finish(error.errno_name)
        return
        yield  # pragma: no cover

    def _arm_connect_resolution(self, ctx: _SocketContext, nqe: Nqe,
                                qset: int):
        """Install the callbacks that resolve a pending CONNECT request.

        Factored out of :meth:`_op_connect` because migration must re-arm
        them on the target NSM when a connect is in flight across the
        blackout.  Returns the resolver for synchronous resolution.
        """
        sock = ctx.stack_sock

        def finish(errno_name: Optional[str]) -> None:
            # The stack may fire both on_connected and (later) on_error;
            # the CONNECT request resolves exactly once, after which
            # ServiceLib is its final consumer.
            if ctx.connect_token is not nqe:
                return
            ctx.connect_token = None
            if errno_name is None:
                self._respond(nqe, qset, op_data=0)
                # Post-connect stack errors become ERROR_EVENTs.
                sock.on_error = lambda _s, errno: self._emit_error(ctx, errno)
            else:
                self._respond_errno(nqe, qset, errno_name)
            NQE_POOL.release(nqe)

        sock.on_connected = lambda _s: finish(None)
        sock.on_error = lambda _s, errno_name: finish(errno_name)
        return finish

    def _op_accept_attach(self, nqe: Nqe, qset: int, core):
        """The guest attached its socket id to an accepted connection."""
        ctx = self._by_nsm_id.get(nqe.op_data)
        if ctx is None:
            return
        ctx.vm_tuple = nqe.vm_tuple
        ctx.qset = qset
        self._by_vm_tuple[ctx.vm_tuple] = ctx
        # Data may have arrived before the guest attached: flush it now.
        self._pump_rx(ctx)
        return
        yield  # pragma: no cover

    def _op_setsockopt(self, nqe: Nqe, qset: int, core):
        # Options are accepted and recorded; the simulated stacks have no
        # tunables that alter behaviour (SO_REUSEPORT is modelled at the
        # capacity level in repro.model).
        ctx = self._by_vm_tuple.get(nqe.vm_tuple)
        option = (nqe.aux or {}).get("option")
        if ctx is not None and option is not None:
            ctx.options[option] = nqe.op_data
        self._respond(nqe, qset, op_data=0)
        return
        yield  # pragma: no cover

    def _op_getsockopt(self, nqe: Nqe, qset: int, core):
        """Read back a recorded option value (0 for never-set options)."""
        ctx = self._by_vm_tuple.get(nqe.vm_tuple)
        if ctx is None:
            self._respond_errno(nqe, qset, "EBADF")
            return
        option = (nqe.aux or {}).get("option")
        self._respond(nqe, qset, op_data=ctx.options.get(option, 0))
        return
        yield  # pragma: no cover

    def _op_heartbeat(self, nqe: Nqe, qset: int, core):
        """CoreEngine liveness probe: answer immediately on the completion
        ring.  A crashed/stalled NSM never reaches this handler, which is
        exactly what CE's failure detector keys on."""
        self._emit(qset, nqe.response(NqeOp.HEARTBEAT_ACK), event=False)
        return
        yield  # pragma: no cover

    def _abort_pending_connect(self, ctx: _SocketContext, qset: int) -> None:
        """A close raced an in-flight connect.  Once the socket is torn
        down the stack never fires the connect callbacks, so resolve the
        parked CONNECT request here or its NQE is leaked."""
        pending = ctx.connect_token
        if pending is None:
            return
        ctx.connect_token = None
        self._respond_errno(pending, qset, "ECONNRESET")
        NQE_POOL.release(pending)

    def _op_close(self, nqe: Nqe, qset: int, core):
        ctx = self._by_vm_tuple.get(nqe.vm_tuple)
        if ctx is None:
            self._respond(nqe, qset, op_data=0, req_op=NqeOp.CLOSE)
            return
        self._abort_pending_connect(ctx, qset)
        ctx.closing = True
        if ctx.kind == "udp":
            self.stack.udp_close(ctx.stack_sock)
            self._by_nsm_id.pop(ctx.nsm_sock_id, None)
        else:
            if ctx.is_listener:
                self._reap_listener_backlog(ctx)
            if not ctx.pending_tx:
                self._finish_close(ctx)
        self._respond(nqe, qset, op_data=0, req_op=NqeOp.CLOSE)
        self._by_vm_tuple.pop(nqe.vm_tuple, None)
        return
        yield  # pragma: no cover

    def _op_shutdown(self, nqe: Nqe, qset: int, core):
        """Half-close (SHUT_WR): FIN the write side, keep receiving.

        The stack sends its FIN once buffered data drains; the context
        stays mapped so inbound data keeps flowing to the guest until the
        peer closes too.
        """
        ctx = self._by_vm_tuple.get(nqe.vm_tuple)
        if ctx is None or ctx.kind == "udp":
            self._respond_errno(nqe, qset, "EINVAL")
            return
        if not ctx.pending_tx:
            try:
                self.stack.close(ctx.stack_sock)
            except SocketError as error:
                self._respond_errno(nqe, qset, error.errno_name)
                return
        else:
            ctx.closing = True  # FIN goes out when pending bytes drain
        self._respond(nqe, qset, op_data=0)
        return
        yield  # pragma: no cover

    def _finish_close(self, ctx: _SocketContext) -> None:
        try:
            self.stack.close(ctx.stack_sock)
        except SocketError:
            pass
        self._by_nsm_id.pop(ctx.nsm_sock_id, None)

    def _reap_listener_backlog(self, ctx: _SocketContext) -> None:
        """Closing a listener strands the children the guest never
        attached: pipelined-accept contexts (ACCEPT_EVENT still in flight
        or unread) and connections queued inside the stack.  Reset and
        free them all — as Linux does when a listening socket closes —
        so neither stack connections nor contexts leak."""
        for child in list(self._by_nsm_id.values()):
            if child.listener_ctx is ctx and child.vm_tuple is None:
                try:
                    self.stack.abort(child.stack_sock)
                except SocketError:
                    pass
                self._by_nsm_id.pop(child.nsm_sock_id, None)
        while True:
            try:
                stranded = self.stack.accept(ctx.stack_sock)
            except SocketError:
                break
            if stranded is None:
                break
            try:
                self.stack.abort(stranded)
            except SocketError:
                pass

    # -- data path ----------------------------------------------------------------------

    def _op_send(self, nqe: Nqe, qset: int, core):
        region = self._region_for(nqe.vm_id)
        buffer = region.get(nqe.data_ptr)
        ctx = self._by_vm_tuple.get(nqe.vm_tuple)
        if ctx is None or ctx.closing:
            buffer.free()  # socket gone: drop the payload, no leak
            return
        data = buffer.read()
        buffer.free()
        # The extra copy from hugepages into the stack (§7.8's overhead).
        yield core.execute(self.cost.nsm_copy_cycles(len(data)),
                           "servicelib.send_copy")
        ctx.pending_tx.append(data)
        ctx.pending_tx_bytes += len(data)
        self._flush_tx(ctx, nqe)

    def _flush_tx(self, ctx: _SocketContext, request: Optional[Nqe] = None) -> None:
        """Push pending bytes into the stack; credit the guest as accepted."""
        if self.crashed or ctx.lib is not self:
            return
        accepted_total = 0
        while ctx.pending_tx:
            chunk = ctx.pending_tx[0]
            try:
                accepted = self.stack.send(ctx.stack_sock, chunk)
            except SocketError as error:
                self._emit_error(ctx, error.errno_name)
                ctx.pending_tx.clear()
                ctx.pending_tx_bytes = 0
                return
            if accepted == 0:
                break
            accepted_total += accepted
            ctx.pending_tx_bytes -= accepted
            if accepted < len(chunk):
                ctx.pending_tx[0] = chunk[accepted:]
                break
            ctx.pending_tx.popleft()
        if accepted_total and ctx.vm_tuple is not None:
            vm_id, vm_qset, vm_sock = ctx.vm_tuple
            credit = NQE_POOL.acquire(
                NqeOp.SEND_RESULT, vm_id, vm_qset, vm_sock,
                op_data=0, size=accepted_total, created_at=self.sim.now)
            self._emit(ctx.qset, credit, event=False)
        if ctx.closing and not ctx.pending_tx:
            self._finish_close(ctx)

    def _op_sendto(self, nqe: Nqe, qset: int, core):
        region = self._region_for(nqe.vm_id)
        buffer = region.get(nqe.data_ptr)
        ctx = self._by_vm_tuple.get(nqe.vm_tuple)
        if ctx is None or ctx.kind != "udp":
            buffer.free()
            return
        data = buffer.read()
        buffer.free()
        yield core.execute(self.cost.nsm_copy_cycles(len(data)),
                           "servicelib.send_copy")
        dest = (nqe.aux or {}).get("dest")
        vm_id, vm_qset, vm_sock = ctx.vm_tuple
        try:
            self.stack.udp_sendto(ctx.stack_sock, data, dest)
            credit = NQE_POOL.acquire(
                NqeOp.SEND_RESULT, vm_id, vm_qset, vm_sock,
                op_data=0, size=len(data), created_at=self.sim.now)
        except SocketError as error:
            code = RESULT_ERRNO.get(error.errno_name, 5)
            credit = NQE_POOL.acquire(
                NqeOp.SEND_RESULT, vm_id, vm_qset, vm_sock,
                op_data=-code, size=len(data), created_at=self.sim.now)
        self._emit(ctx.qset, credit, event=False)

    def _pump_udp_rx(self, ctx: _SocketContext) -> None:
        """Forward queued datagrams to the guest as DATA_ARRIVED events."""
        if self.crashed or ctx.lib is not self or ctx.vm_tuple is None:
            return
        vm_id, vm_qset, vm_sock = ctx.vm_tuple
        core = self.cores[ctx.qset % len(self.cores)]
        while True:
            item = self.stack.udp_recvfrom(ctx.stack_sock, 1 << 16)
            if item is None:
                return
            data, source = item
            buffer = self._region_for(vm_id).try_alloc(len(data))
            if buffer is None:
                return  # UDP semantics: drop under memory pressure
            buffer.write(data)
            core.charge(self.cost.nsm_copy_cycles(len(data)),
                        "servicelib.recv_copy")
            event = NQE_POOL.acquire(
                NqeOp.DATA_ARRIVED, vm_id, vm_qset, vm_sock,
                data_ptr=buffer.buffer_id, size=len(data),
                aux={"from": source}, created_at=self.sim.now)
            self._emit(ctx.qset, event, event=True)

    def _op_recv_credit(self, nqe: Nqe, qset: int, core):
        ctx = self._by_vm_tuple.get(nqe.vm_tuple)
        if ctx is None:
            return
        ctx.rx_window_used = max(0, ctx.rx_window_used - nqe.op_data)
        self._pump_rx(ctx)
        return
        yield  # pragma: no cover

    def _effective_recv_window(self) -> int:
        """Per-connection receive window after overload clamping.

        When this NSM's home-shard governor reports pressure, ServiceLib
        stops amplifying the backlog: the effective window halves at
        level 1 (pressured) and quarters at level 2 (overloaded), floored
        at one RX_CHUNK so established flows keep trickling.  TCP flow
        control then pushes back on the remote sender — degradation, not
        drops.
        """
        gov = governor_for_device(self.device)
        if gov is None or gov.level == 0:
            return self.recv_window_bytes
        shift = 1 if gov.level == LEVEL_PRESSURED else 2
        window = self.recv_window_bytes >> shift
        floor = min(self.recv_window_bytes, RX_CHUNK)
        if window < floor:
            window = floor
        if window < self.recv_window_bytes:
            self.rx_window_clamps += 1
        return window

    def _pump_rx(self, ctx: _SocketContext) -> None:
        """Move received bytes from the stack into hugepages + NQEs."""
        if self.crashed or ctx.lib is not self or ctx.vm_tuple is None:
            return
        sock = ctx.stack_sock
        core = self.cores[ctx.qset % len(self.cores)]
        vm_id, vm_qset, vm_sock = ctx.vm_tuple
        recv_window = self._effective_recv_window()
        while ctx.rx_window_used < recv_window:
            budget = min(RX_CHUNK,
                         recv_window - ctx.rx_window_used)
            data = self.stack.recv(sock, budget)
            if not data:
                break
            buffer = self._region_for(vm_id).try_alloc(len(data))
            if buffer is None:
                # Hugepages exhausted: retry once the guest frees buffers.
                self.sim.call_later(20e-6, lambda: self._pump_rx(ctx))
                break
            buffer.write(data)
            core.charge(self.cost.nsm_copy_cycles(len(data)),
                        "servicelib.recv_copy")
            ctx.rx_window_used += len(data)
            event = NQE_POOL.acquire(
                NqeOp.DATA_ARRIVED, vm_id, vm_qset, vm_sock,
                data_ptr=buffer.buffer_id, size=len(data),
                created_at=self.sim.now)
            self._emit(ctx.qset, event, event=True)
        if getattr(sock, "eof", False) and not ctx.peer_closed_sent:
            ctx.peer_closed_sent = True
            event = NQE_POOL.acquire(NqeOp.PEER_CLOSED, vm_id, vm_qset,
                                     vm_sock, created_at=self.sim.now)
            self._emit(ctx.qset, event, event=True)

    def _emit_error(self, ctx: _SocketContext, errno_name: str) -> None:
        if self.crashed or ctx.lib is not self or ctx.vm_tuple is None:
            return
        vm_id, vm_qset, vm_sock = ctx.vm_tuple
        code = RESULT_ERRNO.get(errno_name, 5)
        event = NQE_POOL.acquire(NqeOp.ERROR_EVENT, vm_id, vm_qset, vm_sock,
                                 op_data=-code, created_at=self.sim.now)
        self._emit(ctx.qset, event, event=True)

    # -- stack callbacks -------------------------------------------------------------------

    def _install_callbacks(self, ctx: _SocketContext) -> None:
        sock = ctx.stack_sock
        sock.on_readable = lambda _s: self._pump_rx(ctx)
        sock.on_writable = lambda _s: self._flush_tx(ctx)
        sock.on_accept_ready = lambda listener: self._drain_accepts(ctx)
        sock.on_error = lambda _s, errno: self._emit_error(ctx, errno)

    def _drain_accepts(self, listener_ctx: _SocketContext) -> None:
        """Pipelined accept (§4.6): take connections from the stack now,
        announce them to the guest with ACCEPT_EVENT NQEs."""
        if (self.crashed or listener_ctx.lib is not self
                or listener_ctx.vm_tuple is None):
            return
        vm_id, vm_qset, vm_sock = listener_ctx.vm_tuple
        while True:
            child = self.stack.accept(listener_ctx.stack_sock)
            if child is None:
                return
            ctx = _SocketContext(child, listener_ctx.qset, lib=self)
            ctx.listener_ctx = listener_ctx
            self._by_nsm_id[ctx.nsm_sock_id] = ctx
            self._install_callbacks(ctx)
            event = NQE_POOL.acquire(
                NqeOp.ACCEPT_EVENT, vm_id, vm_qset, vm_sock,
                op_data=ctx.nsm_sock_id,
                aux={"peer": getattr(child, "remote", None)},
                created_at=self.sim.now)
            self._emit(listener_ctx.qset, event, event=True)

    # -- live migration ----------------------------------------------------------------------

    def export_vm_sockets(self, vm_id: int) -> list:
        """Quiesce and hand over every socket context owned by ``vm_id``.

        Each record carries the context object (the live stack socket
        travels with it) plus a TCB manifest snapshot taken at export
        time.  After this call the contexts belong to nobody: callbacks
        are unhooked, so data arriving during the blackout accumulates in
        the stack's receive buffers (the engine keeps ACKing) and is
        flushed by the importer's resume.
        """
        if self.crashed:
            raise ConfigurationError(
                f"NSM {self.nsm_id} has crashed; nothing to export")
        if not getattr(self.stack, "supports_migration", lambda: False)():
            raise ConfigurationError(
                f"stack {getattr(self.stack, 'name', '?')} does not "
                "support live migration")
        owned = []
        for ctx in self._by_nsm_id.values():
            if ctx.vm_tuple is not None:
                if ctx.vm_tuple[0] == vm_id:
                    owned.append(ctx)
            elif (ctx.listener_ctx is not None
                  and ctx.listener_ctx.vm_tuple is not None
                  and ctx.listener_ctx.vm_tuple[0] == vm_id):
                # Pipelined-accept children the guest has not attached
                # yet travel with their listener.
                owned.append(ctx)
        if any(ctx.kind == "udp" for ctx in owned):
            raise ConfigurationError(
                "UDP sockets cannot be live-migrated")
        owned.sort(key=lambda c: c.nsm_sock_id)
        records = []
        for ctx in owned:
            sock = ctx.stack_sock
            sock.on_readable = None
            sock.on_writable = None
            sock.on_accept_ready = None
            sock.on_connected = None
            sock.on_error = None
            self._by_nsm_id.pop(ctx.nsm_sock_id, None)
            if ctx.vm_tuple is not None:
                self._by_vm_tuple.pop(ctx.vm_tuple, None)
            ctx.lib = None
            records.append({"ctx": ctx, "tcb": tcb_manifest(sock)})
        return records

    def import_vm_sockets(self, vm_id: int, records: list,
                          source_stack) -> int:
        """Adopt exported contexts: move their stack sockets onto our
        stack, re-register the lookup maps, then resume each context
        (re-installing callbacks and flushing anything that queued up
        during the blackout)."""
        if not getattr(self.stack, "supports_migration", lambda: False)():
            raise ConfigurationError(
                f"stack {getattr(self.stack, 'name', '?')} does not "
                "support live migration")
        n_qsets = len(self.device.queue_sets)
        # Pass 1: move the stack-level endpoints.  Listeners bulk-move
        # their children, so later per-child calls are no-ops.
        for record in records:
            source_stack.migrate_socket(record["ctx"].stack_sock,
                                        self.stack)
        # Pass 2: adopt the contexts under our queue-set geometry.
        for record in records:
            ctx = record["ctx"]
            ctx.lib = self
            if ctx.vm_tuple is not None:
                ctx.qset = hash(ctx.vm_tuple) % n_qsets
                self._by_vm_tuple[ctx.vm_tuple] = ctx
            else:
                ctx.qset = ctx.qset % n_qsets
            self._by_nsm_id[ctx.nsm_sock_id] = ctx
        # Pass 3: resume — callbacks back on, blackout backlog flushed.
        for record in records:
            self._resume_context(record["ctx"])
        return len(records)

    def _resume_context(self, ctx: _SocketContext) -> None:
        sock = ctx.stack_sock
        pending = ctx.connect_token
        if pending is not None:
            # A CONNECT was in flight across the blackout: re-arm its
            # resolution here, and resolve immediately if the handshake
            # finished (or died) while callbacks were quiesced.
            self._install_callbacks(ctx)
            finish = self._arm_connect_resolution(ctx, pending, ctx.qset)
            if getattr(sock, "established", False):
                finish(None)
            elif getattr(getattr(sock, "state", None), "value",
                         None) == "closed":
                finish("ECONNRESET")
            return
        self._install_callbacks(ctx)
        if ctx.is_listener:
            if ctx.vm_tuple is not None:
                self._drain_accepts(ctx)
            return
        if ctx.vm_tuple is not None:
            self._flush_tx(ctx)
            self._pump_rx(ctx)
            if getattr(getattr(sock, "state", None), "value",
                       None) == "closed" and not ctx.peer_closed_sent:
                # Reset/timeout landed during the blackout with on_error
                # quiesced: surface it now.
                self._emit_error(ctx, "ECONNRESET")

    # -- introspection -----------------------------------------------------------------------

    def stats(self) -> dict:
        """Lifetime NQE counters and live socket contexts."""
        return {
            "nqes_processed": self.nqes_processed,
            "nqes_emitted": self.nqes_emitted,
            "nqes_dropped_crashed": self.nqes_dropped_crashed,
            "rx_window_clamps": self.rx_window_clamps,
            "live_contexts": len(self._by_nsm_id),
            "crashed": self.crashed,
        }
