"""NetKernel Queue Elements (NQEs).

Figure 3 of the paper: a fixed 32-byte element encoding one socket
operation, one execution result, or one data event::

    1B op type | 1B VM ID | 1B queue set ID | 4B VM socket ID |
    8B op_data | 8B data pointer | 4B size | 5B reserved

We keep the exact wire layout (``pack``/``unpack`` round-trip through 32
bytes) so the queue-element representation is faithful, while the hot path
passes the Python objects themselves — the simulator's equivalent of
writing the struct into shared memory.

``op_data`` carries operation arguments (port numbers, flags, result
codes).  Arguments that do not fit in 8 bytes in our string-addressed
simulation (e.g. a destination host name) travel in ``aux``; the real
system packs them into op_data as an IPv4 address + port, so the
information content is the same and the 32-byte budget is honest.
"""

from __future__ import annotations

import enum
import itertools
import struct
from typing import Any, Optional

#: The fixed NQE size (Fig. 3).
NQE_SIZE = 32

_STRUCT = struct.Struct("<BBBi q q i 5x")
assert _STRUCT.size == NQE_SIZE

_tokens = itertools.count(1)


class NqeOp(enum.IntEnum):
    """Operation / event types carried by NQEs."""

    # VM -> NSM socket operations (job queue).
    SOCKET = 1
    BIND = 2
    LISTEN = 3
    CONNECT = 4
    ACCEPT_ATTACH = 5   # VM attaches its socket id to an accepted conn
    SETSOCKOPT = 6
    GETSOCKOPT = 7
    SHUTDOWN = 8
    CLOSE = 9
    #: Guest consumed received bytes: replenish the NSM-side receive
    #: window (the simulation's explicit form of the paper's "receive
    #: buffer usage" accounting in §4.5).
    RECV_CREDIT = 10
    # VM -> NSM operations with data (send queue).
    SEND = 16
    SENDTO = 17
    # NSM -> VM results (completion queue).
    OP_RESULT = 32
    SEND_RESULT = 33
    # NSM -> VM events (receive queue).
    DATA_ARRIVED = 48
    ACCEPT_EVENT = 49
    CONNECTED_EVENT = 50
    PEER_CLOSED = 51
    ERROR_EVENT = 52


class Nqe:
    """One queue element.

    ``token`` correlates a response with its request (the real system uses
    the socket id plus op type; an explicit token keeps the simulation
    easy to audit).  ``aux`` carries non-numeric arguments as described in
    the module docstring.
    """

    __slots__ = ("op", "vm_id", "queue_set_id", "socket_id", "op_data",
                 "data_ptr", "size", "token", "aux", "created_at", "trace")

    def __init__(self, op: NqeOp, vm_id: int, queue_set_id: int,
                 socket_id: int, op_data: int = 0, data_ptr: int = 0,
                 size: int = 0, token: Optional[int] = None,
                 aux: Any = None, created_at: float = 0.0):
        self.op = NqeOp(op)
        self.vm_id = vm_id
        self.queue_set_id = queue_set_id
        self.socket_id = socket_id
        self.op_data = op_data
        self.data_ptr = data_ptr
        self.size = size
        self.token = next(_tokens) if token is None else token
        self.aux = aux
        self.created_at = created_at
        #: Sim-time stamps written by repro.obs when tracing is enabled;
        #: stays None otherwise (not part of the 32-byte wire format).
        self.trace = None

    # -- wire format -------------------------------------------------------

    def pack(self) -> bytes:
        """The 32-byte on-queue representation (Fig. 3)."""
        return _STRUCT.pack(int(self.op), self.vm_id, self.queue_set_id,
                            self.socket_id, self.op_data, self.data_ptr,
                            self.size)

    @classmethod
    def unpack(cls, raw: bytes) -> "Nqe":
        """Decode a 32-byte element (token/aux are sim-side metadata)."""
        if len(raw) != NQE_SIZE:
            raise ValueError(f"NQE must be {NQE_SIZE} bytes, got {len(raw)}")
        op, vm_id, qset, sock, op_data, data_ptr, size = _STRUCT.unpack(raw)
        return cls(NqeOp(op), vm_id, qset, sock, op_data, data_ptr, size,
                   token=0)

    def response(self, op: NqeOp, op_data: int = 0, data_ptr: int = 0,
                 size: int = 0, aux: Any = None) -> "Nqe":
        """A response NQE carrying this request's VM tuple and token."""
        return Nqe(op, self.vm_id, self.queue_set_id, self.socket_id,
                   op_data=op_data, data_ptr=data_ptr, size=size,
                   token=self.token, aux=aux)

    @property
    def vm_tuple(self):
        """⟨VM ID, queue set ID, socket ID⟩ — the connection-table key."""
        return (self.vm_id, self.queue_set_id, self.socket_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<NQE {self.op.name} vm={self.vm_id} qs={self.queue_set_id} "
                f"sock={self.socket_id} size={self.size}>")


#: Result codes carried in op_data of OP_RESULT NQEs.
RESULT_OK = 0
RESULT_ERRNO = {
    "EADDRINUSE": 98,
    "ECONNREFUSED": 111,
    "ECONNRESET": 104,
    "ETIMEDOUT": 110,
    "EINVAL": 22,
    "EBADF": 9,
}
ERRNO_NAMES = {code: name for name, code in RESULT_ERRNO.items()}
