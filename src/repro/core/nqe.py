"""NetKernel Queue Elements (NQEs).

Figure 3 of the paper: a fixed 32-byte element encoding one socket
operation, one execution result, or one data event::

    1B op type | 1B VM ID | 1B queue set ID | 4B VM socket ID |
    8B op_data | 8B data pointer | 4B size | 5B reserved

We keep the exact wire layout (``pack``/``unpack`` round-trip through 32
bytes) so the queue-element representation is faithful, while the hot path
passes the Python objects themselves — the simulator's equivalent of
writing the struct into shared memory.

``op_data`` carries operation arguments (port numbers, flags, result
codes).  Arguments that do not fit in 8 bytes in our string-addressed
simulation (e.g. a destination host name) travel in ``aux``; the real
system packs them into op_data as an IPv4 address + port, so the
information content is the same and the 32-byte budget is honest.
"""

from __future__ import annotations

import enum
import itertools
import struct
from typing import Any, Optional

#: The fixed NQE size (Fig. 3).
NQE_SIZE = 32

_STRUCT = struct.Struct("<BBBi q q i 5x")
assert _STRUCT.size == NQE_SIZE

_tokens = itertools.count(1)


class NqeOp(enum.IntEnum):
    """Operation / event types carried by NQEs."""

    # VM -> NSM socket operations (job queue).
    SOCKET = 1
    BIND = 2
    LISTEN = 3
    CONNECT = 4
    ACCEPT_ATTACH = 5   # VM attaches its socket id to an accepted conn
    SETSOCKOPT = 6
    GETSOCKOPT = 7
    SHUTDOWN = 8
    CLOSE = 9
    #: Guest consumed received bytes: replenish the NSM-side receive
    #: window (the simulation's explicit form of the paper's "receive
    #: buffer usage" accounting in §4.5).
    RECV_CREDIT = 10
    #: CoreEngine health probe into an NSM's job ring (§8's failure
    #: discussion); answered by ServiceLib with HEARTBEAT_ACK.
    HEARTBEAT = 11
    # VM -> NSM operations with data (send queue).
    SEND = 16
    SENDTO = 17
    # NSM -> VM results (completion queue).
    OP_RESULT = 32
    SEND_RESULT = 33
    #: ServiceLib's liveness answer, intercepted by CoreEngine (never
    #: delivered to a VM).
    HEARTBEAT_ACK = 34
    # NSM -> VM events (receive queue).
    DATA_ARRIVED = 48
    ACCEPT_EVENT = 49
    CONNECTED_EVENT = 50
    PEER_CLOSED = 51
    ERROR_EVENT = 52


class Nqe:
    """One queue element.

    ``token`` correlates a response with its request (the real system uses
    the socket id plus op type; an explicit token keeps the simulation
    easy to audit).  ``aux`` carries non-numeric arguments as described in
    the module docstring.
    """

    __slots__ = ("op", "vm_id", "queue_set_id", "socket_id", "op_data",
                 "data_ptr", "size", "token", "aux", "created_at", "trace")

    def __init__(self, op: NqeOp, vm_id: int, queue_set_id: int,
                 socket_id: int, op_data: int = 0, data_ptr: int = 0,
                 size: int = 0, token: Optional[int] = None,
                 aux: Any = None, created_at: float = 0.0):
        self._reinit(op, vm_id, queue_set_id, socket_id, op_data=op_data,
                     data_ptr=data_ptr, size=size, token=token, aux=aux,
                     created_at=created_at)

    def _reinit(self, op: NqeOp, vm_id: int, queue_set_id: int,
                socket_id: int, op_data: int = 0, data_ptr: int = 0,
                size: int = 0, token: Optional[int] = None,
                aux: Any = None, created_at: float = 0.0) -> "Nqe":
        """(Re)initialize every field — shared by __init__ and the pool,
        so a recycled element is indistinguishable from a fresh one."""
        # ``NqeOp.__call__`` is surprisingly expensive and acquire() sits on
        # the switching hot path; skip the conversion when ``op`` is already
        # an enum member (the overwhelmingly common case).
        self.op = op if type(op) is NqeOp else NqeOp(op)
        self.vm_id = vm_id
        self.queue_set_id = queue_set_id
        self.socket_id = socket_id
        self.op_data = op_data
        self.data_ptr = data_ptr
        self.size = size
        self.token = next(_tokens) if token is None else token
        self.aux = aux
        self.created_at = created_at
        #: Sim-time stamps written by repro.obs when tracing is enabled;
        #: stays None otherwise (not part of the 32-byte wire format).
        self.trace = None
        return self

    # -- wire format -------------------------------------------------------

    def pack(self) -> bytes:
        """The 32-byte on-queue representation (Fig. 3)."""
        return _STRUCT.pack(int(self.op), self.vm_id, self.queue_set_id,
                            self.socket_id, self.op_data, self.data_ptr,
                            self.size)

    @classmethod
    def unpack(cls, raw: bytes) -> "Nqe":
        """Decode a 32-byte element (token/aux are sim-side metadata).

        The token is *not* part of the wire format, so a decoded element
        draws a fresh one.  (It used to be hardcoded to 0 — but ``_tokens``
        is shared and starts at 1, so a 0 token was not reserved and an
        unpacked element could shadow a live request's correlation token in
        any map keyed by token.)
        """
        if len(raw) != NQE_SIZE:
            raise ValueError(f"NQE must be {NQE_SIZE} bytes, got {len(raw)}")
        op, vm_id, qset, sock, op_data, data_ptr, size = _STRUCT.unpack(raw)
        return cls(NqeOp(op), vm_id, qset, sock, op_data, data_ptr, size,
                   token=None)

    def response(self, op: NqeOp, op_data: int = 0, data_ptr: int = 0,
                 size: int = 0, aux: Any = None) -> "Nqe":
        """A response NQE carrying this request's VM tuple and token."""
        return NQE_POOL.acquire(op, self.vm_id, self.queue_set_id,
                                self.socket_id, op_data=op_data,
                                data_ptr=data_ptr, size=size,
                                token=self.token, aux=aux)

    @property
    def vm_tuple(self):
        """⟨VM ID, queue set ID, socket ID⟩ — the connection-table key."""
        return (self.vm_id, self.queue_set_id, self.socket_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<NQE {self.op.name} vm={self.vm_id} qs={self.queue_set_id} "
                f"sock={self.socket_id} size={self.size}>")


class NqePool:
    """Free-list of :class:`Nqe` objects (the datapath's only high-volume
    allocation besides events).

    The real system's queue elements live in preallocated shared-memory
    slots; this is the simulator's analogue.  ``acquire`` reuses a
    released element when one is available, fully reinitializing every
    field (including ``trace``, so a recycled element never leaks stale
    observability stamps).  ``release`` is called by the *final consumer*
    of an element — GuestLib for inbound NQEs (its ``_call`` releases an
    OP_RESULT once the blocked caller has copied the result out; the
    poller releases everything else, including orphaned responses whose
    caller timed out), ServiceLib for request NQEs it has handled (a
    CONNECT is released by its resolution callback), and CoreEngine for
    elements it drops or intercepts (backpressure drops, heartbeat ACKs,
    reclaimed rings) — never by intermediaries.

    Recycling is observable only through the pool's own counters: a
    recycled element is field-for-field identical to a fresh one, so the
    simulated timeline does not depend on pool hits or misses.
    """

    __slots__ = ("max_free", "_free", "allocated", "reused", "released",
                 "discarded")

    def __init__(self, max_free: int = 8192):
        self.max_free = max_free
        self._free: list = []
        # Lifetime counters (perf harness / tests).
        self.allocated = 0
        self.reused = 0
        self.released = 0
        #: Returns past the free-list cap: consumed, but not retained.
        self.discarded = 0

    def acquire(self, op: NqeOp, vm_id: int, queue_set_id: int,
                socket_id: int, op_data: int = 0, data_ptr: int = 0,
                size: int = 0, token: Optional[int] = None,
                aux: Any = None, created_at: float = 0.0) -> Nqe:
        """A fully initialized NQE, recycled when the free list allows."""
        if self._free:
            self.reused += 1
            return self._free.pop()._reinit(
                op, vm_id, queue_set_id, socket_id, op_data=op_data,
                data_ptr=data_ptr, size=size, token=token, aux=aux,
                created_at=created_at)
        self.allocated += 1
        return Nqe(op, vm_id, queue_set_id, socket_id, op_data=op_data,
                   data_ptr=data_ptr, size=size, token=token, aux=aux,
                   created_at=created_at)

    def release(self, nqe: Nqe) -> None:
        """Return a fully consumed element to the free list."""
        if len(self._free) >= self.max_free:
            self.discarded += 1
            return
        nqe.aux = None
        nqe.trace = None
        self._free.append(nqe)
        self.released += 1

    @property
    def outstanding(self) -> int:
        """Acquired elements not yet returned by their final consumer.

        Leak detector for tests: at quiescence (no NQEs in any ring, no
        blocked callers) this must be back to its pre-workload value.
        """
        return (self.allocated + self.reused) - (self.released + self.discarded)

    def stats(self) -> dict:
        # ``discarded`` and ``outstanding`` stay off this dict: they are
        # leak-detector internals exposed via the ``outstanding`` property.
        return {"allocated": self.allocated, "reused": self.reused,
                "released": self.released, "free": len(self._free)}


#: Process-wide pool shared by GuestLib/ServiceLib (single-threaded sim).
NQE_POOL = NqePool()


#: Result codes carried in op_data of OP_RESULT NQEs.
RESULT_OK = 0
RESULT_ERRNO = {
    "EADDRINUSE": 98,
    "EAGAIN": 11,
    "ECONNREFUSED": 111,
    "ECONNRESET": 104,
    "ETIMEDOUT": 110,
    "EINVAL": 22,
    "EBADF": 9,
}
ERRNO_NAMES = {code: name for name, code in RESULT_ERRNO.items()}
