"""Queue sets: the four lockless rings of one NK-device lane (§4.2).

Each queue set has a *job* queue (control operations, VM→NSM), a
*completion* queue (execution results, NSM→VM), a *send* queue (operations
with data, VM→NSM) and a *receive* queue (new-data events, NSM→VM).  Each
ring is shared memory with CoreEngine, making every ring single-producer /
single-consumer (§3).
"""

from __future__ import annotations

from typing import List

from repro.core.nqe import Nqe
from repro.mem.ring import SpscRing

#: Default ring capacity in NQEs (ring bytes / 32B per element).
DEFAULT_RING_SLOTS = 4096


class QueueSet:
    """One per-vCPU lane of four SPSC rings."""

    def __init__(self, owner_id: str, index: int,
                 slots: int = DEFAULT_RING_SLOTS):
        self.owner_id = owner_id
        self.index = index
        prefix = f"{owner_id}.qs{index}"
        self.job = SpscRing(slots, name=f"{prefix}.job")
        self.completion = SpscRing(slots, name=f"{prefix}.completion")
        self.send = SpscRing(slots, name=f"{prefix}.send")
        self.receive = SpscRing(slots, name=f"{prefix}.receive")

    # The guest (or ServiceLib) side produces on job/send and consumes on
    # completion/receive; CoreEngine does the inverse.  Direction helpers
    # keep call sites readable.

    @property
    def outbound(self) -> List[SpscRing]:
        """Rings this device produces into (toward CoreEngine)."""
        return [self.job, self.send]

    @property
    def inbound(self) -> List[SpscRing]:
        """Rings this device consumes from (filled by CoreEngine)."""
        return [self.completion, self.receive]

    def outbound_depth(self) -> int:
        return len(self.job) + len(self.send)

    def inbound_depth(self) -> int:
        return len(self.completion) + len(self.receive)

    def stats(self) -> dict:
        """Per-ring produced/consumed/rejection counters."""
        return {
            ring.name: {
                "produced": ring.produced,
                "consumed": ring.consumed,
                "full_rejections": ring.full_rejections,
                "depth": len(ring),
            }
            for ring in (self.job, self.completion, self.send, self.receive)
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<QueueSet {self.owner_id}#{self.index}>"


def push_nqe(ring: SpscRing, nqe: Nqe, owner: object) -> bool:
    """Typed helper: push one NQE, False when the ring is full."""
    return ring.try_push(nqe, owner=owner)
