"""The guest VM: vCPUs, the GuestLib instance, and application hosting."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import ConfigurationError


class GuestVM:
    """A tenant VM under NetKernel: no network stack inside, only GuestLib.

    Applications run as generator processes pinned to vCPUs; they talk to
    the network exclusively through the BSD socket facade backed by
    GuestLib (see :mod:`repro.core.sockets`).
    """

    def __init__(self, sim, name: str, vcpus: int = 1, user: str = "tenant",
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 core_hz: Optional[float] = None):
        if vcpus < 1:
            raise ConfigurationError(f"VM needs >=1 vCPU, got {vcpus}")
        self.sim = sim
        self.name = name
        self.user = user
        hz = core_hz or cost_model.core_hz
        self.cores: List[Core] = [
            Core(sim, name=f"{name}.cpu{i}", hz=hz) for i in range(vcpus)
        ]
        self.cost = cost_model
        # Installed by NetKernelHost.add_vm().
        self.vm_id: Optional[int] = None
        self.guestlib = None
        self._apps = []

    @property
    def vcpus(self) -> int:
        return len(self.cores)

    def spawn(self, app_generator) -> object:
        """Run an application coroutine inside this VM."""
        process = self.sim.process(app_generator)
        self._apps.append(process)
        return process

    def total_cycles(self) -> float:
        return sum(core.busy_cycles for core in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GuestVM {self.name} vcpus={self.vcpus} user={self.user}>"
