"""Sharded CoreEngine: the NQE switch partitioned over N simulated cores.

ROADMAP names the single CoreEngine as the scaling boundary: one
switching loop serves every queue set on the host, so past a few
thousand devices the switch itself is the bottleneck, not the NSMs.
This module partitions the device population over per-shard switching
loops — each shard is a full :class:`CoreEngine` (its own core, ready
set, dirty heap, doorbell, health monitor) — while the *control plane*
stays host-global: one ConnectionTable, one VM→NSM assignment map, one
hugepage-region registry, one id space, shared by every shard.

Cross-shard handoff
-------------------

Rings are strict SPSC (repro.mem.ring): each end is claimed by exactly
one party, and for every device's consume rings that party is the
device's *home shard*.  A shard switching an NQE whose destination
device is homed elsewhere therefore cannot push it directly — it hands
the (ring, NQE, device) triple to the destination shard's inbound queue
and rings that shard's doorbell.  The destination drains its inbound
queue in :meth:`CoreEngine._pre_pass`, at the top of its next switching
pass, using the stock delivery path (fault hooks, backpressure budget
and liveness checks all apply exactly once, on the destination side).

Determinism
-----------

Each shard is itself a CoreEngine, so PR 2's ready-vs-full bit-identity
invariants hold *per shard* unchanged (``_pre_pass`` runs identically in
both scan loops).  When the partition is traffic-closed — every VM homed
with its serving NSM, as the fig08_sharded bench arranges — a shard's
simulated timeline is independent of every other shard's, and its
counters are bit-identical to a standalone one-shard run of the same
population.  The perf harness asserts exactly that.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core.coreengine import (CoreEngine, _Registration,
                                   DEFAULT_SCAN_MODE, SCAN_MODES)
from repro.core.nk_device import NKDevice
from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import ConfigurationError
from repro.mem.hugepages import HugepageRegion
from repro.mem.ring import SpscRing

#: Handoff triples drained per scratch refill in _pre_pass (a multiple
#: of 3: the inbox ring stores flattened ring/nqe/device slots).
_HANDOFF_DRAIN = 96


class _HandoffInbox:
    """Cross-shard handoff inbox: a slab-backed ring of flattened
    (ring, nqe, device) triples, with an unbounded spill deque behind it.

    The simulator is single-threaded, so the producing end is logically
    "any peer shard mid-pass" and the consuming end is the home shard's
    ``_pre_pass`` — the SPSC claim discipline is deliberately bypassed
    (owner=None) and documented here instead.  FIFO across the ring/spill
    boundary holds because once a push spills, *every* later push spills
    too until the consumer has fully drained the spill; only then does
    the (by now empty) ring start filling again.
    """

    __slots__ = ("ring", "spill")

    def __init__(self, name: str, slots: int):
        self.ring = SpscRing(max(slots, 64) * 3, name=name)
        self.spill = deque()

    def push(self, ring, nqe, device) -> None:
        r = self.ring
        if self.spill or r.capacity - r._count < 3:
            self.spill.append((ring, nqe, device))
            return
        r.try_push(ring)
        r.try_push(nqe)
        r.try_push(device)


class _ShardEngine(CoreEngine):
    """One shard: a CoreEngine that shares its control plane with its
    cluster and hands off NQEs bound for devices homed elsewhere."""

    _HAS_PRE_PASS = True  # the handoff-inbox drain must run every pass

    def __init__(self, sim, core: Core, shard_index: int,
                 cluster: "ShardedCoreEngine", **kwargs):
        self.shard_index = shard_index
        self.cluster = cluster
        #: Cross-shard handoff inbox: (ring, nqe, target_device) triples
        #: pushed by peer shards, drained at the top of the next pass.
        self._inbound = _HandoffInbox(
            f"shard{shard_index}.handoff",
            kwargs.get("ring_slots", 4096))
        #: Reusable drain scratch for the inbox (never reallocated).
        self._handoff_scratch: list = []
        self.handoffs_in = 0
        self.handoffs_out = 0
        super().__init__(sim, core, **kwargs)

    # -- cluster-wide lookups -------------------------------------------------

    def _vm_registration(self, vm_id: int) -> Optional[_Registration]:
        reg = self._vms.get(vm_id)
        return reg if reg is not None else self.cluster._find_vm(vm_id)

    def _nsm_registration(self, nsm_id: int) -> Optional[_Registration]:
        reg = self._nsms.get(nsm_id)
        return reg if reg is not None else self.cluster._find_nsm(nsm_id)

    def _active_nsm_ids(self, exclude: Optional[int] = None) -> List[int]:
        return self.cluster._active_nsm_ids(exclude)

    def deregister(self, numeric_id: int) -> None:
        # A guest can reach this directly through its shard's control
        # ring (DEREGISTER op); the facade's home directory must not be
        # left pointing at the corpse.
        CoreEngine.deregister(self, numeric_id)
        self.cluster._drop_home(numeric_id)

    # -- cross-shard handoff --------------------------------------------------

    def _home_of(self, device: NKDevice) -> "CoreEngine":
        reg = device.ce_registration
        if reg is not None and reg.engine is not None:
            return reg.engine
        return self

    def _deliver(self, ring, nqe, target_device: NKDevice):
        home = self._home_of(target_device)
        if home is not self:
            self.handoffs_out += 1
            home._inbound.push(ring, nqe, target_device)
            home._kick_inbound()
            return
        yield from CoreEngine._deliver(self, ring, nqe, target_device)

    def _deliver_fast(self, ring, nqe, target_device: NKDevice) -> bool:
        """Vectorized delivery: a cross-shard handoff is synchronous by
        construction (push + doorbell, no yields), so it is always fast."""
        home = self._home_of(target_device)
        if home is not self:
            self.handoffs_out += 1
            home._inbound.push(ring, nqe, target_device)
            home._kick_inbound()
            return True
        return CoreEngine._deliver_fast(self, ring, nqe, target_device)

    def _pre_pass(self):
        inbox = self._inbound
        ring = inbox.ring
        spill = inbox.spill
        scratch = self._handoff_scratch
        while ring._count or spill:
            n = ring.drain_into(scratch, _HANDOFF_DRAIN)
            if n:
                for i in range(0, n, 3):
                    dring = scratch[i]
                    nqe = scratch[i + 1]
                    device = scratch[i + 2]
                    scratch[i] = scratch[i + 1] = scratch[i + 2] = None
                    self.handoffs_in += 1
                    if not self._deliver_fast(dring, nqe, device):
                        yield from CoreEngine._deliver(self, dring, nqe,
                                                       device)
                continue
            dring, nqe, device = spill.popleft()
            self.handoffs_in += 1
            if not self._deliver_fast(dring, nqe, device):
                yield from CoreEngine._deliver(self, dring, nqe, device)

    def _kick_inbound(self) -> None:
        """Wake this shard's switching loop without marking any device
        ready — the work sits in the inbound queue, not in a ring."""
        self._wake_switch()

    def _push_to_vm(self, nqe, event: bool) -> None:
        # Failover/fail-fast deliveries are synchronous; route them to
        # the VM's home shard so its ring producer identity is used.
        reg = self._vm_registration(nqe.vm_id)
        home = reg.engine if reg is not None and reg.engine is not None \
            else self
        if home is not self:
            home._push_to_vm(nqe, event)
        else:
            CoreEngine._push_to_vm(self, nqe, event)

    def stats(self) -> dict:
        out = CoreEngine.stats(self)
        out["handoffs_in"] = self.handoffs_in
        out["handoffs_out"] = self.handoffs_out
        return out


#: Counters the facade sums over its shards on attribute access.
_SUMMED_COUNTERS = frozenset({
    "nqes_switched", "batches", "vms_migrated", "conns_migrated",
    "migration_parked_ops", "rate_limited_stalls", "nqes_dropped",
    "nqes_dropped_backpressure", "nqes_failed_fast", "nqes_shed",
    "heartbeats_sent",
    "heartbeat_acks", "nsms_quarantined", "vms_failed_over",
    "conns_reset_on_failover", "stale_wakeups", "handoffs_in",
    "handoffs_out",
})


class ShardedCoreEngine:
    """N CoreEngine shards behind the single-switch API.

    Register/assign/migrate/deregister, health monitoring, isolation
    limits, stats — everything NetKernelHost and the experiments call on
    a CoreEngine works here unchanged.  Devices are placed round-robin
    per role (or pinned with ``shard=``); the ConnectionTable, VM→NSM
    map, id space, hugepage registry and failover listeners are shared
    host-global objects, so placement never changes semantics, only
    which core does the switching.
    """

    def __init__(self, sim, cores: List[Core],
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 batch_size: int = 4, ring_slots: int = 4096,
                 scan: Optional[str] = None,
                 vectorized: Optional[bool] = None):
        if not cores:
            raise ConfigurationError("need at least one shard core")
        scan = DEFAULT_SCAN_MODE if scan is None else scan
        if scan not in SCAN_MODES:
            raise ConfigurationError(
                f"unknown scan mode {scan!r}; choose from {SCAN_MODES}")
        self.sim = sim
        self.scan = scan
        self.batch_size = batch_size
        self.shards: List[_ShardEngine] = [
            _ShardEngine(sim, core, index, self, cost_model=cost_model,
                         batch_size=batch_size, ring_slots=ring_slots,
                         scan=scan, vectorized=vectorized)
            for index, core in enumerate(cores)
        ]
        self.vectorized = self.shards[0].vectorized
        # Control plane: shard 0's objects become the host-global ones.
        first = self.shards[0]
        self.table = first.table
        self.vm_to_nsm = first.vm_to_nsm
        self.migrations = first.migrations
        self.failover_listeners = first.failover_listeners
        self._vm_regions = first._vm_regions
        self._orphaned_vms = first._orphaned_vms
        self._bw_limits = first._bw_limits
        self._op_limits = first._op_limits
        self._ids = first._ids
        for shard in self.shards[1:]:
            shard.table = self.table
            shard.vm_to_nsm = self.vm_to_nsm
            shard.migrations = self.migrations
            shard.failover_listeners = self.failover_listeners
            shard._vm_regions = self._vm_regions
            shard._orphaned_vms = self._orphaned_vms
            shard._bw_limits = self._bw_limits
            shard._op_limits = self._op_limits
            shard._ids = self._ids
        # Home-shard directory (facade-registered devices only).
        self._vm_home: Dict[int, _ShardEngine] = {}
        self._nsm_home: Dict[int, _ShardEngine] = {}
        self._rr_vm = itertools.count()
        self._rr_nsm = itertools.count()

    # -- placement ------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def _pick_shard(self, role_counter, shard: Optional[int]) -> _ShardEngine:
        if shard is None:
            return self.shards[next(role_counter) % len(self.shards)]
        if not 0 <= shard < len(self.shards):
            raise ConfigurationError(
                f"shard {shard} out of range (0..{len(self.shards) - 1})")
        return self.shards[shard]

    def register_vm(self, owner_id: str, queue_sets: int,
                    hugepages: Optional[HugepageRegion] = None,
                    poll_window_sec: Optional[float] = None,
                    shard: Optional[int] = None) -> Tuple[int, NKDevice]:
        home = self._pick_shard(self._rr_vm, shard)
        vm_id, device = home.register_vm(
            owner_id, queue_sets, hugepages=hugepages,
            poll_window_sec=poll_window_sec)
        self._vm_home[vm_id] = home
        return vm_id, device

    def register_nsm(self, owner_id: str, queue_sets: int,
                     hugepages: Optional[HugepageRegion] = None,
                     poll_window_sec: Optional[float] = None,
                     shard: Optional[int] = None) -> Tuple[int, NKDevice]:
        home = self._pick_shard(self._rr_nsm, shard)
        nsm_id, device = home.register_nsm(
            owner_id, queue_sets, hugepages=hugepages,
            poll_window_sec=poll_window_sec)
        self._nsm_home[nsm_id] = home
        return nsm_id, device

    def deregister(self, numeric_id: int) -> None:
        """Release a device wherever it lives.  Unknown ids are a silent
        no-op, exactly like :meth:`CoreEngine.deregister` — the control
        ring exposes DEREGISTER to guests, so an unknown id must never
        raise.  Devices registered directly on a shard engine (bypassing
        the facade) are found by scanning the shards."""
        home = self._vm_home.get(numeric_id) or self._nsm_home.get(numeric_id)
        if home is None:
            home = next((shard for shard in self.shards
                         if numeric_id in shard._vms
                         or numeric_id in shard._nsms), None)
        if home is not None:
            home.deregister(numeric_id)

    def _drop_home(self, numeric_id: int) -> None:
        """Forget a deregistered device's home-shard entry (called from
        the shard side too, so a guest-initiated DEREGISTER switched on
        a shard's control ring cannot leave the directory stale)."""
        self._vm_home.pop(numeric_id, None)
        self._nsm_home.pop(numeric_id, None)

    def shard_of_vm(self, vm_id: int) -> int:
        home = self._vm_home.get(vm_id)
        if home is None:
            raise ConfigurationError(f"unknown VM id {vm_id}")
        return home.shard_index

    def shard_of_nsm(self, nsm_id: int) -> int:
        home = self._nsm_home.get(nsm_id)
        if home is None:
            raise ConfigurationError(f"unknown NSM id {nsm_id}")
        return home.shard_index

    def shard_loads(self) -> Dict[int, dict]:
        """Per-shard placement/load view — the autoscaler's shard-scaling
        signal and the fleet snapshot's shard report: active NSM count,
        homed (live) VM count, and live connections served from each
        shard.  O(devices), using the table's incremental per-NSM
        counts, never the connection population."""
        loads = self.table.nsm_loads()
        out: Dict[int, dict] = {
            shard.shard_index: {"nsms": 0, "vms": 0, "connections": 0}
            for shard in self.shards}
        for nid in self._active_nsm_ids():
            row = out[self._nsm_home[nid].shard_index]
            row["nsms"] += 1
            row["connections"] += loads.get(nid, 0)
        for vm_id, home in self._vm_home.items():
            if vm_id in home._vms:
                out[home.shard_index]["vms"] += 1
        return out

    def emptiest_shard(self) -> int:
        """Where the next NSM belongs: the shard with the fewest active
        NSMs, breaking ties by fewest live connections, then by index —
        so an NSM fleet spread by the autoscaler converges toward one
        serving NSM per switching core before doubling up anywhere."""
        loads = self.shard_loads()
        return min(loads, key=lambda index: (loads[index]["nsms"],
                                             loads[index]["connections"],
                                             index))

    # -- directory (shard engines call back into these) -----------------------

    def _find_vm(self, vm_id: int) -> Optional[_Registration]:
        home = self._vm_home.get(vm_id)
        return home._vms.get(vm_id) if home is not None else None

    def _find_nsm(self, nsm_id: int) -> Optional[_Registration]:
        home = self._nsm_home.get(nsm_id)
        return home._nsms.get(nsm_id) if home is not None else None

    def _vm_registration(self, vm_id: int) -> Optional[_Registration]:
        return self._find_vm(vm_id)

    def _nsm_registration(self, nsm_id: int) -> Optional[_Registration]:
        return self._find_nsm(nsm_id)

    def _active_nsm_ids(self, exclude: Optional[int] = None) -> List[int]:
        """In-service NSMs across every shard.  Mirrors CoreEngine's
        PR 5 placement fix: quarantined and deregistered NSMs are never
        candidates — ``active`` alone is not trusted, because a
        quarantine recorded on the home shard must disqualify the NSM
        even if its registration flag is out of step."""
        out: List[int] = []
        for nid, home in self._nsm_home.items():
            if nid == exclude:
                continue
            reg = home._nsms.get(nid)
            if reg is None or not reg.active:
                continue
            if nid in home.quarantined:
                continue
            out.append(nid)
        return out

    def _least_loaded_nsm(self, exclude: Optional[int] = None,
                          among: Optional[List[int]] = None) -> Optional[int]:
        """Least-loaded active NSM, optionally restricted to ``among``
        (ids already validated as active); ties break by id order."""
        candidates = among if among is not None \
            else self._active_nsm_ids(exclude)
        if not candidates:
            return None
        loads = self.table.nsm_loads()
        return min(sorted(candidates), key=lambda nid: loads.get(nid, 0))

    # -- assignment & migration ----------------------------------------------

    def assign_vm(self, vm_id: int, nsm_id: int) -> None:
        if self._find_vm(vm_id) is None:
            raise ConfigurationError(f"unknown VM id {vm_id}")
        if self._find_nsm(nsm_id) is None:
            raise ConfigurationError(f"unknown NSM id {nsm_id}")
        self.vm_to_nsm[vm_id] = nsm_id
        self._orphaned_vms.discard(vm_id)

    def assign_vm_auto(self, vm_id: int) -> int:
        """Shard-aware load balancing: prefer an active NSM homed on the
        VM's own shard (requests then never cross a shard boundary — the
        traffic-closed layout the fig08 sharded benches prove is
        bit-identical to a standalone switch), falling back to the
        cluster-wide least-loaded NSM only when the home shard has no
        qualifying NSM.  Quarantined/deregistered NSMs never qualify,
        on either path."""
        if self._find_vm(vm_id) is None:
            raise ConfigurationError(f"unknown VM id {vm_id}")
        candidates = self._active_nsm_ids()
        home = self._vm_home.get(vm_id)
        nsm_id = None
        if home is not None:
            local = [nid for nid in candidates
                     if self._nsm_home.get(nid) is home]
            nsm_id = self._least_loaded_nsm(among=local)
        if nsm_id is None:
            nsm_id = self._least_loaded_nsm(among=candidates)
        if nsm_id is None:
            raise ConfigurationError("no active NSM registered")
        self.vm_to_nsm[vm_id] = nsm_id
        self._orphaned_vms.discard(vm_id)
        return nsm_id

    def migrate_vm(self, vm_id: int, target_nsm_id: int, source_lib,
                   target_lib, **kwargs):
        home = self._vm_home.get(vm_id)
        if home is None:
            raise ConfigurationError(f"unknown VM id {vm_id}")
        # The home shard owns the VM's ring consumer end, so the drain
        # and resume steps must run there.
        return home.migrate_vm(vm_id, target_nsm_id, source_lib,
                               target_lib, **kwargs)

    def quarantine_nsm(self, nsm_id: int,
                       reason: str = "failure-detected") -> List[int]:
        home = self._nsm_home.get(nsm_id)
        if home is None:
            return []
        return home.quarantine_nsm(nsm_id, reason=reason)

    # -- health monitoring ----------------------------------------------------

    def enable_health_monitor(self, heartbeat_interval: float = 1e-3,
                              detection_timeout: float = 5e-3) -> None:
        for shard in self.shards:
            shard.enable_health_monitor(
                heartbeat_interval=heartbeat_interval,
                detection_timeout=detection_timeout)

    def disable_health_monitor(self) -> None:
        for shard in self.shards:
            shard.disable_health_monitor()

    @property
    def quarantined(self) -> Dict[int, str]:
        merged: Dict[int, str] = {}
        for shard in self.shards:
            merged.update(shard.quarantined)
        return merged

    # -- devices & isolation ---------------------------------------------------

    def vm_device(self, vm_id: int) -> NKDevice:
        return self._vm_home[vm_id]._vms[vm_id].device

    def nsm_device(self, nsm_id: int) -> NKDevice:
        return self._nsm_home[nsm_id]._nsms[nsm_id].device

    def set_bandwidth_limit(self, vm_id: int, bits_per_sec: float,
                            burst_bits: Optional[float] = None) -> None:
        self.shards[0].set_bandwidth_limit(vm_id, bits_per_sec,
                                           burst_bits=burst_bits)

    def clear_bandwidth_limit(self, vm_id: int) -> None:
        self.shards[0].clear_bandwidth_limit(vm_id)

    def set_ops_limit(self, vm_id: int, nqes_per_sec: float) -> None:
        self.shards[0].set_ops_limit(vm_id, nqes_per_sec)

    def isolation_state(self) -> dict:
        return self.shards[0].isolation_state()

    # -- overload control ------------------------------------------------------

    def enable_overload_control(self, **params):
        """Arm one overload governor per shard (each shard detects and
        governs over its own device population) and return shard 0's."""
        for shard in self.shards:
            shard.enable_overload_control(**params)
        return self.shards[0].overload

    def disable_overload_control(self) -> None:
        for shard in self.shards:
            shard.disable_overload_control()

    @property
    def overload(self):
        """Shard 0's governor (the representative for level checks);
        use :meth:`overload_governors` for the full per-shard list."""
        return self.shards[0].overload

    def overload_governors(self) -> list:
        return [shard.overload for shard in self.shards
                if shard.overload is not None]

    def set_vm_weight(self, vm_id: int, weight: float) -> None:
        """Propagate a VM's admission weight to every shard governor."""
        for shard in self.shards:
            if shard.overload is not None:
                shard.overload.set_vm_weight(vm_id, weight)

    def per_vm_drops(self) -> Dict[int, dict]:
        """Per-VM loss attribution merged across shards."""
        merged: Dict[int, dict] = {}
        for shard in self.shards:
            for vm_id, row in shard.per_vm_drops().items():
                into = merged.setdefault(
                    vm_id, {"dropped": 0, "dropped_backpressure": 0,
                            "shed": 0})
                for key, value in row.items():
                    into[key] += value
        return merged

    # -- loop control ----------------------------------------------------------

    def kick(self, device: Optional[NKDevice] = None) -> None:
        if device is not None:
            reg = device.ce_registration
            engine = reg.engine if reg is not None and reg.engine is not None \
                else self.shards[0]
            engine.kick(device)
            return
        for shard in self.shards:
            shard.kick(None)

    def stop(self) -> None:
        for shard in self.shards:
            shard.stop()

    # -- shared/propagated attributes ------------------------------------------

    @property
    def obs(self):
        return self.shards[0].obs

    @obs.setter
    def obs(self, value) -> None:
        for shard in self.shards:
            shard.obs = value

    @property
    def faults(self):
        return self.shards[0].faults

    @faults.setter
    def faults(self, value) -> None:
        for shard in self.shards:
            shard.faults = value

    @property
    def deliver_stall_budget(self) -> float:
        return self.shards[0].deliver_stall_budget

    @deliver_stall_budget.setter
    def deliver_stall_budget(self, value: float) -> None:
        for shard in self.shards:
            shard.deliver_stall_budget = value

    @property
    def ring_slots(self) -> int:
        return self.shards[0].ring_slots

    @ring_slots.setter
    def ring_slots(self, value: int) -> None:
        for shard in self.shards:
            shard.ring_slots = value

    def __getattr__(self, name: str):
        if name in _SUMMED_COUNTERS:
            shards = self.__dict__.get("shards") or ()
            return sum(getattr(shard, name) for shard in shards)
        raise AttributeError(
            f"{type(self).__name__!s} has no attribute {name!r}")

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict:
        per_shard = [shard.stats() for shard in self.shards]
        out: Dict[str, object] = {
            "shards": len(self.shards),
            "sched.mode": self.scan,
            "connections": len(self.table),
        }
        out["sched.vectorized"] = self.vectorized
        numeric = [k for k in per_shard[0]
                   if isinstance(per_shard[0][k], (int, float))
                   and k not in ("avg_batch", "connections",
                                 "sched.vectorized")]
        for key in numeric:
            out[key] = sum(stats[key] for stats in per_shard)
        out["avg_batch"] = (out["nqes_switched"] / out["batches"]
                            if out.get("batches") else 0.0)
        for index, stats in enumerate(per_shard):
            out[f"shard.{index}"] = stats
        return out
