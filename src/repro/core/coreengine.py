"""CoreEngine: the software switch and control plane (§4.3, §4.4).

CoreEngine consumes produced NQEs in batches, charges the calibrated
switching cost to its dedicated core, and copies each NQE into the proper
ring of the destination device:

* VM → NSM: job-queue ops to the NSM's job ring, send ops to its send
  ring.  The connection table maps ⟨VM id, queue set, socket id⟩ to the
  serving NSM and (by hash) one of its queue sets.
* NSM → VM: results to the VM's completion ring, events to its receive
  ring, addressed by the VM tuple the NSM copied into the response.

Isolation (§4.4, Fig. 21): round-robin polling gives basic fairness;
per-VM token buckets rate-limit bandwidth (bytes through send NQEs)
and/or operations (NQEs per second).  Egress only, as in the paper.

Scheduling (§4.3's interrupt-driven polling, applied to the switch
itself): with ``scan="ready"`` (the default) doorbells carry the kicking
device and the switch services only a dirty set of ready devices, so one
wake-up costs O(ready devices), not O(registered devices).
``scan="full"`` preserves the rescan-everything loop; both modes produce
bit-identical simulated timelines (see _run_ready for the invariants),
the ready set only removes wall-clock work.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

from repro.core.conn_table import ConnectionTable
from repro.core.nk_device import NKDevice, ROLE_NSM, ROLE_VM
from repro.core.nqe import Nqe, NqeOp
from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import ConfigurationError
from repro.mem.hugepages import HugepageRegion


class TokenBucket:
    """Continuous-refill token bucket (tokens are bits or operations)."""

    def __init__(self, sim, rate_per_sec: float, burst: float):
        if rate_per_sec <= 0:
            raise ConfigurationError(f"rate must be positive: {rate_per_sec}")
        self.sim = sim
        self.rate = rate_per_sec
        self.burst = max(burst, rate_per_sec * 1e-3)
        self.tokens = self.burst
        self._last = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now

    def try_consume(self, amount: float) -> bool:
        self._refill()
        if amount > self.burst:
            # A single operation larger than the burst could never pass a
            # plain bucket.  Admit it once the bucket is full and run a
            # token deficit, so the average rate still holds — without
            # persisting a widened burst that would weaken the cap for
            # every later operation.
            if self.tokens >= self.burst:
                self.tokens -= amount
                return True
            return False
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def time_until(self, amount: float) -> float:
        """Seconds until ``amount`` tokens will be available."""
        self._refill()
        # Oversized requests are admitted at a full bucket (see
        # try_consume), so they wait for ``burst`` tokens, not ``amount``.
        deficit = min(amount, self.burst) - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    def refund(self, amount: float) -> None:
        """Return tokens for an operation that was not admitted after all,
        never pushing the level above the configured burst."""
        self.tokens = min(self.burst, self.tokens + amount)


#: Scan-loop flavours: "ready" services only doorbelled devices; "full"
#: rescans every registered device on every pass (the seed behaviour,
#: kept for determinism comparisons).
SCAN_MODES = ("ready", "full")

#: Default used by CoreEngine(scan=None); the determinism suite and the
#: perf harness flip this to run unchanged experiments under both modes.
DEFAULT_SCAN_MODE = "ready"

#: _Registration.state values.
_IDLE, _READY = 0, 1


class _Registration:
    __slots__ = ("numeric_id", "device", "key", "state", "birth_pass",
                 "active")

    def __init__(self, numeric_id: int, device: NKDevice,
                 key: Tuple[int, int], birth_pass: int):
        self.numeric_id = numeric_id
        self.device = device
        #: (role rank, numeric id): the full scan's visiting order, used
        #: as the ready-heap priority so both modes service identically.
        self.key = key
        self.state = _IDLE
        #: Pass number at registration: a device registered mid-pass is
        #: deferred to the next pass, like the full scan's snapshot.
        self.birth_pass = birth_pass
        self.active = True


class CoreEngine:
    """The NQE switch; runs as a simulation process on a dedicated core."""

    def __init__(self, sim, core: Core,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 batch_size: int = 4, ring_slots: int = 4096,
                 scan: Optional[str] = None):
        if batch_size < 1:
            raise ConfigurationError(f"batch size must be >=1: {batch_size}")
        scan = DEFAULT_SCAN_MODE if scan is None else scan
        if scan not in SCAN_MODES:
            raise ConfigurationError(
                f"unknown scan mode {scan!r}; choose from {SCAN_MODES}")
        self.sim = sim
        self.core = core
        self.cost = cost_model
        self.batch_size = batch_size
        self.ring_slots = ring_slots
        self.scan = scan

        self.table = ConnectionTable()
        self._vms: Dict[int, _Registration] = {}
        self._nsms: Dict[int, _Registration] = {}
        self._ids = itertools.count(1)
        self.vm_to_nsm: Dict[int, int] = {}

        # Isolation state.
        self._bw_limits: Dict[int, TokenBucket] = {}
        self._op_limits: Dict[int, TokenBucket] = {}

        # Hugepage regions by VM id, retained after deregistration so
        # in-flight NQEs for a vanished VM can still free their payloads.
        self._vm_regions: Dict[int, HugepageRegion] = {}

        # Ready-set scheduler state (scan="ready").  Two heaps replicate
        # the full scan's pass structure: _current_pass holds devices to
        # service this pass in key order, _next_pass collects devices
        # that became ready at or behind the scan position.
        self._current_pass: List[Tuple[Tuple[int, int], _Registration]] = []
        self._next_pass: List[Tuple[Tuple[int, int], _Registration]] = []
        self._pass_pos: Optional[Tuple[int, int]] = None
        self._pass_counter = 0
        self._in_pass = False

        # Statistics.
        self.nqes_switched = 0
        self.batches = 0
        self.rate_limited_stalls = 0
        self.nqes_dropped = 0
        #: Stall timeouts disarmed because the doorbell won the any_of
        #: race (each one used to linger in the event heap as a no-op).
        self.stale_wakeups = 0

        # Observability (repro.obs); None means tracing is disabled and
        # the hot path pays nothing beyond the attribute check.
        self.obs = None

        self._doorbell = sim.event()
        self._running = True
        run = self._run_ready if scan == "ready" else self._run_full
        self._process = sim.process(run())

    # ------------------------------------------------------------- control --

    def register_vm(self, owner_id: str, queue_sets: int,
                    hugepages: Optional[HugepageRegion] = None,
                    poll_window_sec: Optional[float] = None) -> Tuple[int, NKDevice]:
        """Allocate an NK device for a starting VM (§4.4)."""
        return self._register(owner_id, ROLE_VM, queue_sets, hugepages,
                              poll_window_sec)

    def register_nsm(self, owner_id: str, queue_sets: int,
                     hugepages: Optional[HugepageRegion] = None,
                     poll_window_sec: Optional[float] = None) -> Tuple[int, NKDevice]:
        """Allocate an NK device for a starting NSM (§4.4)."""
        return self._register(owner_id, ROLE_NSM, queue_sets, hugepages,
                              poll_window_sec)

    def _register(self, owner_id: str, role: str, queue_sets: int,
                  hugepages: Optional[HugepageRegion],
                  poll_window_sec: Optional[float]) -> Tuple[int, NKDevice]:
        numeric_id = next(self._ids)
        hugepages = hugepages or HugepageRegion(name=f"{owner_id}.hp")
        kwargs = {}
        if poll_window_sec is not None:
            kwargs["poll_window_sec"] = poll_window_sec
        device = NKDevice(self.sim, owner_id, role, queue_sets, hugepages,
                          ring_slots=self.ring_slots, **kwargs)
        device.doorbell = self.kick
        self.core.charge(self.cost.ce_device_setup, "ce.device_setup")
        registry = self._vms if role == ROLE_VM else self._nsms
        key = (0 if role == ROLE_VM else 1, numeric_id)
        reg = _Registration(numeric_id, device, key, self._pass_counter)
        registry[numeric_id] = reg
        device.ce_registration = reg
        if role == ROLE_VM:
            self._vm_regions[numeric_id] = hugepages
        return numeric_id, device

    def deregister(self, numeric_id: int) -> None:
        """Release a VM's or NSM's NK device (shutdown path)."""
        self.core.charge(self.cost.ce_device_setup, "ce.device_teardown")
        if numeric_id in self._vms:
            for entry in self.table.entries_for_vm(numeric_id):
                self.table.remove_vm(entry.vm_tuple)
            reg = self._vms.pop(numeric_id)
            self.vm_to_nsm.pop(numeric_id, None)
        else:
            reg = self._nsms.pop(numeric_id, None)
        if reg is not None:
            # Ready-heap entries for this device are skipped lazily.
            reg.active = False

    def assign_vm(self, vm_id: int, nsm_id: int) -> None:
        """Bind a VM to the NSM that will serve it (user choice or LB)."""
        if vm_id not in self._vms:
            raise ConfigurationError(f"unknown VM id {vm_id}")
        if nsm_id not in self._nsms:
            raise ConfigurationError(f"unknown NSM id {nsm_id}")
        self.vm_to_nsm[vm_id] = nsm_id

    def assign_vm_auto(self, vm_id: int) -> int:
        """Assign a VM to the least-loaded NSM and return its id.

        The paper leaves the VM→NSM mapping to "the users offline or some
        load balancing scheme dynamically by CoreEngine" (§4.3 fn. 1);
        this is the dynamic option, balancing by live connection count.
        """
        if vm_id not in self._vms:
            raise ConfigurationError(f"unknown VM id {vm_id}")
        if not self._nsms:
            raise ConfigurationError("no NSM registered")
        table_loads = self.table.nsm_loads()
        loads = {nsm_id: table_loads.get(nsm_id, 0)
                 for nsm_id in self._nsms}
        nsm_id = min(sorted(loads), key=loads.get)
        self.vm_to_nsm[vm_id] = nsm_id
        return nsm_id

    def set_bandwidth_limit(self, vm_id: int, bits_per_sec: float,
                            burst_bits: Optional[float] = None) -> None:
        """Cap a VM's egress bandwidth through NetKernel (Fig. 21)."""
        self._bw_limits[vm_id] = TokenBucket(
            self.sim, bits_per_sec, burst_bits or bits_per_sec * 0.01)

    def clear_bandwidth_limit(self, vm_id: int) -> None:
        """Remove a VM's bandwidth cap (it becomes work-conserving)."""
        self._bw_limits.pop(vm_id, None)

    def set_ops_limit(self, vm_id: int, nqes_per_sec: float) -> None:
        """Cap a VM's NQE (operation) rate (§4.4)."""
        self._op_limits[vm_id] = TokenBucket(
            self.sim, nqes_per_sec, nqes_per_sec * 0.01)

    def nsm_device(self, nsm_id: int) -> NKDevice:
        """The NK device registered for an NSM id."""
        return self._nsms[nsm_id].device

    def vm_device(self, vm_id: int) -> NKDevice:
        """The NK device registered for a VM id."""
        return self._vms[vm_id].device

    # ----------------------------------------------------------------- loop --

    def kick(self, device: Optional[NKDevice] = None) -> None:
        """Doorbell: new NQEs were produced somewhere.

        ``device`` identifies the producer so the ready-set scheduler can
        mark exactly it dirty; ``None`` (manual kicks, ``stop()``)
        conservatively marks every registered device.
        """
        if self.scan == "ready":
            if device is not None:
                reg = device.ce_registration
                if reg is not None and reg.active:
                    self._mark_ready(reg)
            else:
                for registry in (self._vms, self._nsms):
                    for reg in registry.values():
                        self._mark_ready(reg)
        if not self._doorbell.triggered:
            self._doorbell.succeed()
            self._doorbell = self.sim.event()

    def stop(self) -> None:
        """Shut the switching loop down (used by teardown tests)."""
        self._running = False
        self.kick()

    def _mark_ready(self, reg: _Registration) -> None:
        """Enqueue a device into the dirty set, placed where the full
        scan would next visit it: ahead of the scan position → later this
        pass; at/behind it (or registered mid-pass) → next pass."""
        if reg.state == _READY or not reg.active:
            return
        reg.state = _READY
        if self._in_pass and (reg.birth_pass == self._pass_counter
                              or (self._pass_pos is not None
                                  and reg.key <= self._pass_pos)):
            heapq.heappush(self._next_pass, (reg.key, reg))
        else:
            heapq.heappush(self._current_pass, (reg.key, reg))

    def _run_full(self):
        """scan="full": rescan every registered device on every pass."""
        while self._running:
            # Capture the doorbell *before* scanning.  kick() fired while
            # the scan is suspended mid-pass succeeds the old event and
            # installs a fresh one; sleeping on the fresh event would lose
            # the wakeup for a push that landed just after its rings were
            # scanned (lost-doorbell race).
            doorbell = self._doorbell
            self._pass_counter += 1
            progressed = False
            stall: Optional[float] = None
            for registry in (self._vms, self._nsms):
                for reg in list(registry.values()):
                    result = yield from self._service_device(reg)
                    if result is True:
                        progressed = True
                    elif isinstance(result, float):
                        stall = result if stall is None else min(stall, result)
            if progressed:
                continue
            if doorbell.triggered:
                # Kicked mid-scan: rescan rather than sleeping past it.
                continue
            yield from self._idle_sleep(doorbell, stall)

    def _run_ready(self):
        """scan="ready": service only the dirty set of kicked devices.

        Bit-identity with the full scan rests on three invariants:

        * Idle devices cost the full scan zero *simulated* time (no
          yields), so skipping them changes wall-clock only.  Devices
          with work are visited in the same order — the heap priority is
          the full scan's (role, id) visiting order, and a device kicked
          at/behind the scan position waits for the next pass, exactly
          like a push landing behind the full scan's cursor.
        * A rate-stalled device is re-armed for the *next pass* rather
          than parked until its token deadline: the full scan re-runs
          its admission check every pass, and TokenBucket refills are
          float-path-dependent, so skipping rechecks would diverge in
          the last ulp.  The deadline ordering survives as the sleep
          timeout (min stall seen this pass), which is exactly the
          earliest stalled device's deadline.
        * The sleep itself (doorbell capture, any_of shape, stall
          counter) is shared with the full scan via _idle_sleep, so the
          event-heap contents — and therefore tie-breaking among
          same-timestamp events — are identical.
        """
        while self._running:
            doorbell = self._doorbell
            self._pass_counter += 1
            self._in_pass = True
            progressed = False
            stall: Optional[float] = None
            current = self._current_pass
            while current:
                _key, reg = heapq.heappop(current)
                if reg.state != _READY or not reg.active:
                    continue
                self._pass_pos = reg.key
                reg.state = _IDLE
                result = yield from self._service_device(reg)
                if result is True:
                    progressed = True
                    if reg.state == _IDLE and reg.device.produce_pending():
                        # Leftovers past the batch cap (or pushed while
                        # routing): revisit next pass, as the full scan's
                        # rescan-on-progress would.
                        self._mark_ready(reg)
                elif isinstance(result, float):
                    stall = result if stall is None else min(stall, result)
                    # Re-arm for the next pass's admission recheck.
                    self._mark_ready(reg)
            self._in_pass = False
            self._pass_pos = None
            self._current_pass, self._next_pass = (self._next_pass,
                                                   self._current_pass)
            if progressed:
                continue
            if doorbell.triggered:
                continue
            yield from self._idle_sleep(doorbell, stall)

    def _idle_sleep(self, doorbell, stall: Optional[float]):
        """Sleep until a doorbell or (when rate-stalled) token refill."""
        waits = [doorbell]
        timeout = None
        if stall is not None:
            self.rate_limited_stalls += 1
            timeout = self.sim.timeout(max(stall, 1e-6))
            waits.append(timeout)
        yield self.sim.any_of(waits)
        if timeout is not None and not timeout.processed:
            # The doorbell won the race: disarm the stall timeout so it
            # does not linger in the event heap and fire as a no-op.
            timeout.cancel()
            self.stale_wakeups += 1

    def _service_device(self, reg: _Registration):
        """Drain one device's produced rings; returns True, None, or a
        float (seconds until rate-limit tokens allow progress)."""
        device = reg.device
        progressed = False
        stall: Optional[float] = None
        if device.role == ROLE_VM:
            bw = self._bw_limits.get(reg.numeric_id)
            ops = self._op_limits.get(reg.numeric_id)
        else:
            bw = ops = None
        batch_size = self.batch_size
        for qs in device.queue_sets:
            batch: List[Nqe] = []
            # Every VM-egress NQE — job-queue ops included — must pass the
            # §4.4 admission check; popping the control ring unchecked
            # would let a rate-capped VM blast unlimited control ops.
            for ring in device.produce_rings(qs):
                room = batch_size - len(batch)
                if room == 0:
                    break
                if ring.empty:
                    continue
                # One ownership check per drain; the per-item operations
                # below run unchecked (owner=None is a no-op check).
                ring.claim_consumer(self)
                if bw is None and ops is None:
                    batch.extend(ring.pop_batch(room))
                    continue
                while len(batch) < batch_size:
                    nqe: Optional[Nqe] = ring.peek()
                    if nqe is None:
                        break
                    wait = self._admission_delay(bw, ops, nqe)
                    if wait > 0:
                        stall = wait if stall is None else min(stall, wait)
                        break
                    ring.pop()
                    batch.append(nqe)
            if not batch:
                continue
            yield self.core.execute(self.cost.ce_batch_cycles(len(batch)),
                                    "ce.switch")
            self.batches += 1
            for nqe in batch:
                yield from self._route(reg, device, nqe)
            progressed = True
        if progressed:
            return True
        return stall

    @staticmethod
    def _admission_delay(bw: Optional[TokenBucket],
                         ops: Optional[TokenBucket], nqe: Nqe) -> float:
        """Seconds until this (VM-egress) NQE passes its token buckets."""
        delay = 0.0
        if bw is not None:
            bits = nqe.size * 8.0
            if not bw.try_consume(bits):
                return max(bw.time_until(bits), 1e-6)
        if ops is not None:
            if not ops.try_consume(1.0):
                delay = max(ops.time_until(1.0), 1e-6)
                if bw is not None:
                    bw.refund(nqe.size * 8.0)  # undo the bandwidth charge
        return delay

    # ---------------------------------------------------------------- routing --

    def _route(self, reg: _Registration, device: NKDevice, nqe: Nqe):
        if self.obs is not None:
            self.obs.on_ce_switch(nqe, device.role)
        if device.role == ROLE_VM:
            yield from self._route_vm_to_nsm(reg, nqe)
        else:
            yield from self._route_nsm_to_vm(reg, nqe)
        self.nqes_switched += 1

    def _route_vm_to_nsm(self, reg: _Registration, nqe: Nqe):
        vm_tuple = nqe.vm_tuple
        entry = self.table.lookup_vm(vm_tuple)
        if entry is None:
            nsm_id = self.vm_to_nsm.get(reg.numeric_id)
            if nsm_id is None:
                raise ConfigurationError(
                    f"VM {reg.numeric_id} has no NSM assigned")
            nsm_device = self._nsms[nsm_id].device
            qset = hash(vm_tuple) % len(nsm_device.queue_sets)
            entry = self.table.insert(vm_tuple, nsm_id, qset)
            if nqe.op == NqeOp.ACCEPT_ATTACH:
                # The NSM socket already exists; complete the entry now.
                self.table.complete(vm_tuple, nqe.op_data)
        nsm_device = self._nsms[entry.nsm_id].device
        qs = nsm_device.queue_sets[entry.nsm_queue_set]
        control_ring, data_ring = nsm_device.consume_rings(qs)
        ring = data_ring if nqe.op == NqeOp.SEND else control_ring
        yield from self._deliver(ring, nqe, nsm_device)

    def _route_nsm_to_vm(self, reg: _Registration, nqe: Nqe):
        vm_tuple = nqe.vm_tuple
        vm_reg = self._vms.get(nqe.vm_id)
        if vm_reg is None:
            self._drop_nqe(nqe)  # VM shut down
            return
        entry = self.table.lookup_vm(vm_tuple)
        if entry is not None and not entry.complete and nqe.op == NqeOp.OP_RESULT:
            if nqe.op_data >= 0:
                # Fig. 6 step (4): response carries the NSM socket id.
                self.table.complete(vm_tuple, nqe.op_data)
        if (nqe.op == NqeOp.OP_RESULT and isinstance(nqe.aux, dict)
                and nqe.aux.get("req_op") == NqeOp.CLOSE):
            self.table.remove_vm(vm_tuple)
        vm_device = vm_reg.device
        qs = vm_device.queue_sets[nqe.queue_set_id % len(vm_device.queue_sets)]
        control_ring, data_ring = vm_device.consume_rings(qs)
        is_event = nqe.op in (NqeOp.DATA_ARRIVED, NqeOp.ACCEPT_EVENT,
                              NqeOp.CONNECTED_EVENT, NqeOp.PEER_CLOSED,
                              NqeOp.ERROR_EVENT)
        ring = data_ring if is_event else control_ring
        yield from self._deliver(ring, nqe, vm_device)

    def _deliver(self, ring, nqe: Nqe, target_device: NKDevice):
        """Copy the NQE into the destination ring, stalling on backpressure."""
        while not ring.try_push(nqe, owner=self):
            yield self.sim.timeout(2e-6)
        target_device.wake()

    def _drop_nqe(self, nqe: Nqe) -> None:
        """Drop an NQE addressed to a vanished VM, freeing any hugepage
        payload it references so the shutdown path cannot leak buffers."""
        self.nqes_dropped += 1
        if nqe.data_ptr:
            region = self._vm_regions.get(nqe.vm_id)
            if region is not None:
                buffer = region.lookup(nqe.data_ptr)
                if buffer is not None and not buffer.freed:
                    buffer.free()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        """Lifetime switching counters (NQEs, batches, table size)."""
        return {
            "nqes_switched": self.nqes_switched,
            "batches": self.batches,
            "avg_batch": (self.nqes_switched / self.batches
                          if self.batches else 0.0),
            "connections": len(self.table),
            "rate_limited_stalls": self.rate_limited_stalls,
            "nqes_dropped": self.nqes_dropped,
            "sched.mode": self.scan,
            "sched.passes": self._pass_counter,
            "sched.stale_wakeups": self.stale_wakeups,
        }

    def isolation_state(self) -> dict:
        """Per-VM token-bucket fill levels (bw in bits, ops in NQEs)."""
        state: Dict[int, dict] = {}
        for kind, limits in (("bw", self._bw_limits),
                             ("ops", self._op_limits)):
            for vm_id, bucket in limits.items():
                bucket._refill()
                state.setdefault(vm_id, {})[kind] = {
                    "rate": bucket.rate,
                    "burst": bucket.burst,
                    "tokens": bucket.tokens,
                }
        return state
