"""CoreEngine: the software switch and control plane (§4.3, §4.4).

CoreEngine consumes produced NQEs in batches, charges the calibrated
switching cost to its dedicated core, and copies each NQE into the proper
ring of the destination device:

* VM → NSM: job-queue ops to the NSM's job ring, send ops to its send
  ring.  The connection table maps ⟨VM id, queue set, socket id⟩ to the
  serving NSM and (by hash) one of its queue sets.
* NSM → VM: results to the VM's completion ring, events to its receive
  ring, addressed by the VM tuple the NSM copied into the response.

Isolation (§4.4, Fig. 21): round-robin polling gives basic fairness;
per-VM token buckets rate-limit bandwidth (bytes through send NQEs)
and/or operations (NQEs per second).  Egress only, as in the paper.

Scheduling (§4.3's interrupt-driven polling, applied to the switch
itself): with ``scan="ready"`` (the default) doorbells carry the kicking
device and the switch services only a dirty set of ready devices, so one
wake-up costs O(ready devices), not O(registered devices).
``scan="full"`` preserves the rescan-everything loop; both modes produce
bit-identical simulated timelines (see _run_ready for the invariants),
the ready set only removes wall-clock work.

Failure handling (§8): an NSM is a new single point of failure, so the
switch doubles as the failure detector.  ``enable_health_monitor`` sends
HEARTBEAT NQEs through each NSM's job ring and expects HEARTBEAT_ACKs
back through the normal datapath — probing the exact path tenant NQEs
take, not a side channel.  An NSM silent past the detection timeout is
quarantined: its rings are reclaimed, in-flight NQEs fail fast as
ECONNRESET results/events toward their VMs, its connection-table entries
are removed, and affected VMs are rebound to the least-loaded standby
NSM (``failover_listeners`` lets the host re-attach hugepage regions).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.conn_table import ConnectionTable
from repro.core.nk_device import NKDevice, ROLE_NSM, ROLE_VM
from repro.core.nqe import NQE_POOL, Nqe, NqeOp, RESULT_ERRNO
from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import ConfigurationError
from repro.mem.hugepages import HugepageRegion
from repro.sim.event import Event


class TokenBucket:
    """Continuous-refill token bucket (tokens are bits or operations)."""

    def __init__(self, sim, rate_per_sec: float, burst: float):
        if rate_per_sec <= 0:
            raise ConfigurationError(f"rate must be positive: {rate_per_sec}")
        self.sim = sim
        self.rate = rate_per_sec
        self.burst = max(burst, rate_per_sec * 1e-3)
        self.tokens = self.burst
        self._last = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now

    def try_consume(self, amount: float) -> bool:
        self._refill()
        if amount > self.burst:
            # A single operation larger than the burst could never pass a
            # plain bucket.  Admit it once the bucket is full and run a
            # token deficit, so the average rate still holds — without
            # persisting a widened burst that would weaken the cap for
            # every later operation.
            if self.tokens >= self.burst:
                self.tokens -= amount
                return True
            return False
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def time_until(self, amount: float) -> float:
        """Seconds until ``amount`` tokens will be available."""
        self._refill()
        # Oversized requests are admitted at a full bucket (see
        # try_consume), so they wait for ``burst`` tokens, not ``amount``.
        deficit = min(amount, self.burst) - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    def refund(self, amount: float) -> None:
        """Return tokens for an operation that was not admitted after all,
        never pushing the level above the configured burst."""
        self.tokens = min(self.burst, self.tokens + amount)


#: Scan-loop flavours: "ready" services only doorbelled devices; "full"
#: rescans every registered device on every pass (the seed behaviour,
#: kept for determinism comparisons).
SCAN_MODES = ("ready", "full")

#: Default used by CoreEngine(scan=None); the determinism suite and the
#: perf harness flip this to run unchanged experiments under both modes.
DEFAULT_SCAN_MODE = "ready"

#: Default for CoreEngine(vectorized=None): the slab/scratch datapath.
#: ``vectorized=False`` keeps the scalar pop-and-route loop for A/B
#: benching; both produce bit-identical simulated timelines (the
#: vectorized path only removes Python-level allocations and generator
#: frames, never a yield the scalar path would have made).
DEFAULT_VECTORIZED = True

#: _Registration.state values.
_IDLE, _READY = 0, 1

#: NSM-egress ops that land on the VM's *receive* (event) ring; every
#: other NSM-egress op is a result on the completion ring.  A frozenset
#: membership test beats a tuple scan at per-NQE rates.
_EVENT_OPS = frozenset((NqeOp.DATA_ARRIVED, NqeOp.ACCEPT_EVENT,
                        NqeOp.CONNECTED_EVENT, NqeOp.PEER_CLOSED,
                        NqeOp.ERROR_EVENT))

#: VM→NSM control requests that carry a waiter token; failing one fast
#: synthesizes an OP_RESULT(ECONNRESET) so the blocked caller unblocks.
_TOKENED_REQUESTS = frozenset((
    NqeOp.SOCKET, NqeOp.BIND, NqeOp.LISTEN, NqeOp.CONNECT,
    NqeOp.SETSOCKOPT, NqeOp.GETSOCKOPT, NqeOp.SHUTDOWN, NqeOp.CLOSE,
))


class _Registration:
    __slots__ = ("numeric_id", "device", "key", "state", "birth_pass",
                 "active", "parked", "engine")

    def __init__(self, numeric_id: int, device: NKDevice,
                 key: Tuple[int, int], birth_pass: int, engine=None):
        self.numeric_id = numeric_id
        self.device = device
        #: (role rank, numeric id): the full scan's visiting order, used
        #: as the ready-heap priority so both modes service identically.
        self.key = key
        self.state = _IDLE
        #: Pass number at registration: a device registered mid-pass is
        #: deferred to the next pass, like the full scan's snapshot.
        self.birth_pass = birth_pass
        self.active = True
        #: Live migration: a parked device's produced NQEs wait in its
        #: rings (ops park, they do not fail) until the move completes.
        self.parked = False
        #: The switch servicing this device — its home shard when the
        #: switch is sharded (repro.core.sharding), else the sole engine.
        self.engine = engine


class CoreEngine:
    """The NQE switch; runs as a simulation process on a dedicated core."""

    def __init__(self, sim, core: Core,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 batch_size: int = 4, ring_slots: int = 4096,
                 scan: Optional[str] = None,
                 vectorized: Optional[bool] = None):
        if batch_size < 1:
            raise ConfigurationError(f"batch size must be >=1: {batch_size}")
        scan = DEFAULT_SCAN_MODE if scan is None else scan
        if scan not in SCAN_MODES:
            raise ConfigurationError(
                f"unknown scan mode {scan!r}; choose from {SCAN_MODES}")
        self.sim = sim
        self.core = core
        self.cost = cost_model
        self.batch_size = batch_size
        self.ring_slots = ring_slots
        self.scan = scan
        self.vectorized = (DEFAULT_VECTORIZED if vectorized is None
                           else vectorized)
        #: Reusable drain scratch (vectorized path): grown once to
        #: batch_size, reread every pass, never reallocated.
        self._scratch: List[Nqe] = []

        self.table = ConnectionTable()
        self._vms: Dict[int, _Registration] = {}
        self._nsms: Dict[int, _Registration] = {}
        self._ids = itertools.count(1)
        self.vm_to_nsm: Dict[int, int] = {}
        # VMs whose serving NSM was deregistered with no standby to take
        # over: their ops fail fast instead of raising (a VM that never
        # had an assignment is a configuration error; this is not).
        self._orphaned_vms: set = set()

        # Isolation state.
        self._bw_limits: Dict[int, TokenBucket] = {}
        self._op_limits: Dict[int, TokenBucket] = {}

        # Hugepage regions by VM id, retained after deregistration so
        # in-flight NQEs for a vanished VM can still free their payloads.
        self._vm_regions: Dict[int, HugepageRegion] = {}

        # Ready-set scheduler state (scan="ready").  Two heaps replicate
        # the full scan's pass structure: _current_pass holds devices to
        # service this pass in key order, _next_pass collects devices
        # that became ready at or behind the scan position.
        self._current_pass: List[Tuple[Tuple[int, int], _Registration]] = []
        self._next_pass: List[Tuple[Tuple[int, int], _Registration]] = []
        self._pass_pos: Optional[Tuple[int, int]] = None
        self._pass_counter = 0
        self._in_pass = False

        # Delivery backpressure: how long _deliver may stall on a full
        # destination ring before dropping the NQE.  Generous by default
        # (live consumers drain rings in microseconds); a budget-length
        # stall means the consumer is gone or wedged.
        self.deliver_stall_budget = 10e-3

        # NSM health monitoring / failover state (off until
        # enable_health_monitor()).
        self.heartbeat_interval = 1e-3
        self.detection_timeout = 5e-3
        self._health_process = None
        self._health_enabled = False
        #: nsm_id -> sim time of the last HEARTBEAT_ACK (or of first probe).
        self._last_ack: Dict[int, float] = {}
        #: reason strings by quarantined NSM id.
        self.quarantined: Dict[int, str] = {}
        #: Called as fn(vm_id, dead_nsm_id, standby_nsm_id) after a VM is
        #: rebound, so the host can attach hugepage regions to the standby.
        self.failover_listeners: List[Callable[[int, int, int], None]] = []

        # Fault injection (repro.faults); None means no faults and the
        # hot path pays only the attribute check.
        self.faults = None

        # Overload control (repro.core.overload); None means overload
        # control is disabled and the datapath pays only the attribute
        # check.  Enabled via enable_overload_control().
        self.overload = None

        # Live-migration state (§8's transparent-upgrade counterpart):
        # completed migration records, in order.
        self.migrations: List[dict] = []

        # Statistics.
        self.nqes_switched = 0
        self.batches = 0
        self.vms_migrated = 0
        self.conns_migrated = 0
        self.migration_parked_ops = 0
        self.rate_limited_stalls = 0
        self.nqes_dropped = 0
        self.nqes_dropped_backpressure = 0
        self.nqes_failed_fast = 0
        #: NQEs failed fast with -EAGAIN by the overload shed backstop.
        self.nqes_shed = 0
        # Per-VM drop attribution (ISSUE 9): the host-global counters
        # above answer "how much was lost", these answer "whose".  Keyed
        # by the NQE's vm_id in either direction, so a tenant's losses
        # are attributable through obs and GET /fleet.
        self.vm_dropped: Dict[int, int] = {}
        self.vm_dropped_backpressure: Dict[int, int] = {}
        self.vm_shed: Dict[int, int] = {}
        self.heartbeats_sent = 0
        self.heartbeat_acks = 0
        self.nsms_quarantined = 0
        self.vms_failed_over = 0
        self.conns_reset_on_failover = 0
        #: Stall timeouts disarmed because the doorbell won the any_of
        #: race (each one used to linger in the event heap as a no-op).
        self.stale_wakeups = 0

        # Observability (repro.obs); None means tracing is disabled and
        # the hot path pays nothing beyond the attribute check.
        self.obs = None

        #: Doorbell state.  ``_kicked`` is the lost-doorbell guard: set by
        #: every kick, cleared at the top of each pass, checked before
        #: sleeping.  ``_doorbell_waiter`` exists only while the loop is
        #: asleep; a kick landing while the switch is awake just sets the
        #: flag and queues *no* event (the old always-an-Event doorbell
        #: processed one ghost event per mid-pass kick).
        self._kicked = False
        self._doorbell_waiter: Optional[object] = None
        self._running = True
        run = self._run_ready if scan == "ready" else self._run_full
        self._process = sim.process(run())

    # ------------------------------------------------------------- control --

    def register_vm(self, owner_id: str, queue_sets: int,
                    hugepages: Optional[HugepageRegion] = None,
                    poll_window_sec: Optional[float] = None) -> Tuple[int, NKDevice]:
        """Allocate an NK device for a starting VM (§4.4)."""
        return self._register(owner_id, ROLE_VM, queue_sets, hugepages,
                              poll_window_sec)

    def register_nsm(self, owner_id: str, queue_sets: int,
                     hugepages: Optional[HugepageRegion] = None,
                     poll_window_sec: Optional[float] = None) -> Tuple[int, NKDevice]:
        """Allocate an NK device for a starting NSM (§4.4)."""
        return self._register(owner_id, ROLE_NSM, queue_sets, hugepages,
                              poll_window_sec)

    def _register(self, owner_id: str, role: str, queue_sets: int,
                  hugepages: Optional[HugepageRegion],
                  poll_window_sec: Optional[float]) -> Tuple[int, NKDevice]:
        numeric_id = next(self._ids)
        # A recycled numeric id must not inherit the previous owner's
        # health verdict: a stale _last_ack would let the monitor
        # insta-quarantine a fresh NSM, and a stale quarantined entry
        # would misreport it as dead.
        self._last_ack.pop(numeric_id, None)
        self.quarantined.pop(numeric_id, None)
        hugepages = hugepages or HugepageRegion(name=f"{owner_id}.hp")
        kwargs = {}
        if poll_window_sec is not None:
            kwargs["poll_window_sec"] = poll_window_sec
        device = NKDevice(self.sim, owner_id, role, queue_sets, hugepages,
                          ring_slots=self.ring_slots, **kwargs)
        device.doorbell = self.kick
        self.core.charge(self.cost.ce_device_setup, "ce.device_setup")
        registry = self._vms if role == ROLE_VM else self._nsms
        key = (0 if role == ROLE_VM else 1, numeric_id)
        reg = _Registration(numeric_id, device, key, self._pass_counter,
                            engine=self)
        registry[numeric_id] = reg
        device.ce_registration = reg
        if role == ROLE_VM:
            self._vm_regions[numeric_id] = hugepages
        return numeric_id, device

    def deregister(self, numeric_id: int) -> None:
        """Release a VM's or NSM's NK device (shutdown path).

        In-flight NQEs still sitting in the departing device's rings are
        reclaimed here: payloads freed, elements returned to the pool.
        For an NSM they fail fast toward the VMs they belong to (the VMs
        outlive the NSM and must learn their connections died); for a VM
        they are silently dropped (nobody is left to notify).
        """
        self.core.charge(self.cost.ce_device_setup, "ce.device_teardown")
        if numeric_id in self._vms:
            reg = self._vms.pop(numeric_id)
            # Ready-heap entries for this device are skipped lazily.
            reg.active = False
            for entry in self.table.entries_for_vm(numeric_id):
                self.table.remove_vm(entry.vm_tuple)
            self.vm_to_nsm.pop(numeric_id, None)
            self._orphaned_vms.discard(numeric_id)
            self._reclaim_device(reg, fail_fast=False)
            return
        reg = self._nsms.pop(numeric_id, None)
        if reg is None:
            return
        reg.active = False
        # Per-NSM health state dies with the registration; leaving it
        # would poison a later registration that recycles this id.
        self._last_ack.pop(numeric_id, None)
        self.quarantined.pop(numeric_id, None)
        self._reclaim_device(reg, fail_fast=True)
        for entry in self.table.entries_for_nsm(numeric_id):
            vm_id, vm_qset, vm_sock = entry.vm_tuple
            self.table.remove_vm(entry.vm_tuple)
            error = NQE_POOL.acquire(
                NqeOp.ERROR_EVENT, vm_id, vm_qset, vm_sock,
                op_data=-RESULT_ERRNO["ECONNRESET"],
                aux={"reason": "nsm-deregistered"}, created_at=self.sim.now)
            self._push_to_vm(error, event=True)
        for vm_id, assigned in list(self.vm_to_nsm.items()):
            if assigned == numeric_id:
                del self.vm_to_nsm[vm_id]
                self._orphaned_vms.add(vm_id)

    def assign_vm(self, vm_id: int, nsm_id: int) -> None:
        """Bind a VM to the NSM that will serve it (user choice or LB)."""
        if self._vm_registration(vm_id) is None:
            raise ConfigurationError(f"unknown VM id {vm_id}")
        if self._nsm_registration(nsm_id) is None:
            raise ConfigurationError(f"unknown NSM id {nsm_id}")
        self.vm_to_nsm[vm_id] = nsm_id
        self._orphaned_vms.discard(vm_id)

    def assign_vm_auto(self, vm_id: int) -> int:
        """Assign a VM to the least-loaded *active* NSM and return its id.

        The paper leaves the VM→NSM mapping to "the users offline or some
        load balancing scheme dynamically by CoreEngine" (§4.3 fn. 1);
        this is the dynamic option, balancing by live connection count.
        Quarantined and deregistered NSMs are never candidates — a
        just-quarantined NSM has zero table entries and would otherwise
        always look least-loaded.
        """
        if self._vm_registration(vm_id) is None:
            raise ConfigurationError(f"unknown VM id {vm_id}")
        nsm_id = self._least_loaded_nsm()
        if nsm_id is None:
            raise ConfigurationError("no active NSM registered")
        self.vm_to_nsm[vm_id] = nsm_id
        self._orphaned_vms.discard(vm_id)
        return nsm_id

    def _active_nsm_ids(self, exclude: Optional[int] = None) -> List[int]:
        """Ids of in-service NSMs (cluster-wide when sharded) — the one
        candidate list both assign_vm_auto and _pick_standby draw from."""
        return [nid for nid, reg in self._nsms.items()
                if reg.active and nid != exclude]

    def _least_loaded_nsm(self, exclude: Optional[int] = None,
                          among: Optional[List[int]] = None) -> Optional[int]:
        """The active NSM with the fewest live connections, or None.
        ``among`` restricts the candidate pool (the sharded facade uses
        it for same-shard placement preference).  O(active NSMs): the
        table keeps per-NSM counts incrementally, so this never walks
        the connection population."""
        candidates = among if among is not None \
            else self._active_nsm_ids(exclude)
        if not candidates:
            return None
        loads = self.table.nsm_loads()
        return min(sorted(candidates), key=lambda nid: loads.get(nid, 0))

    # -- NSM health & failover (§8) ------------------------------------------

    def enable_health_monitor(self, heartbeat_interval: float = 1e-3,
                              detection_timeout: float = 5e-3) -> None:
        """Start probing NSM liveness with heartbeat NQEs.

        Every ``heartbeat_interval`` the monitor pushes a HEARTBEAT into
        each active NSM's job ring; ServiceLib answers through its
        completion ring.  An NSM whose last ack is older than
        ``detection_timeout`` is quarantined (see quarantine_nsm).  Off
        by default so un-monitored timelines are byte-identical to
        earlier builds.
        """
        if detection_timeout <= heartbeat_interval:
            raise ConfigurationError(
                f"detection timeout ({detection_timeout}) must exceed the "
                f"heartbeat interval ({heartbeat_interval})")
        self.heartbeat_interval = heartbeat_interval
        self.detection_timeout = detection_timeout
        self._health_enabled = True
        if self._health_process is None:
            self._health_process = self.sim.process(self._health_loop())

    def disable_health_monitor(self) -> None:
        """Stop probing (the loop exits at its next tick)."""
        self._health_enabled = False

    def _health_loop(self):
        while self._running and self._health_enabled:
            now = self.sim.now
            for nsm_id in sorted(self._nsms):
                reg = self._nsms[nsm_id]
                if not reg.active:
                    continue
                last = self._last_ack.setdefault(nsm_id, now)
                if now - last >= self.detection_timeout:
                    self.quarantine_nsm(nsm_id, reason="heartbeat-timeout")
                    continue
                probe = NQE_POOL.acquire(NqeOp.HEARTBEAT, 0, 0, 0,
                                         created_at=now)
                control_ring, _ = reg.device.consume_rings(
                    reg.device.queue_sets[0])
                if control_ring.try_push(probe, owner=self):
                    self.heartbeats_sent += 1
                    reg.device.wake()
                else:
                    # Job ring jammed: the silence itself will trip the
                    # detection timeout; don't leak the probe.
                    NQE_POOL.release(probe)
            yield self.sim.timeout(self.heartbeat_interval)
        self._health_process = None

    def quarantine_nsm(self, nsm_id: int,
                       reason: str = "failure-detected") -> List[int]:
        """Take a dead NSM out of service and fail its work fast (§8).

        Reclaims every NQE in the dead NSM's rings (requests fail fast as
        ECONNRESET results toward their VMs, stale events are dropped
        with payloads freed), resets each of its connection-table entries
        with an ERROR_EVENT(ECONNRESET) to the owning socket, and rebinds
        affected VMs to the least-loaded active standby NSM.  Returns the
        rebound VM ids (empty when no standby exists — the VMs keep their
        dead assignment and subsequent ops fail fast).
        """
        reg = self._nsms.get(nsm_id)
        if reg is None or not reg.active:
            return []
        reg.active = False
        self.quarantined[nsm_id] = reason
        self._last_ack.pop(nsm_id, None)
        self.nsms_quarantined += 1
        self.core.charge(self.cost.ce_device_setup, "ce.quarantine")
        self._reclaim_device(reg, fail_fast=True)
        now = self.sim.now
        for entry in self.table.entries_for_nsm(nsm_id):
            vm_id, vm_qset, vm_sock = entry.vm_tuple
            self.table.remove_vm(entry.vm_tuple)
            self.conns_reset_on_failover += 1
            error = NQE_POOL.acquire(
                NqeOp.ERROR_EVENT, vm_id, vm_qset, vm_sock,
                op_data=-RESULT_ERRNO["ECONNRESET"],
                aux={"reason": reason}, created_at=now)
            self._push_to_vm(error, event=True)
        standby = self._pick_standby(exclude=nsm_id)
        moved: List[int] = []
        if standby is not None:
            for vm_id, assigned in sorted(self.vm_to_nsm.items()):
                if assigned == nsm_id:
                    self.vm_to_nsm[vm_id] = standby
                    moved.append(vm_id)
            self.vms_failed_over += len(moved)
        if self.obs is not None:
            self.obs.on_nsm_quarantined(nsm_id, reason, len(moved))
        for vm_id in moved:
            for listener in self.failover_listeners:
                listener(vm_id, nsm_id, standby)
        return moved

    # -- live migration (zero-reset stack upgrade) ----------------------------

    def migrate_vm(self, vm_id: int, target_nsm_id: int, source_lib,
                   target_lib, blackout_base_sec: float = 50e-6,
                   blackout_per_conn_sec: float = 1e-6):
        """Move a VM's connections to another NSM without resetting them.

        A generator: run it as a sim process (or ``yield from`` it).  The
        protocol, in switch order:

        1. *Quiesce*: park the VM's device — its GuestLib keeps producing
           and blocking normally, but the switch stops consuming, so ops
           issued during the move simply wait.
        2. *Drain*: sweep the NQEs already produced (they route to the
           source NSM), then poll until the source NSM has consumed and
           finished every job/send NQE of this VM.
        3. *Export/import*: the source ServiceLib exports every socket
           context (TCBs, buffers, listen state, accept backlog travel
           live); after the modeled blackout the hugepage region is
           attached to the target and the contexts are imported there.
        4. *Rebind*: the connection table points the VM's entries at the
           target NSM; the VM→NSM assignment follows; the source unmaps
           the region.
        5. *Resume*: unpark, doorbell the switch (bypassing fault
           injection — resume is an operator action, not a guest MMIO
           write), and the parked ops flow to the target.

        On any failure the VM is unparked and resumed before the error
        propagates, so a botched migration degrades to PR 3's failover
        path instead of wedging the guest.
        """
        vm_reg = self._vm_registration(vm_id)
        if vm_reg is None or not vm_reg.active:
            raise ConfigurationError(f"unknown or inactive VM id {vm_id}")
        if vm_reg.parked:
            raise ConfigurationError(f"VM {vm_id} is already migrating")
        source_nsm_id = self.vm_to_nsm.get(vm_id)
        if source_nsm_id is None:
            raise ConfigurationError(f"VM {vm_id} has no NSM assigned")
        if source_nsm_id == target_nsm_id:
            raise ConfigurationError(
                f"VM {vm_id} is already served by NSM {target_nsm_id}")
        target_reg = self._nsm_registration(target_nsm_id)
        if target_reg is None or not target_reg.active:
            raise ConfigurationError(
                f"target NSM {target_nsm_id} is not active")
        source_reg = self._nsm_registration(source_nsm_id)
        if source_reg is None or not source_reg.active:
            raise ConfigurationError(
                f"source NSM {source_nsm_id} is not active")

        started = self.sim.now
        vm_reg.parked = True
        try:
            yield from self._drain_vm_rings(vm_reg)
            yield from self._await_nsm_quiescent(source_reg, source_lib,
                                                 vm_id)
            blackout_started = self.sim.now
            exports = source_lib.export_vm_sockets(vm_id)
            blackout = (blackout_base_sec
                        + blackout_per_conn_sec * len(exports))
            yield self.sim.timeout(blackout)
            region = self._vm_regions.get(vm_id)
            if region is not None:
                target_lib.attach_vm_region(vm_id, region)
            target_lib.import_vm_sockets(vm_id, exports, source_lib.stack)
            n_qsets = len(target_reg.device.queue_sets)
            rebound = self.table.rebind_vm(
                vm_id, target_nsm_id,
                queue_set_for=lambda vt: hash(vt) % n_qsets)
            self.vm_to_nsm[vm_id] = target_nsm_id
            source_lib.detach_vm_region(vm_id)
        except BaseException:
            vm_reg.parked = False
            self._resume_device(vm_reg)
            raise
        device = vm_reg.device
        parked_ops = sum(len(ring) for qs in device.queue_sets
                         for ring in device.produce_rings(qs))
        vm_reg.parked = False
        self._resume_device(vm_reg)
        resumed = self.sim.now
        record = {
            "vm_id": vm_id,
            "source_nsm": source_nsm_id,
            "target_nsm": target_nsm_id,
            "sockets_moved": len(exports),
            "entries_rebound": rebound,
            "parked_ops": parked_ops,
            "started": round(started, 9),
            "blackout_started": round(blackout_started, 9),
            "resumed": round(resumed, 9),
            "blackout_sec": round(resumed - blackout_started, 9),
            "total_sec": round(resumed - started, 9),
            "tcbs": [record["tcb"] for record in exports],
        }
        self.vms_migrated += 1
        self.conns_migrated += len(exports)
        self.migration_parked_ops += parked_ops
        self.migrations.append(record)
        if self.obs is not None:
            self.obs.on_migration(vm_id, source_nsm_id, target_nsm_id,
                                  record["blackout_sec"], len(exports),
                                  parked_ops)
        return record

    def _drain_vm_rings(self, reg: _Registration):
        """One bounded sweep over a parked VM's produce rings: everything
        already produced is switched (toward the still-bound source NSM).
        NQEs produced after the sweep wait parked and route to the target
        after the rebind — which is where their contexts will live."""
        device = reg.device
        for qs in device.queue_sets:
            for ring in device.produce_rings(qs):
                pending = len(ring)
                if not pending:
                    continue
                ring.claim_consumer(self)
                while pending > 0:
                    batch = ring.pop_batch(min(64, pending))
                    if not batch:
                        break
                    pending -= len(batch)
                    yield self.core.execute(
                        self.cost.ce_batch_cycles(len(batch)), "ce.switch")
                    self.batches += 1
                    for nqe in batch:
                        yield from self._route(reg, device, nqe)

    def _await_nsm_quiescent(self, source_reg: _Registration, source_lib,
                             vm_id: int):
        """Poll until the source NSM holds no unconsumed job/send NQE of
        the migrating VM and no handler is mid-flight.  Only the consume
        side matters: completion/receive rings oscillate under live
        inbound traffic, and export quiesces the callbacks that feed
        them."""
        device = source_reg.device
        while True:
            if source_lib.busy_handlers == 0:
                pending = any(
                    nqe is not None and nqe.vm_id == vm_id
                    for qs in device.queue_sets
                    for ring in device.consume_rings(qs)
                    for nqe in ring.snapshot())
                if not pending:
                    return
            yield self.sim.timeout(5e-6)

    def _resume_device(self, reg: _Registration) -> None:
        """Doorbell a freshly unparked device.  Unlike kick(), never
        subject to injected doorbell loss: resume is an operator-plane
        action, not a guest MMIO write."""
        if self.scan == "ready":
            self._mark_ready(reg)
        self._wake_switch()

    def _pick_standby(self, exclude: int) -> Optional[int]:
        """The least-loaded active NSM other than ``exclude`` (the same
        live-connection-count signal assign_vm_auto balances on)."""
        return self._least_loaded_nsm(exclude=exclude)

    def _reclaim_device(self, reg: _Registration, fail_fast: bool) -> None:
        """Drain every ring of a departed device.  SPSC claims are
        bypassed (owner=None): the owner is gone, CoreEngine is the only
        party left standing."""
        for qs in reg.device.queue_sets:
            for ring_name in ("job", "send", "completion", "receive"):
                ring = getattr(qs, ring_name)
                while True:
                    batch = ring.pop_batch(64, owner=None)
                    if not batch:
                        break
                    for nqe in batch:
                        if fail_fast:
                            self._fail_fast_nqe(nqe)
                        else:
                            self._drop_nqe(nqe)

    def _fail_fast_nqe(self, nqe: Nqe) -> None:
        """Resolve an in-flight NQE whose NSM died as ECONNRESET.

        Tokened requests become OP_RESULT(-ECONNRESET) so blocked callers
        unblock; SEND/SENDTO free their payload and become
        SEND_RESULT(-ECONNRESET) carrying the original size so GuestLib's
        send-buffer accounting drains; results produced before the crash
        are rewritten to -ECONNRESET (their success is unobservable now);
        everything else is dropped with payloads freed.
        """
        reset = -RESULT_ERRNO["ECONNRESET"]
        op = nqe.op
        if op in (NqeOp.SEND, NqeOp.SENDTO):
            self._free_payload(nqe)
            result = NQE_POOL.acquire(
                NqeOp.SEND_RESULT, nqe.vm_id, nqe.queue_set_id,
                nqe.socket_id, op_data=reset, size=nqe.size,
                created_at=self.sim.now)
            NQE_POOL.release(nqe)
            self.nqes_failed_fast += 1
            self._push_to_vm(result, event=False)
        elif op in _TOKENED_REQUESTS:
            result = NQE_POOL.acquire(
                NqeOp.OP_RESULT, nqe.vm_id, nqe.queue_set_id,
                nqe.socket_id, op_data=reset, token=nqe.token,
                aux={"req_op": op}, created_at=self.sim.now)
            NQE_POOL.release(nqe)
            self.nqes_failed_fast += 1
            self._push_to_vm(result, event=False)
        elif op in (NqeOp.OP_RESULT, NqeOp.SEND_RESULT):
            if (op is NqeOp.OP_RESULT and isinstance(nqe.aux, dict)
                    and nqe.aux.get("req_op") in (NqeOp.CLOSE,
                                                  NqeOp.SHUTDOWN)):
                # A CLOSE/SHUTDOWN that already completed is terminal for
                # the socket either way; rewriting its result would show
                # the guest a spurious ECONNRESET on an op that succeeded.
                self._push_to_vm(nqe, event=False)
                return
            nqe.op_data = reset
            self.nqes_failed_fast += 1
            self._push_to_vm(nqe, event=False)
        else:
            # Stale events / credits / heartbeats: nothing to resolve.
            self._drop_nqe(nqe)

    def _shed_nqe(self, nqe: Nqe) -> bool:
        """Fail a VM-egress NQE fast with -EAGAIN (overload shed).

        The switch-side backstop of the overload governor: instead of
        letting an over-quota element queue toward a saturated NSM (or
        vanish in a backpressure drop downstream), resolve it *now* so
        the blocked guest caller unblocks with a retriable errno.
        Returns False for ops that cannot carry an errno to a waiter
        (events, credits) — those fall through to normal routing.
        """
        again = -RESULT_ERRNO["EAGAIN"]
        op = nqe.op
        vm_id = nqe.vm_id
        if op in (NqeOp.SEND, NqeOp.SENDTO):
            self._free_payload(nqe)
            result = NQE_POOL.acquire(
                NqeOp.SEND_RESULT, nqe.vm_id, nqe.queue_set_id,
                nqe.socket_id, op_data=again, size=nqe.size,
                created_at=self.sim.now)
        elif op in _TOKENED_REQUESTS:
            result = NQE_POOL.acquire(
                NqeOp.OP_RESULT, nqe.vm_id, nqe.queue_set_id,
                nqe.socket_id, op_data=again, token=nqe.token,
                aux={"req_op": op}, created_at=self.sim.now)
        else:
            return False
        NQE_POOL.release(nqe)
        self.nqes_shed += 1
        shed = self.vm_shed
        shed[vm_id] = shed.get(vm_id, 0) + 1
        self._push_to_vm(result, event=False)
        return True

    def _push_to_vm(self, nqe: Nqe, event: bool) -> None:
        """Best-effort synchronous delivery into a VM's consume rings
        (failover paths only — the normal datapath goes through _deliver).
        A full ring here drops the element rather than blocking the
        caller; the VM's pollers are live, so this is a last resort."""
        vm_reg = self._vm_registration(nqe.vm_id)
        if vm_reg is None or not vm_reg.active:
            self._drop_nqe(nqe)
            return
        device = vm_reg.device
        qs = device.queue_sets[nqe.queue_set_id % len(device.queue_sets)]
        control_ring, data_ring = device.consume_rings(qs)
        ring = data_ring if event else control_ring
        if ring.try_push(nqe, owner=self):
            device.wake()
        else:
            self._count_backpressure_drop(nqe.vm_id)
            self._drop_nqe(nqe)

    def _free_payload(self, nqe: Nqe) -> None:
        """Free the hugepage buffer an NQE references, if any."""
        if not nqe.data_ptr:
            return
        region = self._vm_regions.get(nqe.vm_id)
        if region is None:
            return
        buffer = region.lookup(nqe.data_ptr)
        if buffer is not None and not buffer.freed:
            buffer.free()

    def set_bandwidth_limit(self, vm_id: int, bits_per_sec: float,
                            burst_bits: Optional[float] = None) -> None:
        """Cap a VM's egress bandwidth through NetKernel (Fig. 21)."""
        self._bw_limits[vm_id] = TokenBucket(
            self.sim, bits_per_sec, burst_bits or bits_per_sec * 0.01)

    def clear_bandwidth_limit(self, vm_id: int) -> None:
        """Remove a VM's bandwidth cap (it becomes work-conserving)."""
        self._bw_limits.pop(vm_id, None)

    def set_ops_limit(self, vm_id: int, nqes_per_sec: float) -> None:
        """Cap a VM's NQE (operation) rate (§4.4)."""
        self._op_limits[vm_id] = TokenBucket(
            self.sim, nqes_per_sec, nqes_per_sec * 0.01)

    # -- overload control (repro.core.overload) --------------------------------

    def enable_overload_control(self, **params):
        """Arm the overload governor for this engine (idempotent).

        ``params`` are forwarded to :class:`OverloadGovernor`.  Off by
        default so un-governed timelines are byte-identical to earlier
        builds; with it on, GuestLibs gate op issue on ``admit()``,
        ServiceLibs clamp their receive windows, and the switch arms its
        weight-aware EAGAIN shed backstop.
        """
        if self.overload is not None:
            return self.overload
        from repro.core.overload import OverloadGovernor
        self.overload = OverloadGovernor(self.sim, self, **params)
        return self.overload

    def disable_overload_control(self) -> None:
        """Disarm the governor: its sampler exits at the next tick and
        its level pins to 0.  The governor object stays referenced so
        end-of-run introspection (stats, fingerprints) still sees its
        counters."""
        if self.overload is not None:
            self.overload.stop()

    def nsm_device(self, nsm_id: int) -> NKDevice:
        """The NK device registered for an NSM id."""
        return self._nsms[nsm_id].device

    def vm_device(self, vm_id: int) -> NKDevice:
        """The NK device registered for a VM id."""
        return self._vms[vm_id].device

    # -- registration lookup (sharding override points) ----------------------

    def _vm_registration(self, vm_id: int) -> Optional[_Registration]:
        """The registration for ``vm_id``, wherever it is homed.  A shard
        engine overrides this to consult the cluster directory."""
        return self._vms.get(vm_id)

    def _nsm_registration(self, nsm_id: int) -> Optional[_Registration]:
        """The registration for ``nsm_id``, wherever it is homed."""
        return self._nsms.get(nsm_id)

    #: True on engines whose _pre_pass does real work (the shard engine's
    #: handoff drain); the scan loops skip the generator round-trip
    #: entirely when False.  A class attribute so the skip costs one
    #: attribute load per pass.
    _HAS_PRE_PASS = False

    def _pre_pass(self):
        """Hook run at the top of every switching pass, identically in
        both scan modes (so scan-mode bit-identity is preserved).  The
        base switch has nothing to do; a shard engine drains its inbound
        cross-shard handoff queue here."""
        return
        yield  # pragma: no cover — makes this a generator

    # ----------------------------------------------------------------- loop --

    def kick(self, device: Optional[NKDevice] = None) -> None:
        """Doorbell: new NQEs were produced somewhere.

        ``device`` identifies the producer so the ready-set scheduler can
        mark exactly it dirty; ``None`` (manual kicks, ``stop()``)
        conservatively marks every registered device.
        """
        if (device is not None and self.faults is not None
                and self.faults.should_drop_doorbell(device)):
            return  # injected doorbell loss: the MMIO write vanished
        if self.scan == "ready":
            if device is not None:
                reg = device.ce_registration
                # _mark_ready's already-ready reject, inlined: bursts
                # usually kick a device that is still queued for service.
                if reg is not None and reg.active and reg.state != _READY:
                    self._mark_ready(reg)
            else:
                for registry in (self._vms, self._nsms):
                    for reg in registry.values():
                        self._mark_ready(reg)
        # _wake_switch() inlined (kick is the datapath's hottest notifier).
        self._kicked = True
        waiter = self._doorbell_waiter
        if waiter is not None:
            self._doorbell_waiter = None
            waiter.succeed()

    def _wake_switch(self) -> None:
        """Note a doorbell and wake the switching loop if it sleeps.

        The flag is the lost-doorbell guard (the loop rescans when it
        was set mid-pass); the waiter event exists only while the loop
        is asleep, so a doorbell landing while the switch is awake
        queues no event at all.
        """
        self._kicked = True
        waiter = self._doorbell_waiter
        if waiter is not None:
            self._doorbell_waiter = None
            waiter.succeed()

    def stop(self) -> None:
        """Shut the switching loop down (used by teardown tests)."""
        self._running = False
        self.kick()

    def _mark_ready(self, reg: _Registration) -> None:
        """Enqueue a device into the dirty set, placed where the full
        scan would next visit it: ahead of the scan position → later this
        pass; at/behind it (or registered mid-pass) → next pass."""
        if reg.state == _READY or not reg.active:
            return
        reg.state = _READY
        if self._in_pass and (reg.birth_pass == self._pass_counter
                              or (self._pass_pos is not None
                                  and reg.key <= self._pass_pos)):
            heapq.heappush(self._next_pass, (reg.key, reg))
        else:
            heapq.heappush(self._current_pass, (reg.key, reg))

    def _run_full(self):
        """scan="full": rescan every registered device on every pass."""
        while self._running:
            # Clear the kicked flag *before* scanning.  A kick landing
            # while the scan is suspended mid-pass sets it again, and the
            # post-pass check rescans instead of sleeping — otherwise a
            # push landing just after its rings were scanned would sleep
            # past its doorbell (lost-doorbell race).
            self._kicked = False
            self._pass_counter += 1
            if self._HAS_PRE_PASS:
                yield from self._pre_pass()
            progressed = False
            stall: Optional[float] = None
            for registry in (self._vms, self._nsms):
                for reg in list(registry.values()):
                    if not reg.parked and not reg.device.produce_pending():
                        # Nothing produced: _service_device would return
                        # None without yielding; skip the generator.
                        continue
                    result = yield from self._service_device(reg)
                    if result is True:
                        progressed = True
                    elif isinstance(result, float):
                        stall = result if stall is None else min(stall, result)
            if progressed:
                continue
            if self._kicked:
                # Kicked mid-scan: rescan rather than sleeping past it.
                continue
            yield from self._idle_sleep(stall)

    def _run_ready(self):
        """scan="ready": service only the dirty set of kicked devices.

        Bit-identity with the full scan rests on three invariants:

        * Idle devices cost the full scan zero *simulated* time (no
          yields), so skipping them changes wall-clock only.  Devices
          with work are visited in the same order — the heap priority is
          the full scan's (role, id) visiting order, and a device kicked
          at/behind the scan position waits for the next pass, exactly
          like a push landing behind the full scan's cursor.
        * A rate-stalled device is re-armed for the *next pass* rather
          than parked until its token deadline: the full scan re-runs
          its admission check every pass, and TokenBucket refills are
          float-path-dependent, so skipping rechecks would diverge in
          the last ulp.  The deadline ordering survives as the sleep
          timeout (min stall seen this pass), which is exactly the
          earliest stalled device's deadline.
        * The sleep itself (kicked-flag reset, waiter shape, stall
          counter) is shared with the full scan via _idle_sleep, so the
          event-heap contents — and therefore tie-breaking among
          same-timestamp events — are identical.
        """
        while self._running:
            self._kicked = False
            self._pass_counter += 1
            if self._HAS_PRE_PASS:
                yield from self._pre_pass()
            self._in_pass = True
            progressed = False
            stall: Optional[float] = None
            current = self._current_pass
            while current:
                _key, reg = heapq.heappop(current)
                if reg.state != _READY or not reg.active:
                    continue
                self._pass_pos = reg.key
                reg.state = _IDLE
                if not reg.parked and not reg.device.produce_pending():
                    # A doorbell can outlive its NQEs (drained by an
                    # earlier visit this pass): _service_device would
                    # return None without yielding; skip the generator.
                    continue
                result = yield from self._service_device(reg)
                if result is True:
                    progressed = True
                    if reg.state == _IDLE and reg.device.produce_pending():
                        # Leftovers past the batch cap (or pushed while
                        # routing): revisit next pass, as the full scan's
                        # rescan-on-progress would.
                        self._mark_ready(reg)
                elif isinstance(result, float):
                    stall = result if stall is None else min(stall, result)
                    # Re-arm for the next pass's admission recheck.
                    self._mark_ready(reg)
            self._in_pass = False
            self._pass_pos = None
            self._current_pass, self._next_pass = (self._next_pass,
                                                   self._current_pass)
            if progressed:
                continue
            if self._kicked:
                continue
            yield from self._idle_sleep(stall)

    def _idle_sleep(self, stall: Optional[float]):
        """Sleep until a doorbell or (when rate-stalled) token refill.

        The waiter event is armed here, only while the loop actually
        sleeps; kick() succeeds it.  A doorbell landing while the switch
        is awake therefore costs a flag store, not a queued event.
        """
        waiter = Event(self.sim)
        self._doorbell_waiter = waiter
        if stall is None:
            # No token-refill deadline to race: wait on the waiter
            # itself instead of wrapping it in an AnyOf, which would add
            # one same-timestamp event hop per idle period.  The switch
            # still wakes at the same simulated instant; only the
            # intra-instant event count shrinks (identically in every
            # scan/vectorized mode, so fingerprints still match).
            yield waiter
            return
        self.rate_limited_stalls += 1
        timeout = self.sim.timeout(max(stall, 1e-6))
        yield self.sim.any_of((waiter, timeout))
        if not timeout.processed:
            # The doorbell won the race: disarm the stall timeout so it
            # does not linger in the event heap and fire as a no-op.
            timeout.cancel()
            self.stale_wakeups += 1
        if self._doorbell_waiter is waiter:
            # The timeout won: disarm the waiter so a later kick does
            # not succeed an event nobody will ever sleep on again.
            self._doorbell_waiter = None

    def _service_device(self, reg: _Registration):
        """Drain one device's produced rings; returns True, None, or a
        float (seconds until rate-limit tokens allow progress)."""
        if reg.parked:
            # Mid-migration: leave produced NQEs in the rings.  They are
            # parked, not failed — the resume doorbell re-services them.
            return None
        device = reg.device
        progressed = False
        stall: Optional[float] = None
        if device.role == ROLE_VM:
            bw = self._bw_limits.get(reg.numeric_id)
            ops = self._op_limits.get(reg.numeric_id)
        else:
            bw = ops = None
        batch_size = self.batch_size
        if self.vectorized and bw is None and ops is None:
            # Vectorized fast path: drain into the engine-owned scratch
            # list (zero list allocations), resolve each NQE's target
            # synchronously, and fall back to the generator slow path
            # only when delivery must actually stall (full ring, faults).
            # Timeline-identical to the scalar loop below: the same
            # ce_batch_cycles execute per non-empty lane, the same
            # per-NQE routing decisions in the same order.
            scratch = self._scratch
            role = device.role
            is_vm = role == ROLE_VM
            obs = self.obs
            # Overload accounting applies to VM egress only; the shed
            # decision runs at the same per-NQE point as the scalar
            # _route below, so both datapaths decide identically.
            ov = self.overload if is_vm else None
            resolve = (self._resolve_vm_to_nsm if is_vm
                       else self._resolve_nsm_to_vm)
            deliver_fast = self._deliver_fast
            core_execute = self.core.execute
            ce_batch_cycles = self.cost.ce_batch_cycles
            for qs in device.queue_sets:
                filled = 0
                for ring in device.produce_rings(qs):
                    room = batch_size - filled
                    if room == 0:
                        break
                    count = ring._count
                    if count == 0:
                        continue
                    # One ownership check per drain; the per-item
                    # operations below run unchecked.
                    if ring._consumer is not self:
                        ring.claim_consumer(self)
                    if count == 1:
                        # Single-element drain (the common case under
                        # fine-grained doorbells), inlined from
                        # SpscRing.drain_into.
                        head = ring._head
                        slots = ring._slots
                        item = slots[head]
                        slots[head] = None
                        head += 1
                        ring._head = 0 if head == ring.capacity else head
                        ring._count = 0
                        ring.consumed += 1
                        if len(scratch) <= filled:
                            scratch.append(None)
                        scratch[filled] = item
                        filled += 1
                    else:
                        filled += ring.drain_into(scratch, room,
                                                  start=filled)
                if not filled:
                    continue
                yield core_execute(ce_batch_cycles(filled), "ce.switch")
                self.batches += 1
                for i in range(filled):
                    nqe = scratch[i]
                    scratch[i] = None
                    if obs is not None:
                        obs.on_ce_switch(nqe, role)
                    if (ov is not None and ov.ingest(nqe)
                            and self._shed_nqe(nqe)):
                        self.nqes_switched += 1
                        continue
                    dest = resolve(reg, nqe)
                    if dest is not None and not deliver_fast(
                            dest[0], nqe, dest[1]):
                        yield from self._deliver(dest[0], nqe, dest[1])
                    self.nqes_switched += 1
                progressed = True
            if progressed:
                return True
            return stall
        for qs in device.queue_sets:
            batch: List[Nqe] = []
            # Every VM-egress NQE — job-queue ops included — must pass the
            # §4.4 admission check; popping the control ring unchecked
            # would let a rate-capped VM blast unlimited control ops.
            for ring in device.produce_rings(qs):
                room = batch_size - len(batch)
                if room == 0:
                    break
                if ring.empty:
                    continue
                # One ownership check per drain; the per-item operations
                # below run unchecked (owner=None is a no-op check).
                ring.claim_consumer(self)
                if bw is None and ops is None:
                    batch.extend(ring.pop_batch(room))
                    continue
                while len(batch) < batch_size:
                    nqe: Optional[Nqe] = ring.peek()
                    if nqe is None:
                        break
                    wait = self._admission_delay(bw, ops, nqe)
                    if wait > 0:
                        stall = wait if stall is None else min(stall, wait)
                        break
                    ring.pop()
                    batch.append(nqe)
            if not batch:
                continue
            yield self.core.execute(self.cost.ce_batch_cycles(len(batch)),
                                    "ce.switch")
            self.batches += 1
            for nqe in batch:
                yield from self._route(reg, device, nqe)
            progressed = True
        if progressed:
            return True
        return stall

    @staticmethod
    def _admission_delay(bw: Optional[TokenBucket],
                         ops: Optional[TokenBucket], nqe: Nqe) -> float:
        """Seconds until this (VM-egress) NQE passes its token buckets."""
        delay = 0.0
        if bw is not None:
            bits = nqe.size * 8.0
            if not bw.try_consume(bits):
                return max(bw.time_until(bits), 1e-6)
        if ops is not None:
            if not ops.try_consume(1.0):
                delay = max(ops.time_until(1.0), 1e-6)
                if bw is not None:
                    bw.refund(nqe.size * 8.0)  # undo the bandwidth charge
        return delay

    # ---------------------------------------------------------------- routing --

    def _route(self, reg: _Registration, device: NKDevice, nqe: Nqe):
        """Scalar routing path (vectorized=False): one generator frame
        per NQE, delivery always through the generator slow path.  Shares
        the resolve logic with the vectorized loop, so both make the same
        decisions in the same order."""
        if self.obs is not None:
            self.obs.on_ce_switch(nqe, device.role)
        if device.role == ROLE_VM:
            ov = self.overload
            if ov is not None and ov.ingest(nqe) and self._shed_nqe(nqe):
                self.nqes_switched += 1
                return
            dest = self._resolve_vm_to_nsm(reg, nqe)
        else:
            dest = self._resolve_nsm_to_vm(reg, nqe)
        if dest is not None:
            yield from self._deliver(dest[0], nqe, dest[1])
        self.nqes_switched += 1

    def _resolve_vm_to_nsm(self, reg: _Registration, nqe: Nqe):
        """Pick the destination (ring, device) for a VM-egress NQE, or
        consume it (fail-fast/drop) and return None.  Never yields."""
        vm_tuple = (nqe.vm_id, nqe.queue_set_id, nqe.socket_id)
        entry = self.table.lookup_vm(vm_tuple)
        if entry is None:
            nsm_id = self.vm_to_nsm.get(reg.numeric_id)
            if nsm_id is None:
                if reg.numeric_id in self._orphaned_vms:
                    # The serving NSM was deregistered and no standby
                    # exists.  Raising here would kill the switch for
                    # every tenant; fail the op fast instead.
                    self._fail_fast_nqe(nqe)
                    return None
                raise ConfigurationError(
                    f"VM {reg.numeric_id} has no NSM assigned")
            nsm_reg = self._nsm_registration(nsm_id)
            if nsm_reg is None or not nsm_reg.active:
                # Assigned NSM is dead and no standby took over: fail
                # fast rather than queueing toward a corpse.
                self._fail_fast_nqe(nqe)
                return None
            nsm_device = nsm_reg.device
            qset = hash(vm_tuple) % len(nsm_device.queue_sets)
            entry = self.table.insert(vm_tuple, nsm_id, qset)
            if nqe.op == NqeOp.ACCEPT_ATTACH:
                # The NSM socket already exists; complete the entry now.
                self.table.complete(vm_tuple, nqe.op_data)
        nsm_reg = self._nsm_registration(entry.nsm_id)
        if nsm_reg is None or not nsm_reg.active:
            # The serving NSM died between insert and this switch.
            self.table.remove_vm(vm_tuple)
            self._fail_fast_nqe(nqe)
            return None
        nsm_device = nsm_reg.device
        qs = nsm_device.queue_sets[entry.nsm_queue_set]
        # An NSM device consumes (job, send) — consume_rings() inlined.
        ring = qs.send if nqe.op is NqeOp.SEND else qs.job
        return ring, nsm_device

    def _resolve_nsm_to_vm(self, reg: _Registration, nqe: Nqe):
        """Pick the destination (ring, device) for an NSM-egress NQE, or
        consume it (intercept/drop) and return None.  Never yields."""
        op = nqe.op
        if op is NqeOp.HEARTBEAT_ACK:
            # Liveness answer for the health monitor; never reaches a VM.
            self.heartbeat_acks += 1
            self._last_ack[reg.numeric_id] = self.sim.now
            NQE_POOL.release(nqe)
            return None
        vm_reg = self._vm_registration(nqe.vm_id)
        if vm_reg is None:
            self._drop_nqe(nqe)  # VM shut down
            return None
        if op is NqeOp.OP_RESULT:
            # Connection-table bookkeeping applies only to results; the
            # event path skips the tuple build and lookup entirely.
            vm_tuple = (nqe.vm_id, nqe.queue_set_id, nqe.socket_id)
            entry = self.table.lookup_vm(vm_tuple)
            if entry is not None and not entry.complete and nqe.op_data > 0:
                # Fig. 6 step (4): response carries the NSM socket id.
                # Only a positive op_data announces one — ServiceLib's
                # ids start at 1, and a 0 is a plain success status
                # (completing on those used to alias every control-op
                # entry onto NSM socket 0; the table now rejects such
                # collisions instead of silently last-writer-winning).
                self.table.complete(vm_tuple, nqe.op_data)
            aux = nqe.aux
            if type(aux) is dict and aux.get("req_op") == NqeOp.CLOSE:
                self.table.remove_vm(vm_tuple)
        vm_device = vm_reg.device
        qs = vm_device.queue_sets[nqe.queue_set_id % len(vm_device.queue_sets)]
        # A VM device consumes (completion, receive) — consume_rings()
        # inlined; events land on the receive ring.
        ring = qs.receive if op in _EVENT_OPS else qs.completion
        return ring, vm_device

    def _deliver_fast(self, ring, nqe: Nqe, target_device: NKDevice) -> bool:
        """Synchronous delivery attempt (vectorized path).  Returns True
        when the NQE was fully handled — pushed and the consumer woken,
        or dropped because the target died.  Returns False when the
        generator slow path must take over (active fault injection, or a
        full ring that needs a bounded stall); it has consumed nothing in
        that case, so :meth:`_deliver` re-runs the same checks."""
        if self.faults is not None:
            return False
        target_reg = target_device.ce_registration
        if target_reg is not None and not target_reg.active:
            self._drop_nqe(nqe)
            return True
        count = ring._count
        if count == ring.capacity:
            # Leave the full-ring rejection accounting and the bounded
            # stall to the slow path, so counters match the scalar loop.
            return False
        if ring._producer is not self:
            ring.claim_producer(self)
        # SpscRing.try_push inlined (fullness and ownership are already
        # settled above): this runs once per switched NQE and the call
        # overhead is measurable at switching rates.
        tail = ring._tail
        ring._slots[tail] = nqe
        tail += 1
        ring._tail = 0 if tail == ring.capacity else tail
        count += 1
        ring._count = count
        ring.produced += 1
        if count > ring.peak_depth:
            ring.peak_depth = count
        if count > ring.hwm_depth:
            ring.hwm_depth = count
        ov = self.overload
        if ov is not None and nqe.created_at > 0.0:
            ov.note_delivery(self.sim.now - nqe.created_at)
        target_device.wake()
        return True

    def _deliver(self, ring, nqe: Nqe, target_device: NKDevice):
        """Copy the NQE into the destination ring.

        Backpressure stalls are *bounded*: a live consumer drains its
        ring within microseconds, so a stall that outlives
        ``deliver_stall_budget`` means the consumer is gone or wedged —
        the NQE is dropped (payload freed, element pooled) and counted
        in ``nqes_dropped_backpressure`` instead of wedging the switch
        forever.
        """
        faults = self.faults
        if faults is not None:
            if faults.should_drop_slot(nqe, target_device):
                self._drop_nqe(nqe)  # injected ring-slot write loss
                return
            delay = faults.completion_delay(target_device)
            if delay > 0:
                yield self.sim.timeout(delay)
        # The target may have died (quarantine/deregister) between switch
        # and delivery; pushing into a reclaimed ring would strand the
        # element forever, so drop it instead.
        target_reg = target_device.ce_registration
        if target_reg is not None and not target_reg.active:
            self._drop_nqe(nqe)
            return
        deadline: Optional[float] = None
        while not ring.try_push(nqe, owner=self):
            if target_reg is not None and not target_reg.active:
                self._drop_nqe(nqe)  # consumer died while we stalled
                return
            if deadline is None:
                deadline = self.sim.now + self.deliver_stall_budget
            elif self.sim.now >= deadline:
                self._count_backpressure_drop(nqe.vm_id)
                self._drop_nqe(nqe)
                return
            yield self.sim.timeout(2e-6)
        ov = self.overload
        if ov is not None and nqe.created_at > 0.0:
            ov.note_delivery(self.sim.now - nqe.created_at)
        target_device.wake()

    def _count_backpressure_drop(self, vm_id: int) -> None:
        """Account a backpressure drop host-globally and to its VM."""
        self.nqes_dropped_backpressure += 1
        per_vm = self.vm_dropped_backpressure
        per_vm[vm_id] = per_vm.get(vm_id, 0) + 1

    def _drop_nqe(self, nqe: Nqe) -> None:
        """Drop an NQE terminally: free any hugepage payload it
        references and return the element to the pool (the drop path is
        its final consumer — losing pooled elements here would bleed the
        pool dry under sustained faults)."""
        self.nqes_dropped += 1
        per_vm = self.vm_dropped
        vm_id = nqe.vm_id
        per_vm[vm_id] = per_vm.get(vm_id, 0) + 1
        self._free_payload(nqe)
        NQE_POOL.release(nqe)

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        """Lifetime switching counters (NQEs, batches, table size)."""
        return {
            "nqes_switched": self.nqes_switched,
            "batches": self.batches,
            "avg_batch": (self.nqes_switched / self.batches
                          if self.batches else 0.0),
            "connections": len(self.table),
            "rate_limited_stalls": self.rate_limited_stalls,
            "nqes_dropped": self.nqes_dropped,
            "nqes_dropped_backpressure": self.nqes_dropped_backpressure,
            "nqes_failed_fast": self.nqes_failed_fast,
            "nqes_shed": self.nqes_shed,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeat_acks": self.heartbeat_acks,
            "nsms_quarantined": self.nsms_quarantined,
            "vms_failed_over": self.vms_failed_over,
            "conns_reset_on_failover": self.conns_reset_on_failover,
            "vms_migrated": self.vms_migrated,
            "conns_migrated": self.conns_migrated,
            "migration_parked_ops": self.migration_parked_ops,
            "sched.mode": self.scan,
            "sched.passes": self._pass_counter,
            "sched.stale_wakeups": self.stale_wakeups,
            "sched.vectorized": self.vectorized,
        }

    def per_vm_drops(self) -> Dict[int, dict]:
        """Per-VM loss attribution: terminal drops, backpressure drops,
        and overload sheds, keyed by VM id (union of all three maps)."""
        out: Dict[int, dict] = {}
        for vm_id in sorted(set(self.vm_dropped)
                            | set(self.vm_dropped_backpressure)
                            | set(self.vm_shed)):
            out[vm_id] = {
                "dropped": self.vm_dropped.get(vm_id, 0),
                "dropped_backpressure":
                    self.vm_dropped_backpressure.get(vm_id, 0),
                "shed": self.vm_shed.get(vm_id, 0),
            }
        return out

    def isolation_state(self) -> dict:
        """Per-VM token-bucket fill levels (bw in bits, ops in NQEs)."""
        state: Dict[int, dict] = {}
        for kind, limits in (("bw", self._bw_limits),
                             ("ops", self._op_limits)):
            for vm_id, bucket in limits.items():
                bucket._refill()
                state.setdefault(vm_id, {})[kind] = {
                    "rate": bucket.rate,
                    "burst": bucket.burst,
                    "tokens": bucket.tokens,
                }
        return state
