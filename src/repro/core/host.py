"""NetKernelHost: assembles CoreEngine, NSMs, and tenant VMs on one
physical machine (Fig. 2).

Typical wiring::

    host = NetKernelHost(sim, network)
    nsm = host.add_nsm("nsm0", vcpus=2, stack="kernel")
    vm = host.add_vm("vm1", vcpus=1, nsm=nsm)
    api = host.socket_api(vm)          # BSD socket facade for apps
    vm.spawn(my_app(api))

The NSM's stack is the host's network endpoint: traffic addressed to the
NSM's name reaches every VM it serves (port-demultiplexed), exactly as in
the paper where the guest has no vNIC of its own.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.coreengine import CoreEngine
from repro.core.guestlib import GuestLib
from repro.core.nsm import NetworkStackModule
from repro.core.servicelib import ServiceLib
from repro.core.vm import GuestVM
from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import ConfigurationError
from repro.mem.hugepages import HugepageRegion
from repro.net.fabric import Network
from repro.stack.kernel_stack import KernelStack
from repro.stack.mtcp_stack import MtcpStack
from repro.stack.shared_memory_stack import SharedMemoryStack


class NetKernelHost:
    """One physical host running the NetKernel architecture."""

    STACK_FLAVOURS = ("kernel", "mtcp", "shm")

    def __init__(self, sim, network: Optional[Network] = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 ce_batch_size: int = 4, name: str = "host",
                 ce_scan: Optional[str] = None, ce_shards: int = 1):
        if ce_shards < 1:
            raise ConfigurationError(
                f"ce_shards must be >=1: {ce_shards}")
        self.sim = sim
        self.name = name
        self.cost = cost_model
        self.network = network if network is not None else Network(sim)
        if ce_shards == 1:
            self.ce_cores = [Core(sim, name=f"{name}.ce",
                                  hz=cost_model.core_hz)]
            self.coreengine = CoreEngine(sim, self.ce_cores[0], cost_model,
                                         batch_size=ce_batch_size,
                                         scan=ce_scan)
        else:
            from repro.core.sharding import ShardedCoreEngine

            self.ce_cores = [Core(sim, name=f"{name}.ce{i}",
                                  hz=cost_model.core_hz)
                             for i in range(ce_shards)]
            self.coreengine = ShardedCoreEngine(
                sim, self.ce_cores, cost_model,
                batch_size=ce_batch_size, scan=ce_scan)
        #: Kept as an alias for the single-switch layout; accounting
        #: sums over ce_cores so sharded hosts attribute every shard.
        self.ce_core = self.ce_cores[0]
        self.vms: Dict[str, GuestVM] = {}
        self.nsms: Dict[str, NetworkStackModule] = {}
        #: Observability (repro.obs); None = tracing disabled (default).
        self.obs = None
        #: NSM autoscaler (repro.core.autoscaler); None until enabled.
        self.autoscaler = None

    def enable_observability(self, sample_interval: Optional[float] = None):
        """Switch on the repro.obs datapath tracing/metrics layer.

        Idempotent; components added later are instrumented too.  With
        ``sample_interval`` set, ring/hugepage/token-bucket gauges are
        sampled periodically (they are always sampled at report time).
        """
        if self.obs is None:
            from repro.obs import Observability

            Observability(self.sim).attach_host(
                self, sample_interval=sample_interval)
        return self.obs

    # -- NSMs -------------------------------------------------------------------

    def add_nsm(self, name: str, vcpus: int = 1, stack: str = "kernel",
                cc_factory: Optional[Callable] = None,
                nic_rate_bps: Optional[float] = None,
                stack_kwargs: Optional[dict] = None,
                shard: Optional[int] = None) -> NetworkStackModule:
        """Boot an NSM running the given stack flavour.

        ``nic_rate_bps`` caps the NSM's fabric links (an SR-IOV VF rate,
        as in Fig. 21's 10G NSM).  ``shard`` pins the NSM's NK device to
        one switching shard (sharded hosts only; the autoscaler uses it
        to spawn onto the emptiest shard).
        """
        if name in self.nsms:
            raise ConfigurationError(f"NSM {name} already exists")
        if shard is not None and not hasattr(self.coreengine, "shards"):
            raise ConfigurationError(
                f"shard={shard} needs a sharded host (ce_shards > 1)")
        nsm = NetworkStackModule(self.sim, name, vcpus, self.cost)
        stack_kwargs = dict(stack_kwargs or {})
        if stack == "kernel":
            nsm.stack = KernelStack(self.sim, self._scoped_network(name, nic_rate_bps),
                                    name, nsm.cores, self.cost,
                                    cc_factory=cc_factory, **stack_kwargs)
        elif stack == "mtcp":
            nsm.stack = MtcpStack(self.sim, self._scoped_network(name, nic_rate_bps),
                                  name, nsm.cores, self.cost,
                                  cc_factory=cc_factory, **stack_kwargs)
        elif stack == "shm":
            nsm.stack = SharedMemoryStack(self.sim, nsm.cores, self.cost,
                                          host_id=name, **stack_kwargs)
        else:
            raise ConfigurationError(
                f"unknown stack {stack!r}; choose from {self.STACK_FLAVOURS}")
        register_kwargs = {} if shard is None else {"shard": shard}
        nsm_id, device = self.coreengine.register_nsm(
            name, queue_sets=vcpus, **register_kwargs)
        nsm.nsm_id = nsm_id
        nsm.servicelib = ServiceLib(self.sim, nsm_id, device, nsm.stack,
                                    nsm.cores, self.cost)
        self.nsms[name] = nsm
        if self.obs is not None:
            self.obs.attach_nsm(nsm)
        return nsm

    def _scoped_network(self, endpoint: str, nic_rate_bps: Optional[float]):
        """The fabric the NSM's stack registers on, with optional VF cap."""
        if nic_rate_bps is None:
            return self.network
        from repro.net.link import Link

        network = self.network

        class _CappedFabric:
            """Registers the endpoint with rate-capped access links."""

            def add_endpoint(self, host_id, handler):
                network.add_endpoint(
                    host_id, handler,
                    uplink=Link(network.sim, nic_rate_bps,
                                network.default_delay_sec,
                                name=f"{host_id}.vf-up"),
                    downlink=Link(network.sim, nic_rate_bps,
                                  network.default_delay_sec,
                                  name=f"{host_id}.vf-down"))

            def send(self, packet):
                return network.send(packet)

        return _CappedFabric()

    # -- VMs ---------------------------------------------------------------------

    def add_vm(self, name: str, vcpus: int = 1,
               nsm: Optional[NetworkStackModule] = None,
               user: str = "tenant",
               poll_window_sec: Optional[float] = None,
               op_timeout: Optional[float] = None,
               max_op_retries: int = 3,
               backoff_seed: int = 0,
               shard: Optional[int] = None) -> GuestVM:
        """Boot a tenant VM and connect it to its serving NSM.

        With ``nsm=None`` CoreEngine load-balances the VM onto the
        least-loaded registered NSM (§4.3 fn. 1) — on a sharded host
        preferring an NSM homed on the VM's own shard, so auto-placed
        traffic stays shard-local.  ``op_timeout`` / ``max_op_retries``
        arm GuestLib's per-op deadlines (§8); ``backoff_seed`` seeds its
        retry/backoff jitter stream.  ``shard`` pins the VM's NK device
        to one switching shard (sharded hosts only).
        """
        if name in self.vms:
            raise ConfigurationError(f"VM {name} already exists")
        if shard is not None and not hasattr(self.coreengine, "shards"):
            raise ConfigurationError(
                f"shard={shard} needs a sharded host (ce_shards > 1)")
        vm = GuestVM(self.sim, name, vcpus, user=user, cost_model=self.cost)
        region = HugepageRegion(name=f"{name}.hp")
        register_kwargs = {} if shard is None else {"shard": shard}
        vm_id, device = self.coreengine.register_vm(
            name, queue_sets=vcpus, hugepages=region,
            poll_window_sec=poll_window_sec, **register_kwargs)
        vm.vm_id = vm_id
        vm.guestlib = GuestLib(self.sim, vm_id, device, vm.cores, self.cost,
                               op_timeout=op_timeout,
                               max_op_retries=max_op_retries,
                               backoff_seed=backoff_seed)
        if nsm is None:
            # Dynamic load balancing by CoreEngine (§4.3 fn. 1).
            nsm_id = self.coreengine.assign_vm_auto(vm_id)
            nsm = next(n for n in self.nsms.values() if n.nsm_id == nsm_id)
        else:
            self.coreengine.assign_vm(vm_id, nsm.nsm_id)
        nsm.servicelib.attach_vm_region(vm_id, region)
        self.vms[name] = vm
        if self.obs is not None:
            self.obs.attach_vm(vm)
        return vm

    def add_vcpu(self, vm: GuestVM) -> int:
        """Hot-add a vCPU to a VM: a new core plus its queue-set lane
        (§4.4's dynamic queue scaling).  Returns the new vCPU index."""
        core = Core(self.sim, name=f"{vm.name}.cpu{vm.vcpus}",
                    hz=self.cost.core_hz)
        vm.cores.append(core)
        return vm.guestlib.add_vcpu_lane(core)

    def switch_nsm(self, vm: GuestVM, nsm: NetworkStackModule) -> None:
        """Re-point a VM at a different NSM (new connections only)."""
        self.coreengine.assign_vm(vm.vm_id, nsm.nsm_id)
        region = self.coreengine.vm_device(vm.vm_id).hugepages
        nsm.servicelib.attach_vm_region(vm.vm_id, region)

    def migrate_vm(self, vm: GuestVM, target_nsm: NetworkStackModule,
                   **kwargs):
        """Live-migrate a VM's connections to ``target_nsm`` (zero-reset
        stack upgrade).  Returns CoreEngine's migration generator — run
        it with ``sim.process(...)`` or ``yield from`` it; it yields the
        migration record on completion.  ``kwargs`` pass through to
        :meth:`CoreEngine.migrate_vm` (blackout tuning)."""
        source_nsm_id = self.coreengine.vm_to_nsm.get(vm.vm_id)
        source = next((n for n in self.nsms.values()
                       if n.nsm_id == source_nsm_id), None)
        if source is None:
            raise ConfigurationError(
                f"VM {vm.name} has no live serving NSM to migrate from")
        return self.coreengine.migrate_vm(
            vm.vm_id, target_nsm.nsm_id, source.servicelib,
            target_nsm.servicelib, **kwargs)

    # -- failure detection & failover (§8) ---------------------------------------

    def enable_failover(self, heartbeat_interval: float = 1e-3,
                        detection_timeout: float = 5e-3) -> None:
        """Arm NSM failure detection plus automatic VM re-assignment.

        CoreEngine heartbeats every NSM; one that stays silent past
        ``detection_timeout`` is quarantined, its in-flight work fails
        fast with ECONNRESET, and its VMs are rebound to the least-loaded
        surviving NSM.  The listener registered here completes the
        host-level half of that rebinding: attaching each moved VM's
        hugepage region to the standby's ServiceLib (the same wiring
        ``switch_nsm`` does for planned moves).
        """
        self.coreengine.enable_health_monitor(
            heartbeat_interval=heartbeat_interval,
            detection_timeout=detection_timeout)

        def attach_region(vm_id: int, dead_nsm_id: int,
                          standby_id: int) -> None:
            standby = next((n for n in self.nsms.values()
                            if n.nsm_id == standby_id), None)
            if standby is None:
                return
            region = self.coreengine.vm_device(vm_id).hugepages
            standby.servicelib.attach_vm_region(vm_id, region)

        self.coreengine.failover_listeners.append(attach_region)

    def remove_vm(self, vm: GuestVM) -> None:
        """Tear down a VM: deregister its NK device (§4.4)."""
        self.coreengine.deregister(vm.vm_id)
        self.vms.pop(vm.name, None)

    def remove_nsm(self, nsm: NetworkStackModule) -> None:
        """Retire an NSM: deregister its NK device and drop it from the
        host registry (the autoscaler's scale-down path).  VMs still
        assigned to it are orphaned or failed over by CoreEngine's
        deregister logic; callers should drain first (migrate_vm)."""
        self.coreengine.deregister(nsm.nsm_id)
        self.nsms.pop(nsm.name, None)

    def enable_autoscaler(self, load_signal, **kwargs):
        """Attach an NSM autoscaler driven by ``load_signal`` (an AG
        aggregate per-minute series, or any callable(tick)->float).
        ``kwargs`` pass through to :class:`NsmAutoscaler`."""
        from repro.core.autoscaler import NsmAutoscaler

        if self.autoscaler is not None:
            raise ConfigurationError("autoscaler already enabled")
        self.autoscaler = NsmAutoscaler(self.sim, self, load_signal,
                                        **kwargs)
        return self.autoscaler

    def socket_api(self, vm: GuestVM):
        """The BSD socket facade applications in ``vm`` program against."""
        from repro.core.sockets import NetKernelSocketApi

        return NetKernelSocketApi(vm.guestlib)

    # -- accounting -----------------------------------------------------------------

    def cycles_by_role(self) -> Dict[str, float]:
        """Total busy cycles per role, the §7.8 accounting breakdown."""
        return {
            "vms": sum(vm.total_cycles() for vm in self.vms.values()),
            "nsms": sum(nsm.total_cycles() for nsm in self.nsms.values()),
            "coreengine": sum(core.busy_cycles for core in self.ce_cores),
        }
