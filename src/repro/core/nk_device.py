"""The NK device: a virtual device of queue sets plus notification state.

Each VM and each NSM has one NK device (§4).  Ring direction depends on
the device's role: a **VM** device produces into its job/send rings and
consumes completion/receive; an **NSM** device is the mirror image —
ServiceLib consumes job/send and produces completion/receive.  CoreEngine
always sits on the other end of every ring, which is what keeps each ring
single-producer / single-consumer (§3).

The device implements interrupt-driven polling for its consumer (§4.6):
the consumer polls for a short window (20 µs by default) and then sleeps
until CoreEngine wakes the device.  Wakeups landing inside the window are
counted as polled (cheap); later ones as interrupts.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.nqe import Nqe
from repro.core.queues import QueueSet
from repro.errors import ConfigurationError
from repro.mem.hugepages import HugepageRegion
from repro.mem.ring import SpscRing
from repro.sim.event import Event, PENDING as EVENT_PENDING

ROLE_VM = "vm"
ROLE_NSM = "nsm"


class NKDevice:
    """Queue sets + hugepage mapping + notification for one VM or NSM."""

    def __init__(self, sim, owner_id: str, role: str, queue_sets: int,
                 hugepages: HugepageRegion, ring_slots: int = 4096,
                 poll_window_sec: float = 20e-6):
        if queue_sets < 1:
            raise ConfigurationError("NK device needs >=1 queue set")
        if role not in (ROLE_VM, ROLE_NSM):
            raise ConfigurationError(f"unknown NK device role: {role}")
        self.sim = sim
        self.owner_id = owner_id
        self.role = role
        self.queue_sets: List[QueueSet] = [
            QueueSet(owner_id, i, slots=ring_slots) for i in range(queue_sets)
        ]
        self.hugepages = hugepages
        self.poll_window_sec = poll_window_sec
        #: Doorbell toward CoreEngine (installed at registration); called
        #: with this device so the CE can mark exactly it ready (§4.3).
        self.doorbell: Optional[Callable[["NKDevice"], None]] = None
        #: Back-reference installed by CoreEngine at registration; lets a
        #: device-carrying doorbell resolve to its scheduler entry in O(1).
        self.ce_registration = None
        #: Event consumers wait on; re-armed after each wake.
        self._wake_event = sim.event()
        self._poll_started_at: Optional[float] = None
        # Statistics (§4.6 evaluation of interrupt-driven polling).
        self.wakeups_polled = 0
        self.wakeups_interrupt = 0

    def add_queue_set(self, ring_slots: int = 4096) -> QueueSet:
        """Hot-add one queue-set lane (§4.4: "queues can be dynamically
        added or removed with the number of vCPUs")."""
        qs = QueueSet(self.owner_id, len(self.queue_sets), slots=ring_slots)
        self.queue_sets.append(qs)
        return qs

    # -- ring direction ---------------------------------------------------------

    def produce_rings(self, qs: QueueSet) -> Tuple[SpscRing, SpscRing]:
        """(control ring, data ring) this device's owner produces into."""
        if self.role == ROLE_VM:
            return (qs.job, qs.send)
        return (qs.completion, qs.receive)

    def consume_rings(self, qs: QueueSet) -> Tuple[SpscRing, SpscRing]:
        """(control ring, data ring) this device's owner consumes from."""
        if self.role == ROLE_VM:
            return (qs.completion, qs.receive)
        return (qs.job, qs.send)

    def queue_set_for(self, vcpu_index: int) -> QueueSet:
        """The lane a given vCPU produces into (single-producer rule)."""
        return self.queue_sets[vcpu_index % len(self.queue_sets)]

    # -- notifications -------------------------------------------------------------

    def ring_doorbell(self) -> None:
        """Tell CoreEngine that freshly produced NQEs are waiting.

        The doorbell identifies the kicking device, so CoreEngine's
        ready-set scheduler services just this device instead of
        rescanning every registered one.
        """
        if self.doorbell is not None:
            self.doorbell(self)

    def wake(self) -> None:
        """CoreEngine delivered inbound NQEs: wake a sleeping consumer.

        Fires only when a consumer is actually parked on the wake event:
        a process registers its resume callback in the same step that it
        yields (check-rings-then-wait is atomic in the cooperative sim),
        so ``callbacks`` is empty exactly when nobody is waiting and a
        succeed would only queue a ghost event nobody observes.  Batched
        deliveries used to queue one such ghost per NQE after the first —
        pure event-loop churn, skipped identically in vectorized and
        scalar switching so the A/B timelines stay bit-identical.
        """
        if self._poll_started_at is not None:
            elapsed = self.sim._now - self._poll_started_at
            if elapsed <= self.poll_window_sec:
                self.wakeups_polled += 1
            else:
                self.wakeups_interrupt += 1
            self._poll_started_at = None
        event = self._wake_event
        if event.callbacks and event._state == EVENT_PENDING:
            event.succeed()
            self._wake_event = Event(self.sim)

    def wait_for_inbound(self):
        """Event to yield on when every consume ring is empty.

        Marks the start of the polling window for wake accounting.
        """
        if self._poll_started_at is None:
            self._poll_started_at = self.sim.now
        return self._wake_event

    # -- bulk access ------------------------------------------------------------------

    def consume_pending(self) -> bool:
        vm = self.role == ROLE_VM
        for qs in self.queue_sets:
            if vm:
                if qs.completion._count or qs.receive._count:
                    return True
            elif qs.job._count or qs.send._count:
                return True
        return False

    def produce_pending(self) -> bool:
        # Checked once per serviced device by the ready-set scheduler, so
        # the ring directions are inlined instead of built as tuples.
        vm = self.role == ROLE_VM
        for qs in self.queue_sets:
            if vm:
                if qs.job._count or qs.send._count:
                    return True
            elif qs.completion._count or qs.receive._count:
                return True
        return False

    def drain_consume(self, max_items: int, consumer: object) -> List[Nqe]:
        """Pop up to ``max_items`` NQEs across this owner's consume rings."""
        batch: List[Nqe] = []
        n = self.drain_consume_into(batch, max_items, consumer)
        del batch[n:]
        return batch

    def drain_consume_into(self, buf: List[Nqe], max_items: int,
                           consumer: object) -> int:
        """Allocation-free :meth:`drain_consume`: fill ``buf[0:n]``, return n.

        ``buf`` is a caller-owned scratch list reused across passes
        (grown on demand, never shrunk); slots past ``n`` are stale.
        """
        filled = 0
        for qs in self.queue_sets:
            for ring in self.consume_rings(qs):
                if filled >= max_items:
                    return filled
                filled += ring.drain_into(buf, max_items - filled,
                                          owner=consumer, start=filled)
        return filled

    def ring_depths(self) -> dict:
        """Current and peak occupancy per ring, for obs samplers."""
        depths = {}
        for qs in self.queue_sets:
            for ring_name in ("job", "send", "completion", "receive"):
                ring = getattr(qs, ring_name)
                depths[f"qs{qs.index}.{ring_name}"] = {
                    "depth": len(ring),
                    "peak": ring.peak_depth,
                    "capacity": ring.capacity,
                }
        return depths

    def stats(self) -> dict:
        merged = {}
        for qs in self.queue_sets:
            merged.update(qs.stats())
        merged["wakeups_polled"] = self.wakeups_polled
        merged["wakeups_interrupt"] = self.wakeups_interrupt
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<NKDevice {self.owner_id} role={self.role} "
                f"x{len(self.queue_sets)}>")
