"""The NK device: a virtual device of queue sets plus notification state.

Each VM and each NSM has one NK device (§4).  Ring direction depends on
the device's role: a **VM** device produces into its job/send rings and
consumes completion/receive; an **NSM** device is the mirror image —
ServiceLib consumes job/send and produces completion/receive.  CoreEngine
always sits on the other end of every ring, which is what keeps each ring
single-producer / single-consumer (§3).

The device implements interrupt-driven polling for its consumer (§4.6):
the consumer polls for a short window (20 µs by default) and then sleeps
until CoreEngine wakes the device.  Wakeups landing inside the window are
counted as polled (cheap); later ones as interrupts.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.nqe import Nqe
from repro.core.queues import QueueSet
from repro.errors import ConfigurationError
from repro.mem.hugepages import HugepageRegion
from repro.mem.ring import SpscRing

ROLE_VM = "vm"
ROLE_NSM = "nsm"


class NKDevice:
    """Queue sets + hugepage mapping + notification for one VM or NSM."""

    def __init__(self, sim, owner_id: str, role: str, queue_sets: int,
                 hugepages: HugepageRegion, ring_slots: int = 4096,
                 poll_window_sec: float = 20e-6):
        if queue_sets < 1:
            raise ConfigurationError("NK device needs >=1 queue set")
        if role not in (ROLE_VM, ROLE_NSM):
            raise ConfigurationError(f"unknown NK device role: {role}")
        self.sim = sim
        self.owner_id = owner_id
        self.role = role
        self.queue_sets: List[QueueSet] = [
            QueueSet(owner_id, i, slots=ring_slots) for i in range(queue_sets)
        ]
        self.hugepages = hugepages
        self.poll_window_sec = poll_window_sec
        #: Doorbell toward CoreEngine (installed at registration); called
        #: with this device so the CE can mark exactly it ready (§4.3).
        self.doorbell: Optional[Callable[["NKDevice"], None]] = None
        #: Back-reference installed by CoreEngine at registration; lets a
        #: device-carrying doorbell resolve to its scheduler entry in O(1).
        self.ce_registration = None
        #: Event consumers wait on; re-armed after each wake.
        self._wake_event = sim.event()
        self._poll_started_at: Optional[float] = None
        # Statistics (§4.6 evaluation of interrupt-driven polling).
        self.wakeups_polled = 0
        self.wakeups_interrupt = 0

    def add_queue_set(self, ring_slots: int = 4096) -> QueueSet:
        """Hot-add one queue-set lane (§4.4: "queues can be dynamically
        added or removed with the number of vCPUs")."""
        qs = QueueSet(self.owner_id, len(self.queue_sets), slots=ring_slots)
        self.queue_sets.append(qs)
        return qs

    # -- ring direction ---------------------------------------------------------

    def produce_rings(self, qs: QueueSet) -> Tuple[SpscRing, SpscRing]:
        """(control ring, data ring) this device's owner produces into."""
        if self.role == ROLE_VM:
            return (qs.job, qs.send)
        return (qs.completion, qs.receive)

    def consume_rings(self, qs: QueueSet) -> Tuple[SpscRing, SpscRing]:
        """(control ring, data ring) this device's owner consumes from."""
        if self.role == ROLE_VM:
            return (qs.completion, qs.receive)
        return (qs.job, qs.send)

    def queue_set_for(self, vcpu_index: int) -> QueueSet:
        """The lane a given vCPU produces into (single-producer rule)."""
        return self.queue_sets[vcpu_index % len(self.queue_sets)]

    # -- notifications -------------------------------------------------------------

    def ring_doorbell(self) -> None:
        """Tell CoreEngine that freshly produced NQEs are waiting.

        The doorbell identifies the kicking device, so CoreEngine's
        ready-set scheduler services just this device instead of
        rescanning every registered one.
        """
        if self.doorbell is not None:
            self.doorbell(self)

    def wake(self) -> None:
        """CoreEngine delivered inbound NQEs: wake a sleeping consumer."""
        if self._poll_started_at is not None:
            elapsed = self.sim.now - self._poll_started_at
            if elapsed <= self.poll_window_sec:
                self.wakeups_polled += 1
            else:
                self.wakeups_interrupt += 1
            self._poll_started_at = None
        if not self._wake_event.triggered:
            self._wake_event.succeed()
            self._wake_event = self.sim.event()

    def wait_for_inbound(self):
        """Event to yield on when every consume ring is empty.

        Marks the start of the polling window for wake accounting.
        """
        if self._poll_started_at is None:
            self._poll_started_at = self.sim.now
        return self._wake_event

    # -- bulk access ------------------------------------------------------------------

    def consume_pending(self) -> bool:
        return any(
            len(ring) for qs in self.queue_sets
            for ring in self.consume_rings(qs))

    def produce_pending(self) -> bool:
        return any(
            len(ring) for qs in self.queue_sets
            for ring in self.produce_rings(qs))

    def drain_consume(self, max_items: int, consumer: object) -> List[Nqe]:
        """Pop up to ``max_items`` NQEs across this owner's consume rings."""
        batch: List[Nqe] = []
        for qs in self.queue_sets:
            for ring in self.consume_rings(qs):
                if len(batch) >= max_items:
                    return batch
                batch.extend(ring.pop_batch(max_items - len(batch),
                                            owner=consumer))
        return batch

    def ring_depths(self) -> dict:
        """Current and peak occupancy per ring, for obs samplers."""
        depths = {}
        for qs in self.queue_sets:
            for ring_name in ("job", "send", "completion", "receive"):
                ring = getattr(qs, ring_name)
                depths[f"qs{qs.index}.{ring_name}"] = {
                    "depth": len(ring),
                    "peak": ring.peak_depth,
                    "capacity": ring.capacity,
                }
        return depths

    def stats(self) -> dict:
        merged = {}
        for qs in self.queue_sets:
            merged.update(qs.stats())
        merged["wakeups_polled"] = self.wakeups_polled
        merged["wakeups_interrupt"] = self.wakeups_interrupt
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<NKDevice {self.owner_id} role={self.role} "
                f"x{len(self.queue_sets)}>")
