"""Overload control with graceful degradation.

NetKernel multiplexes many VMs onto shared NSMs, so the switch is the
natural congestion point: past capacity, the seed behaviour was a cliff
— rings filled, ``full_rejections`` ticked, NQEs vanished into
host-global drop counters, and guests learned nothing until a deadline
fired.  This module turns the knee into a plateau.

One :class:`OverloadGovernor` runs per CoreEngine (per *shard* when the
switch is sharded), sampling two deterministic pressure signals at a
fixed simulated cadence:

* **Ring-occupancy watermarks** — the windowed high-watermark
  (:meth:`SpscRing.take_hwm`) of every ring on every registered device,
  as a fraction of capacity.  Occupancy on the rings the switch consumes
  from means the switch is the bottleneck; occupancy on the rings it
  produces into means a consumer (NSM or VM poller) is.
* **Delivery-latency EWMA** — an exponentially weighted moving average
  of ``now - nqe.created_at`` taken at every successful delivery, i.e.
  the queueing delay an element accumulated between production and
  landing in its destination ring.

The governor holds one of three *levels* with hysteresis (distinct
enter/exit thresholds, one-level-per-sample decay):

* ``0`` (normal): no intervention.
* ``1`` (pressured): ServiceLib halves its effective receive window so
  inbound data stops amplifying the backlog.
* ``2`` (overloaded): per-VM admission control engages at the GuestLib
  op-issue boundary, and the switch arms its weight-aware shed backstop.

Degradation contract (guest-visible):

* Admission rejections surface as ``EAGAIN`` (:class:`TryAgainError`)
  *before* the op is issued — the guest knows the op never reached the
  NSM and retries after a seeded, jittered exponential backoff.
* Ops shed *at the switch* fail fast as OP_RESULT/SEND_RESULT carrying
  ``-EAGAIN``, never silently dropped.
* Deadline expiries keep ``ETIMEDOUT``: a timeout means the op's fate
  is unknown, an EAGAIN means it provably did not happen.

Fairness: each sample window, the governor converts the switch's
*demonstrated* throughput over the previous window into per-VM admission
quotas proportional to configured weights (default 1.0).  A hot VM
exhausts its own quota and backs off; its neighbours keep their shares —
the fig09 isolation property, preserved under overload.  The switch-side
shed quota is the admission quota times a slack factor, so shedding only
catches producers that bypass the guest-side gate (or backlog issued
before the level flipped).

Everything here is deterministic: no wall clock, no RNG — decisions are
pure functions of ring states, lifetime counters, and simulated time, so
admission decisions fingerprint identically in vectorized and scalar
switch modes (tests/test_overload.py holds this).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.nqe import Nqe, NqeOp

#: Ops never shed or admission-gated: credits relieve pressure, CLOSE /
#: SHUTDOWN release resources, heartbeats are the health plane, and
#: ACCEPT_ATTACH completes a connection the NSM already holds state for.
EXEMPT_OPS = frozenset((
    NqeOp.RECV_CREDIT, NqeOp.CLOSE, NqeOp.SHUTDOWN, NqeOp.HEARTBEAT,
    NqeOp.ACCEPT_ATTACH,
))

#: Governor levels, for readers of stats dicts.
LEVEL_NORMAL, LEVEL_PRESSURED, LEVEL_OVERLOADED = 0, 1, 2


class OverloadGovernor:
    """Per-shard overload detector + per-VM admission/shed policy."""

    def __init__(self, sim, engine, sample_interval: float = 200e-6,
                 occ_enter: float = 0.75, occ_exit: float = 0.40,
                 latency_enter: float = 2e-3, latency_exit: float = 0.5e-3,
                 ewma_alpha: float = 0.2, min_admit_budget: int = 8,
                 shed_slack: float = 2.0):
        self.sim = sim
        self.engine = engine
        self.sample_interval = sample_interval
        self.occ_enter = occ_enter
        self.occ_exit = occ_exit
        self.latency_enter = latency_enter
        self.latency_exit = latency_exit
        self.ewma_alpha = ewma_alpha
        self.min_admit_budget = min_admit_budget
        self.shed_slack = shed_slack

        #: Current pressure level (0 normal / 1 pressured / 2 overloaded).
        self.level = LEVEL_NORMAL
        #: Delivery-latency EWMA (seconds); 0.0 until the first delivery.
        self.latency_ewma = 0.0
        #: Last sampled max ring-occupancy fraction (diagnostics).
        self.last_occupancy = 0.0
        #: Per-VM admission weights; unlisted VMs weigh 1.0.
        self.vm_weights: Dict[int, float] = {}

        # Window state, rebuilt at every sampler tick.
        self._window_counts: Dict[int, int] = {}
        self._admit_quota: Dict[int, int] = {}
        self._shed_quota: Dict[int, int] = {}
        self._admitted: Dict[int, int] = {}
        self._last_switched = engine.nqes_switched
        #: Injected overload (the ``overload`` FaultKind): the detector
        #: reports level 2 until this simulated instant regardless of the
        #: measured signals.
        self._force_until = 0.0

        self._enabled = True

        # Lifetime counters.
        self.samples = 0
        self.level_transitions = 0
        self.admission_rejections = 0
        self.switch_sheds = 0
        self.vm_admission_rejections: Dict[int, int] = {}
        self._process = sim.process(self._sampler())

    # -- weights ---------------------------------------------------------------

    def set_vm_weight(self, vm_id: int, weight: float) -> None:
        """Set a VM's admission weight (its share of capacity under
        overload is ``weight / sum(weights)``)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive: {weight}")
        self.vm_weights[vm_id] = weight

    def stop(self) -> None:
        """Disarm the governor: the sampler exits at its next tick and
        every hook becomes a no-op (level pinned at 0)."""
        self._enabled = False
        self.level = LEVEL_NORMAL
        self._admit_quota = {}
        self._shed_quota = {}

    # -- fault hook ------------------------------------------------------------

    def force_overload(self, until: float) -> None:
        """Pin the detector at level 2 until simulated time ``until``
        (the ``overload`` FaultKind's hook)."""
        if until > self._force_until:
            self._force_until = until

    # -- hot-path hooks (never yield, never allocate beyond dict slots) --------

    def note_delivery(self, latency: float) -> None:
        """Fold one delivery's production→ring latency into the EWMA.
        Called by the switch at every successful delivery, identically
        in the vectorized and scalar datapaths."""
        alpha = self.ewma_alpha
        self.latency_ewma += alpha * (latency - self.latency_ewma)

    def ingest(self, nqe: Nqe) -> bool:
        """Account one VM-egress NQE against its VM's window; return
        True when the switch should shed it (weight-aware backstop).

        Shedding triggers only at level 2, only for non-exempt ops, and
        only once a VM's in-window count exceeds its shed quota — the
        admission quota times ``shed_slack`` — so a guest that honours
        the admission gate is never shed at the switch.
        """
        vm_id = nqe.vm_id
        counts = self._window_counts
        seen = counts.get(vm_id, 0) + 1
        counts[vm_id] = seen
        if self.level < LEVEL_OVERLOADED or nqe.op in EXEMPT_OPS:
            return False
        quota = self._shed_quota.get(vm_id)
        if quota is None or seen <= quota:
            return False
        self.switch_sheds += 1
        return True

    def admit(self, vm_id: int, op: Optional[NqeOp] = None) -> bool:
        """Admission check at the guest op-issue boundary.

        Below level 2 everything is admitted.  At level 2 each VM spends
        a per-window quota proportional to its weight; an exhausted
        quota rejects (the guest surfaces EAGAIN and backs off).  Exempt
        ops and VMs registered since the last tick are always admitted.
        """
        if self.level < LEVEL_OVERLOADED:
            return True
        if op is not None and op in EXEMPT_OPS:
            return True
        quota = self._admit_quota.get(vm_id)
        if quota is None:
            return True
        used = self._admitted.get(vm_id, 0)
        if used >= quota:
            self.admission_rejections += 1
            per_vm = self.vm_admission_rejections
            per_vm[vm_id] = per_vm.get(vm_id, 0) + 1
            return False
        self._admitted[vm_id] = used + 1
        return True

    # -- detector --------------------------------------------------------------

    def _sampler(self):
        interval = self.sample_interval
        while self._enabled and getattr(self.engine, "_running", True):
            yield self.sim.timeout(interval)
            if not self._enabled:
                break
            self._sample()

    def _max_occupancy(self) -> float:
        """Max windowed occupancy fraction across every ring of every
        device this engine services (resets each ring's window)."""
        occ = 0.0
        for registry in (self.engine._vms, self.engine._nsms):
            for numeric_id in sorted(registry):
                device = registry[numeric_id].device
                for qs in device.queue_sets:
                    for ring in (qs.job, qs.send, qs.completion,
                                 qs.receive):
                        frac = ring.take_hwm() / ring.capacity
                        if frac > occ:
                            occ = frac
        return occ

    def _sample(self) -> None:
        self.samples += 1
        occ = self._max_occupancy()
        self.last_occupancy = occ
        lat = self.latency_ewma
        forced = self.sim.now < self._force_until
        if forced or occ >= self.occ_enter or lat >= self.latency_enter:
            new_level = LEVEL_OVERLOADED
        elif occ < self.occ_exit and lat < self.latency_exit:
            # Hysteresis: step down one level per clean sample instead
            # of snapping to 0, so a single quiet window under a bursty
            # load does not whiplash admission on and off.
            new_level = max(LEVEL_NORMAL, self.level - 1)
        else:
            # Mid band: hold an elevated level, enter "pressured" from 0.
            new_level = max(self.level, LEVEL_PRESSURED)
        if new_level != self.level:
            self.level_transitions += 1
            old = self.level
            self.level = new_level
            obs = getattr(self.engine, "obs", None)
            if obs is not None:
                obs.on_overload_level(self.engine, old, new_level,
                                      occ, lat)
        self._retarget_quotas()

    def _retarget_quotas(self) -> None:
        """Convert last window's demonstrated switch throughput into
        weight-proportional per-VM admission quotas for the next window."""
        switched = self.engine.nqes_switched
        delta = switched - self._last_switched
        self._last_switched = switched
        self._window_counts = {}
        self._admitted = {}
        if self.level < LEVEL_OVERLOADED:
            self._admit_quota = {}
            self._shed_quota = {}
            return
        budget = delta if delta > self.min_admit_budget \
            else self.min_admit_budget
        vm_ids = sorted(self.engine._vms)
        if not vm_ids:
            self._admit_quota = {}
            self._shed_quota = {}
            return
        weights = self.vm_weights
        total_weight = 0.0
        for vm_id in vm_ids:
            total_weight += weights.get(vm_id, 1.0)
        admit: Dict[int, int] = {}
        shed: Dict[int, int] = {}
        slack = self.shed_slack
        for vm_id in vm_ids:
            share = weights.get(vm_id, 1.0) / total_weight
            quota = int(budget * share)
            if quota < 1:
                quota = 1
            admit[vm_id] = quota
            shed[vm_id] = int(quota * slack) + 1
        self._admit_quota = admit
        self._shed_quota = shed

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """Deterministic counters (safe for timeline fingerprints)."""
        return {
            "level": self.level,
            "samples": self.samples,
            "level_transitions": self.level_transitions,
            "admission_rejections": self.admission_rejections,
            "switch_sheds": self.switch_sheds,
            "latency_ewma": round(self.latency_ewma, 9),
            "last_occupancy": round(self.last_occupancy, 6),
        }


def governor_for_device(device) -> Optional[OverloadGovernor]:
    """The governor covering a device's home engine (shard), or None.

    GuestLib and ServiceLib resolve their governor through the device's
    registration so sharded switches naturally give every guest its home
    shard's detector.
    """
    reg = getattr(device, "ce_registration", None)
    if reg is None:
        return None
    engine = reg.engine
    if engine is None:
        return None
    return engine.overload
