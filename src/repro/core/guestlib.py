"""GuestLib: transparent BSD socket redirection inside the guest (§4.1).

GuestLib registers the ``SOCK_NETKERNEL`` socket type: every TCP socket an
application creates becomes a :class:`NetKernelSocket`, and each BSD call
is translated into an NQE, pushed into the guest's NK device, and (for
blocking semantics) parked until the matching response NQE returns.

Payload handling follows §4.5: ``send()`` copies user bytes into the
shared hugepage region, enqueues a send NQE carrying the data pointer, and
returns immediately (pipelining, §4.6) while GuestLib tracks send-buffer
usage; ``recv()`` copies bytes out of hugepages that ServiceLib filled and
returns receive credit so the NSM can keep delivering.

Every socket is pinned to a home queue set (the lane of the vCPU that
created it, accepted sockets round-robin), so its ⟨VM id, queue set,
socket id⟩ tuple — the connection-table key — stays stable for its
lifetime.

Failure handling (§8): when ``op_timeout`` is set, every blocking control
op carries a deadline.  Idempotent ops (setsockopt/getsockopt/close) are
retried with exponential backoff up to ``max_op_retries`` times; anything
else surfaces :class:`~repro.errors.TimedOutError` to the caller.  A late
response for a deadlined op finds no waiter and is simply released by the
poller, so a dead NSM can never wedge a guest thread or leak an NQE.
"""

from __future__ import annotations

import itertools
import random
from collections import deque, namedtuple
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.nk_device import NKDevice
from repro.core.nqe import ERRNO_NAMES, NQE_POOL, Nqe, NqeOp
from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import (
    BadFileDescriptorError,
    InvalidSocketStateError,
    NotConnectedError,
    SocketError,
    TimedOutError,
    TryAgainError,
    socket_error_for,
)

#: Per-socket send-buffer budget (bytes of hugepage space in flight).
DEFAULT_SNDBUF = 256 * 1024
#: Receive credit returned to the NSM in units of this many bytes.
RECV_CREDIT_QUANTUM = 64 * 1024

#: epoll event masks.
EPOLLIN = 0x1
EPOLLOUT = 0x4

#: Control ops safe to re-issue after a deadline expiry: the NSM applies
#: them idempotently (set/get of a recorded option; close of an
#: already-gone context answers OK).
IDEMPOTENT_OPS = frozenset((NqeOp.SETSOCKOPT, NqeOp.GETSOCKOPT, NqeOp.CLOSE))

#: What _call hands back to blocking callers: the response NQE's result
#: fields, decoupled from the pooled element (which _call releases).
OpResult = namedtuple("OpResult", ("op_data", "aux"))


class NetKernelSocket:
    """The guest-side socket object backing a SOCK_NETKERNEL fd."""

    _ids = itertools.count(1)

    def __init__(self, guestlib: "GuestLib", fd: int, home_qset: int,
                 kind: str = "stream"):
        self.guestlib = guestlib
        self.fd = fd
        self.sock_id = next(self._ids)
        self.home_qset = home_qset
        self.kind = kind
        self.state = "created"
        self.bound_port: Optional[int] = None
        self.remote: Optional[Tuple[str, int]] = None
        self.errno: Optional[str] = None

        # Listener state.
        self.backlog = 0
        self.accept_q: Deque["NetKernelSocket"] = deque()

        # Receive state: chunks are [data, offset] pairs; datagram
        # sockets queue whole (payload, source) pairs instead.
        self.rx_chunks: Deque[List] = deque()
        self.rx_dgrams: Deque[Tuple[bytes, Tuple[str, int]]] = deque()
        self.rx_ready_bytes = 0
        self.rx_consumed_uncredited = 0
        self.peer_closed = False

        # Send state (pipelined; usage falls when SEND_RESULTs return).
        self.tx_inflight = 0
        self.tx_cap = DEFAULT_SNDBUF

        # Waiters and epoll watchers.
        self._readable_waiters: List = []
        self._writable_waiters: List = []
        self.watchers: Set["EpollInstance"] = set()

        # Statistics.
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- readiness ---------------------------------------------------------------

    @property
    def readable(self) -> bool:
        if self.state == "listening":
            return bool(self.accept_q)
        if self.kind == "dgram":
            return bool(self.rx_dgrams) or bool(self.errno)
        return self.rx_ready_bytes > 0 or self.peer_closed or bool(self.errno)

    @property
    def writable(self) -> bool:
        return (self.state == "connected"
                and self.tx_inflight < self.tx_cap)

    @property
    def eof(self) -> bool:
        return self.peer_closed and self.rx_ready_bytes == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NetKernelSocket fd={self.fd} {self.state}>"


class EpollInstance:
    """A level-triggered epoll emulation over NetKernel sockets (§4.2)."""

    def __init__(self, guestlib: "GuestLib", epfd: int):
        self.guestlib = guestlib
        self.epfd = epfd
        self.interest: Dict[int, int] = {}
        self.ready_fds: Set[int] = set()
        self._waiters: List = []

    def watch(self, sock: NetKernelSocket, mask: int) -> None:
        self.interest[sock.fd] = mask
        sock.watchers.add(self)
        if self._currently_ready(sock, mask):
            self.ready_fds.add(sock.fd)

    def unwatch(self, sock: NetKernelSocket) -> None:
        self.interest.pop(sock.fd, None)
        sock.watchers.discard(self)
        self.ready_fds.discard(sock.fd)

    def _currently_ready(self, sock: NetKernelSocket, mask: int) -> bool:
        return bool(((mask & EPOLLIN) and sock.readable)
                    or ((mask & EPOLLOUT) and sock.writable))

    def notify(self, sock: NetKernelSocket) -> None:
        """Called by GuestLib when a watched socket's readiness changes."""
        mask = self.interest.get(sock.fd)
        if mask is None:
            return
        if self._currently_ready(sock, mask):
            self.ready_fds.add(sock.fd)
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                if not event.triggered:
                    event.succeed()

    def poll_ready(self, max_events: int) -> List[Tuple[int, int]]:
        """(fd, events) pairs that are ready right now (level-triggered)."""
        events: List[Tuple[int, int]] = []
        stale: List[int] = []
        for fd in self.ready_fds:
            sock = self.guestlib.fd_table.get(fd)
            mask = self.interest.get(fd)
            if sock is None or mask is None:
                stale.append(fd)
                continue
            fired = 0
            if (mask & EPOLLIN) and sock.readable:
                fired |= EPOLLIN
            if (mask & EPOLLOUT) and sock.writable:
                fired |= EPOLLOUT
            if fired:
                events.append((fd, fired))
            else:
                stale.append(fd)
            if len(events) >= max_events:
                break
        for fd in stale:
            self.ready_fds.discard(fd)
        return events


class GuestLib:
    """The guest kernel module: socket redirection + NQE translation."""

    def __init__(self, sim, vm_id: int, device: NKDevice,
                 cores: List[Core],
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 op_timeout: Optional[float] = None,
                 max_op_retries: int = 3,
                 backoff_seed: int = 0):
        self.sim = sim
        self.vm_id = vm_id
        self.device = device
        self.cores = cores
        self.cost = cost_model
        self.hugepages = device.hugepages
        #: Per-attempt deadline for blocking control ops (None = wait
        #: forever, the pre-§8 behaviour).
        self.op_timeout = op_timeout
        #: Extra attempts (with doubling, jittered deadlines) for
        #: IDEMPOTENT_OPS, and the retry budget for admission rejections.
        self.max_op_retries = max_op_retries
        #: Seeded per-VM RNG for backoff jitter.  Pure doubling meant
        #: every guest that timed out at the same instant retried at the
        #: same instant (a stampede that re-creates the overload that
        #: caused the timeouts); the jitter desynchronizes them while
        #: keeping runs bit-reproducible (same seed → same draws, drawn
        #: only by this guest, in its own simulation order).
        self._backoff_rng = random.Random(
            ((backoff_seed & 0xFFFFFFFF) << 32) ^ (0x9E3779B9 * (vm_id + 1)))

        self.fd_table: Dict[int, NetKernelSocket] = {}
        self.epolls: Dict[int, EpollInstance] = {}
        self._next_fd = 3
        self._by_sock_id: Dict[int, NetKernelSocket] = {}
        self._pending: Dict[int, object] = {}  # token -> Event
        self._accept_rr = 0

        # One poller per queue set (per vCPU lane), as in the paper.
        self._pollers = [
            sim.process(self._poller(idx))
            for idx in range(len(device.queue_sets))
        ]

        # Statistics.
        self.nqes_sent = 0
        self.nqes_received = 0
        self.op_timeouts = 0
        self.op_retries = 0
        #: Admission-control rejections observed (one per refused
        #: attempt; the op may still succeed after backing off).
        self.admission_waits = 0
        #: Ops that surfaced EAGAIN to the caller (admission retries
        #: exhausted) — the overload-shed counterpart of op_timeouts.
        self.ops_shed = 0
        #: SEND_RESULTs carrying -EAGAIN (the switch shed a pipelined
        #: send); transient, so they do not poison the socket's errno.
        self.send_results_shed = 0

        # Observability (repro.obs); None = tracing disabled (default).
        self.obs = None

    def add_vcpu_lane(self, core) -> int:
        """Hot-add a vCPU lane: a core, a queue set, and its poller
        (§4.4's dynamic queue scaling).  Returns the new lane index."""
        self.cores.append(core)
        self.device.add_queue_set()
        index = len(self.device.queue_sets) - 1
        self._pollers.append(self.sim.process(self._poller(index)))
        return index

    # -- fd management -----------------------------------------------------------

    def _alloc_fd(self) -> int:
        fd = self._next_fd
        self._next_fd += 1
        return fd

    def _core_for(self, vcpu: int) -> Core:
        return self.cores[vcpu % len(self.cores)]

    def lookup(self, fd: int) -> NetKernelSocket:
        """Resolve an fd to its socket (EBADF if unknown)."""
        sock = self.fd_table.get(fd)
        if sock is None:
            raise BadFileDescriptorError(f"fd {fd}")
        return sock

    # -- overload admission (repro.core.overload) ---------------------------------

    def _governor(self):
        """This VM's home-shard overload governor, or None when overload
        control is disabled (the common case: two attribute loads)."""
        reg = self.device.ce_registration
        if reg is None:
            return None
        engine = reg.engine
        return None if engine is None else engine.overload

    def _backoff_delay(self, attempt: int) -> float:
        """Seeded, jittered exponential backoff: the nominal doubling
        span scaled by a uniform draw in [0.5, 1.5)."""
        base = self.op_timeout if self.op_timeout is not None else 1e-3
        return base * (2 ** attempt) * (0.5 + self._backoff_rng.random())

    def _attempt_deadline(self, attempt: int) -> float:
        """Per-attempt op deadline: exact on the first attempt (an
        un-retried op draws no randomness), doubled with ±25% seeded
        jitter on retries so deadline expiries desynchronize."""
        span = self.op_timeout * (2 ** attempt)
        if attempt == 0:
            return span
        return span * (0.75 + 0.5 * self._backoff_rng.random())

    def _admission_gate(self, op: NqeOp):
        """Block at the op-issue boundary while the host is overloaded.

        The governor's ``admit`` spends this VM's per-window quota; a
        rejection backs off (seeded jitter, doubling) and re-asks, up to
        ``max_op_retries`` times, then fail-fasts with
        :class:`TryAgainError` (EAGAIN).  The op was *never issued* when
        EAGAIN surfaces — unlike ETIMEDOUT, the guest knows its fate.
        """
        gov = self._governor()
        if gov is None or gov.admit(self.vm_id, op):
            return
        for attempt in range(self.max_op_retries):
            self.admission_waits += 1
            yield self.sim.timeout(self._backoff_delay(attempt))
            if gov.admit(self.vm_id, op):
                return
        self.admission_waits += 1
        self.ops_shed += 1
        if self.obs is not None:
            self.obs.on_op_shed(op)
        raise TryAgainError(f"{op.name} rejected by overload admission "
                            f"control after {self.max_op_retries} backoffs")

    # -- NQE plumbing -------------------------------------------------------------

    def _push(self, sock_home_qset: int, nqe: Nqe, data: bool = False):
        """Producer side: place an NQE in this VM's rings (retry on full)."""
        qs = self.device.queue_sets[sock_home_qset % len(self.device.queue_sets)]
        control_ring, data_ring = self.device.produce_rings(qs)
        ring = data_ring if data else control_ring
        while not ring.try_push(nqe, owner=self):
            yield self.sim.timeout(5e-6)
        self.nqes_sent += 1
        if self.obs is not None:
            self.obs.on_guest_enqueue(nqe)
        self.device.ring_doorbell()

    def _call(self, vcpu: int, sock: NetKernelSocket, op: NqeOp,
              op_data: int = 0, aux=None, data_ptr: int = 0, size: int = 0):
        """Send a control NQE and block until its response NQE arrives.

        Returns an :class:`OpResult`; _call is the final consumer of the
        response NQE.  With ``op_timeout`` set, each attempt carries a
        deadline (doubling per retry); only IDEMPOTENT_OPS are re-issued,
        and a deadline expiry raises :class:`TimedOutError`.  A response
        that arrives after its deadline finds no waiter registered and is
        released by the poller — never leaked, never misdelivered (the
        retry uses a fresh token)."""
        core = self._core_for(vcpu)
        yield from self._admission_gate(op)
        yield core.execute(self.cost.guestlib_nqe_prep, "guestlib.prep")
        attempts = 1 + (self.max_op_retries if op in IDEMPOTENT_OPS else 0)
        response = None
        for attempt in range(attempts):
            nqe = NQE_POOL.acquire(op, self.vm_id, sock.home_qset,
                                   sock.sock_id, op_data=op_data,
                                   data_ptr=data_ptr, size=size, aux=aux,
                                   created_at=self.sim.now)
            token = nqe.token
            event = self.sim.event()
            self._pending[token] = event
            yield from self._push(sock.home_qset, nqe)
            if self.op_timeout is None:
                response = yield event
                break
            deadline = self.sim.timeout(self._attempt_deadline(attempt))
            yield self.sim.any_of([event, deadline])
            if event.triggered:
                if not deadline.processed:
                    deadline.cancel()
                response = event.value
                break
            # Deadline expired first: withdraw the waiter so the poller
            # releases the (possibly still coming) response.
            self._pending.pop(token, None)
            self.op_timeouts += 1
            if self.obs is not None:
                self.obs.on_op_timeout(op)
            if attempt + 1 >= attempts:
                raise TimedOutError(
                    f"{op.name} got no response within "
                    f"{attempts} attempt(s)")
            self.op_retries += 1
            if self.obs is not None:
                self.obs.on_op_retry(op)
        yield core.execute(self.cost.guestlib_nqe_complete, "guestlib.complete")
        result = OpResult(response.op_data, response.aux)
        NQE_POOL.release(response)
        return result

    @staticmethod
    def _check(response: OpResult) -> OpResult:
        """Raise the right SocketError for an error response."""
        if response.op_data < 0:
            raise socket_error_for(ERRNO_NAMES.get(-response.op_data, "EIO"))
        return response

    def _rx_deadline(self) -> Optional[float]:
        """Absolute give-up time for a blocking data wait (None = never).

        Data waits get the full retry budget's worth of time — they are
        not retriable (not idempotent), so the bound is a backstop against
        a silently dead NSM rather than a per-attempt deadline."""
        if self.op_timeout is None:
            return None
        return self.sim.now + self.op_timeout * (self.max_op_retries + 1)

    def _wait_bounded(self, event, deadline: Optional[float], what: str):
        """Wait for a readiness event, bounded by an absolute deadline."""
        if deadline is None:
            yield event
            return
        remaining = deadline - self.sim.now
        if remaining <= 0:
            self.op_timeouts += 1
            raise TimedOutError(f"{what} deadline expired")
        timer = self.sim.timeout(remaining)
        yield self.sim.any_of([event, timer])
        if event.triggered:
            if not timer.processed:
                timer.cancel()
            return
        self.op_timeouts += 1
        raise TimedOutError(f"{what} deadline expired")

    # -- BSD socket API (generator coroutines) ---------------------------------------

    def socket(self, vcpu: int = 0, sock_type: str = "stream"):
        """socket(): rewritten to SOCK_NETKERNEL; creates the NSM socket.

        ``sock_type`` is "stream" (TCP) or "dgram" (UDP) — both families
        are redirected, as in Table 1.
        """
        if sock_type not in ("stream", "dgram"):
            raise InvalidSocketStateError(f"unknown socket type {sock_type}")
        fd = self._alloc_fd()
        sock = NetKernelSocket(self, fd,
                               home_qset=vcpu % len(self.device.queue_sets),
                               kind=sock_type)
        self.fd_table[fd] = sock
        self._by_sock_id[sock.sock_id] = sock
        response = yield from self._call(
            vcpu, sock, NqeOp.SOCKET,
            op_data=1 if sock_type == "dgram" else 0)
        self._check(response)
        return sock

    def bind(self, sock: NetKernelSocket, port: int, vcpu: int = 0):
        """bind(): reserve a port in the serving NSM's namespace."""
        response = yield from self._call(vcpu, sock, NqeOp.BIND, op_data=port)
        self._check(response)
        sock.bound_port = port
        sock.state = "bound"
        return 0

    def listen(self, sock: NetKernelSocket, backlog: int = 128, vcpu: int = 0):
        """listen(): the NSM's stack starts accepting on our behalf."""
        response = yield from self._call(vcpu, sock, NqeOp.LISTEN,
                                         op_data=backlog)
        self._check(response)
        sock.state = "listening"
        sock.backlog = backlog
        return 0

    def connect(self, sock: NetKernelSocket, remote: Tuple[str, int],
                vcpu: int = 0):
        """connect(): blocks until the NSM's stack establishes (or the
        response NQE reports an error)."""
        if sock.state == "connected":
            raise InvalidSocketStateError("already connected")
        sock.state = "connecting"
        response = yield from self._call(vcpu, sock, NqeOp.CONNECT,
                                         aux={"remote": remote})
        try:
            self._check(response)
        except SocketError:
            sock.state = "created"
            raise
        sock.remote = remote
        sock.state = "connected"
        self._notify(sock)
        return 0

    def accept(self, listener: NetKernelSocket, vcpu: int = 0):
        """Blocking accept: waits until the NSM hands over a connection."""
        if listener.state != "listening":
            raise InvalidSocketStateError("accept() on a non-listener")
        while not listener.accept_q:
            if listener.errno:
                raise socket_error_for(listener.errno)
            event = self.sim.event()
            listener._readable_waiters.append(event)
            yield event
        return listener.accept_q.popleft()

    def accept_nonblocking(self, listener: NetKernelSocket) -> Optional[NetKernelSocket]:
        """Non-blocking accept (the epoll-server path)."""
        if listener.state != "listening":
            raise InvalidSocketStateError("accept() on a non-listener")
        if listener.accept_q:
            return listener.accept_q.popleft()
        return None

    def send(self, sock: NetKernelSocket, data: bytes, vcpu: int = 0):
        """send(): copy into hugepages, enqueue NQE, return (pipelined)."""
        if sock.state == "write_closed":
            raise InvalidSocketStateError("send after shutdown")
        if sock.state != "connected":
            raise NotConnectedError(f"send on {sock.state} socket")
        if sock.errno:
            raise socket_error_for(sock.errno)
        core = self._core_for(vcpu)
        total = 0
        view = memoryview(data)
        while total < len(data):
            yield from self._admission_gate(NqeOp.SEND)
            chunk = view[total:total + RECV_CREDIT_QUANTUM]
            # Send-buffer backpressure: wait for SEND_RESULT credit.
            while sock.tx_inflight + len(chunk) > sock.tx_cap:
                event = self.sim.event()
                sock._writable_waiters.append(event)
                yield event
                if sock.errno:
                    raise socket_error_for(sock.errno)
            buffer = self.hugepages.try_alloc(len(chunk))
            while buffer is None:
                if sock.errno:
                    # Connection died while we waited for hugepage space
                    # (e.g. NSM quarantine): stop retrying, surface it.
                    raise socket_error_for(sock.errno)
                yield self.sim.timeout(10e-6)  # region full: retry shortly
                buffer = self.hugepages.try_alloc(len(chunk))
            # The view goes straight to the buffer: HugepageBuffer.write
            # materializes it — the single charged guest-boundary copy.
            buffer.write(chunk)
            yield core.execute(self.cost.hugepage_copy_cycles(len(chunk)),
                               "guestlib.send_copy")
            nqe = NQE_POOL.acquire(
                NqeOp.SEND, self.vm_id, sock.home_qset, sock.sock_id,
                data_ptr=buffer.buffer_id, size=len(chunk),
                created_at=self.sim.now)
            yield from self._push(sock.home_qset, nqe, data=True)
            sock.tx_inflight += len(chunk)
            sock.bytes_sent += len(chunk)
            total += len(chunk)
        return total

    def sendto(self, sock: NetKernelSocket, data: bytes,
               dest: Tuple[str, int], vcpu: int = 0):
        """sendto(): one datagram through the NSM's UDP layer."""
        if sock.kind != "dgram":
            raise InvalidSocketStateError("sendto on a stream socket")
        if sock.errno:
            raise socket_error_for(sock.errno)
        core = self._core_for(vcpu)
        yield from self._admission_gate(NqeOp.SENDTO)
        while sock.tx_inflight + len(data) > sock.tx_cap:
            event = self.sim.event()
            sock._writable_waiters.append(event)
            yield event
            if sock.errno:
                raise socket_error_for(sock.errno)
        buffer = self.hugepages.try_alloc(len(data))
        while buffer is None:
            if sock.errno:
                raise socket_error_for(sock.errno)
            yield self.sim.timeout(10e-6)
            buffer = self.hugepages.try_alloc(len(data))
        buffer.write(data)
        yield core.execute(self.cost.hugepage_copy_cycles(len(data)),
                           "guestlib.send_copy")
        nqe = NQE_POOL.acquire(
            NqeOp.SENDTO, self.vm_id, sock.home_qset, sock.sock_id,
            data_ptr=buffer.buffer_id, size=len(data),
            aux={"dest": dest}, created_at=self.sim.now)
        yield from self._push(sock.home_qset, nqe, data=True)
        sock.tx_inflight += len(data)
        sock.bytes_sent += len(data)
        return len(data)

    def recvfrom(self, sock: NetKernelSocket, max_bytes: int, vcpu: int = 0):
        """recvfrom(): one whole datagram and its source address."""
        if sock.kind != "dgram":
            raise InvalidSocketStateError("recvfrom on a stream socket")
        core = self._core_for(vcpu)
        deadline = self._rx_deadline()
        while not sock.rx_dgrams:
            if sock.errno:
                raise socket_error_for(sock.errno)
            event = self.sim.event()
            sock._readable_waiters.append(event)
            try:
                yield from self._wait_bounded(event, deadline, "recvfrom")
            except TimedOutError:
                self._discard_waiter(sock._readable_waiters, event)
                raise
        data, src = sock.rx_dgrams.popleft()
        sock.bytes_received += len(data)
        yield core.execute(self.cost.hugepage_copy_cycles(len(data)),
                           "guestlib.recv_copy")
        return data[:max_bytes], src

    def recv(self, sock: NetKernelSocket, max_bytes: int, vcpu: int = 0):
        """recv(): copy from hugepages to userspace; b"" means EOF."""
        core = self._core_for(vcpu)
        deadline = self._rx_deadline()
        while sock.rx_ready_bytes == 0:
            if sock.peer_closed:
                return b""
            if sock.errno:
                raise socket_error_for(sock.errno)
            if sock.state not in ("connected", "write_closed"):
                raise NotConnectedError(f"recv on {sock.state} socket")
            event = self.sim.event()
            sock._readable_waiters.append(event)
            try:
                yield from self._wait_bounded(event, deadline, "recv")
            except TimedOutError:
                self._discard_waiter(sock._readable_waiters, event)
                raise
        data = self._take_rx(sock, max_bytes)
        yield core.execute(self.cost.hugepage_copy_cycles(len(data)),
                           "guestlib.recv_copy")
        yield from self._maybe_send_credit(sock, len(data))
        return data

    def recv_nonblocking(self, sock: NetKernelSocket, max_bytes: int):
        """Generator: returns immediately-available bytes (b"" if none)."""
        if sock.rx_ready_bytes == 0:
            return b""
        core = self._core_for(sock.home_qset)
        data = self._take_rx(sock, max_bytes)
        yield core.execute(self.cost.hugepage_copy_cycles(len(data)),
                           "guestlib.recv_copy")
        yield from self._maybe_send_credit(sock, len(data))
        return data

    def _take_rx(self, sock: NetKernelSocket, max_bytes: int) -> bytes:
        chunks = sock.rx_chunks
        if not chunks or max_bytes <= 0:
            return b""
        data, offset = chunks[0]
        avail = len(data) - offset
        if avail >= max_bytes or len(chunks) == 1:
            # One chunk satisfies the read: hand it back whole (zero-copy)
            # or slice it exactly once.
            take = min(avail, max_bytes)
            if offset == 0 and take == avail:
                chunks.popleft()
                out = data
            else:
                out = data[offset:offset + take]
                if offset + take >= len(data):
                    chunks.popleft()
                else:
                    chunks[0][1] = offset + take
            sock.rx_ready_bytes -= take
            sock.bytes_received += take
            sock.rx_consumed_uncredited += take
            return out
        # Read spans chunks: gather with one join.
        out = bytearray()
        while chunks and len(out) < max_bytes:
            chunk = chunks[0]
            data, offset = chunk
            take = min(len(data) - offset, max_bytes - len(out))
            out.extend(data[offset:offset + take])
            chunk[1] += take
            if chunk[1] >= len(data):
                chunks.popleft()
        taken = len(out)
        sock.rx_ready_bytes -= taken
        sock.bytes_received += taken
        sock.rx_consumed_uncredited += taken
        return bytes(out)

    def _maybe_send_credit(self, sock: NetKernelSocket, consumed: int):
        if sock.rx_consumed_uncredited >= RECV_CREDIT_QUANTUM and not sock.peer_closed:
            credit = sock.rx_consumed_uncredited
            sock.rx_consumed_uncredited = 0
            nqe = NQE_POOL.acquire(
                NqeOp.RECV_CREDIT, self.vm_id, sock.home_qset,
                sock.sock_id, op_data=credit, created_at=self.sim.now)
            yield from self._push(sock.home_qset, nqe)

    @staticmethod
    def _discard_waiter(waiters, event) -> None:
        """Withdraw a waiter whose wait timed out.  Leaving it behind
        would let a later wake-up pop a stale event for a caller that is
        long gone — on a closed socket that wake is outright wrong."""
        try:
            waiters.remove(event)
        except ValueError:
            pass  # a concurrent _wake already consumed it

    def close(self, sock: NetKernelSocket, vcpu: int = 0):
        """close(): flush pipelined sends, then close the NSM socket."""
        if sock.state == "closed":
            return 0
        # Linearize with the data path: a CLOSE travels the job ring and
        # could overtake SEND NQEs in the send ring, so wait until every
        # pipelined send has been credited by the NSM (the kernel's
        # close-time flush of the socket buffer).  With a deadline armed,
        # stop waiting once it expires — close is best-effort and must
        # not hang on a dead NSM's missing credits.
        deadline = self._rx_deadline()
        while sock.tx_inflight > 0 and not sock.errno:
            event = self.sim.event()
            sock._writable_waiters.append(event)
            try:
                yield from self._wait_bounded(event, deadline, "close drain")
            except TimedOutError:
                self._discard_waiter(sock._writable_waiters, event)
                break
        state_was = sock.state
        sock.state = "closed"
        self.fd_table.pop(sock.fd, None)
        for epoll in list(sock.watchers):
            epoll.unwatch(sock)
        # Every NetKernel socket has an NSM-side twin (created by the
        # SOCKET NQE), so CLOSE always travels to ServiceLib.
        yield from self._call(vcpu, sock, NqeOp.CLOSE,
                              aux={"state": state_was})
        self._by_sock_id.pop(sock.sock_id, None)
        return 0

    def shutdown(self, sock: NetKernelSocket, vcpu: int = 0):
        """shutdown(SHUT_WR): stop sending, keep receiving.

        Waits for pipelined sends to be credited (same linearization as
        close), then asks the NSM to FIN the write side.
        """
        if sock.state != "connected":
            raise NotConnectedError(f"shutdown on {sock.state} socket")
        deadline = self._rx_deadline()
        while sock.tx_inflight > 0 and not sock.errno:
            event = self.sim.event()
            sock._writable_waiters.append(event)
            try:
                yield from self._wait_bounded(event, deadline,
                                              "shutdown drain")
            except TimedOutError:
                self._discard_waiter(sock._writable_waiters, event)
                raise
        response = yield from self._call(vcpu, sock, NqeOp.SHUTDOWN)
        self._check(response)
        sock.state = "write_closed"
        return 0

    def setsockopt(self, sock: NetKernelSocket, option: str, value: int,
                   vcpu: int = 0):
        """setsockopt(): forwarded to the NSM (options are recorded)."""
        response = yield from self._call(
            vcpu, sock, NqeOp.SETSOCKOPT, op_data=value,
            aux={"option": option})
        self._check(response)
        return 0

    def getsockopt(self, sock: NetKernelSocket, option: str, vcpu: int = 0):
        """getsockopt(): read back an option value recorded by the NSM."""
        response = yield from self._call(
            vcpu, sock, NqeOp.GETSOCKOPT, aux={"option": option})
        self._check(response)
        return response.op_data

    # -- epoll ---------------------------------------------------------------------

    def epoll_create(self) -> EpollInstance:
        """A new epoll instance (the nk_poll mechanism of Fig. 5)."""
        epfd = self._alloc_fd()
        epoll = EpollInstance(self, epfd)
        self.epolls[epfd] = epoll
        return epoll

    def epoll_ctl(self, epoll: EpollInstance, sock: NetKernelSocket,
                  mask: int) -> None:
        """Add/modify (mask != 0) or remove (mask == 0) a watch."""
        if mask == 0:
            epoll.unwatch(sock)
        else:
            epoll.watch(sock, mask)

    def epoll_wait(self, epoll: EpollInstance, max_events: int = 64,
                   timeout: Optional[float] = None, vcpu: int = 0):
        """Blocking wait; returns a list of (fd, eventmask) pairs.

        This is the nk_poll() path of Fig. 5: it checks the receive-side
        readiness first and sleeps until the NK device wakes it (or the
        timeout fires).
        """
        deadline = None if timeout is None else self.sim.now + timeout
        while True:
            events = epoll.poll_ready(max_events)
            if events:
                return events
            if deadline is not None:
                # Guard against float rounding: now + (deadline - now) can
                # land a hair below deadline and would re-arm forever.
                remaining = deadline - self.sim.now
                if remaining <= 1e-12:
                    return []
            waiter = self.sim.event()
            epoll._waiters.append(waiter)
            if deadline is None:
                yield waiter
            else:
                yield self.sim.any_of(
                    [waiter, self.sim.timeout(remaining)])

    # -- inbound dispatch ----------------------------------------------------------

    def _poller(self, qset_index: int):
        """Drain completion/receive rings of one queue set (one vCPU lane)."""
        qs = self.device.queue_sets[qset_index]
        core = self._core_for(qset_index)
        control_ring, data_ring = self.device.consume_rings(qs)
        # Reusable drain scratch: steady-state passes allocate no lists.
        scratch: List[Optional[Nqe]] = []
        while True:
            n = control_ring.drain_into(scratch, 64, owner=self)
            n += data_ring.drain_into(scratch, 64, owner=self, start=n)
            if not n:
                yield self.device.wait_for_inbound()
                continue
            cycles = n * self.cost.guestlib_nqe_complete
            yield core.execute(cycles, "guestlib.dispatch")
            for i in range(n):
                nqe = scratch[i]
                scratch[i] = None
                self.nqes_received += 1
                if self.obs is not None:
                    self.obs.on_guest_deliver(nqe)
                retained = self._dispatch(nqe, qset_index)
                # GuestLib is the final consumer of inbound NQEs, except
                # an OP_RESULT claimed by a blocked caller (released by
                # _call once it copies the result out).
                if not retained:
                    NQE_POOL.release(nqe)

    def _dispatch(self, nqe: Nqe, qset_index: int) -> bool:
        """Handle one inbound NQE; True if a waiter took ownership."""
        if nqe.op in (NqeOp.OP_RESULT,):
            event = self._pending.pop(nqe.token, None)
            if event is not None and not event.triggered:
                event.succeed(nqe)
                return True
            # No waiter: a response that lost its race with the op's
            # deadline (the caller timed out and moved on) — drop it.
            return False
        sock = self._by_sock_id.get(nqe.socket_id)
        if sock is None:
            # Response for a closed socket: free any payload it carries.
            if nqe.op == NqeOp.DATA_ARRIVED and nqe.data_ptr:
                buffer = self.hugepages.get(nqe.data_ptr)
                buffer.free()
            return False
        if nqe.op == NqeOp.SEND_RESULT:
            sock.tx_inflight = max(0, sock.tx_inflight - nqe.size)
            if nqe.op_data < 0:
                errno_name = ERRNO_NAMES.get(-nqe.op_data, "EIO")
                if errno_name == "EAGAIN":
                    # The switch shed this pipelined send under overload:
                    # the bytes were not delivered, but the socket is
                    # healthy — poisoning errno would fail every later
                    # send on a transient condition.
                    self.send_results_shed += 1
                else:
                    sock.errno = errno_name
            self._wake(sock._writable_waiters)
            self._notify(sock)
        elif nqe.op == NqeOp.DATA_ARRIVED:
            buffer = self.hugepages.get(nqe.data_ptr)
            if sock.kind == "dgram":
                source = (nqe.aux or {}).get("from")
                sock.rx_dgrams.append((buffer.read(), source))
            else:
                sock.rx_chunks.append([buffer.read(), 0])
                sock.rx_ready_bytes += nqe.size
            buffer.free()
            self._wake(sock._readable_waiters)
            self._notify(sock)
        elif nqe.op == NqeOp.ACCEPT_EVENT:
            child = self._create_accepted(sock, nqe, qset_index)
            sock.accept_q.append(child)
            self._wake(sock._readable_waiters)
            self._notify(sock)
        elif nqe.op == NqeOp.PEER_CLOSED:
            sock.peer_closed = True
            self._wake(sock._readable_waiters)
            self._notify(sock)
        elif nqe.op == NqeOp.ERROR_EVENT:
            sock.errno = ERRNO_NAMES.get(-nqe.op_data, "EIO")
            self._wake(sock._readable_waiters)
            self._wake(sock._writable_waiters)
            self._notify(sock)

    def _create_accepted(self, listener: NetKernelSocket, nqe: Nqe,
                         qset_index: int) -> NetKernelSocket:
        """Materialize an accepted connection and attach it (ACCEPT flow)."""
        fd = self._alloc_fd()
        home = self._accept_rr % len(self.device.queue_sets)
        self._accept_rr += 1
        child = NetKernelSocket(self, fd, home_qset=home)
        child.state = "connected"
        child.remote = (nqe.aux or {}).get("peer")
        child.bound_port = listener.bound_port
        self.fd_table[fd] = child
        self._by_sock_id[child.sock_id] = child
        attach = NQE_POOL.acquire(
            NqeOp.ACCEPT_ATTACH, self.vm_id, child.home_qset,
            child.sock_id, op_data=nqe.op_data, created_at=self.sim.now)
        self.sim.process(self._push(child.home_qset, attach))
        return child

    @staticmethod
    def _wake(waiters: List) -> None:
        pending, waiters[:] = list(waiters), []
        for event in pending:
            if not event.triggered:
                event.succeed()

    def _notify(self, sock: NetKernelSocket) -> None:
        for epoll in list(sock.watchers):
            epoll.notify(sock)
