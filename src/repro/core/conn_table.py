"""CoreEngine's connection table (Fig. 6).

Maps ⟨VM ID, queue set ID, VM socket ID⟩ to ⟨NSM ID, queue set ID, NSM
socket ID⟩ and back.  Entries are inserted when the first NQE of a new
connection is switched, completed when the NSM's response supplies its
socket id, and removed at close.  The table is what makes flexible
multiplexing possible: one NSM serves many VMs, distinguished purely by
tuple.

Indexing
--------

The table is the host-global hot spot of a sharded switch: placement
consults :meth:`nsm_loads` per VM boot, failover walks
:meth:`entries_for_nsm`, migration walks :meth:`entries_for_vm`.  With
a single dict those were all O(total-connections) scans — fine at 1k
VMs, fatal at 100k.  Every owner-scoped query is therefore served from
per-owner buckets maintained incrementally on insert/complete/rebind/
remove:

* ``_vm_entries[vm_id]``  — this VM's live entries, insertion-ordered;
* ``_nsm_entries[nsm_id]`` — entries served by this NSM (pending ones
  included), with a per-entry ``seq`` so :meth:`entries_for_nsm` can
  reproduce the exact global-insertion-order walk the old full scan
  performed (rebinding moves an entry between buckets but must not
  reorder the failover sweep);
* ``_nsm_counts[nsm_id]``  — live entry count, so :meth:`nsm_loads` is
  O(active NSMs), not O(connections).

The buckets are internal: the public API is unchanged, so CoreEngine,
failover, migration, overload and the autoscaler are untouched callers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import NetKernelError

VmTuple = Tuple[int, int, int]    # (vm id, queue set id, vm socket id)
NsmTuple = Tuple[int, int, int]   # (nsm id, queue set id, nsm socket id)


class ConnectionTableError(NetKernelError):
    """Inconsistent connection-table operation (always a bug)."""


class Entry:
    """One bidirectional mapping; nsm_socket_id may be pending (Fig. 6)."""

    __slots__ = ("vm_tuple", "nsm_id", "nsm_queue_set", "nsm_socket_id",
                 "seq")

    def __init__(self, vm_tuple: VmTuple, nsm_id: int, nsm_queue_set: int,
                 nsm_socket_id: Optional[int] = None, seq: int = 0):
        self.vm_tuple = vm_tuple
        self.nsm_id = nsm_id
        self.nsm_queue_set = nsm_queue_set
        self.nsm_socket_id = nsm_socket_id
        self.seq = seq

    @property
    def complete(self) -> bool:
        return self.nsm_socket_id is not None

    @property
    def nsm_tuple(self) -> Optional[NsmTuple]:
        if self.nsm_socket_id is None:
            return None
        return (self.nsm_id, self.nsm_queue_set, self.nsm_socket_id)


class ConnectionTable:
    """Bidirectional VM-tuple ↔ NSM-tuple map with per-owner indexes."""

    def __init__(self):
        self._by_vm: Dict[VmTuple, Entry] = {}
        self._by_nsm: Dict[NsmTuple, Entry] = {}
        #: vm id → this VM's entries (dict-as-ordered-set; entries hash
        #: by identity, and a VM's entries never change VM, so bucket
        #: order is exactly global insertion order filtered to the VM).
        self._vm_entries: Dict[int, Dict[Entry, None]] = {}
        #: nsm id → entries served here, pending ones included.  Rebind
        #: appends to the new bucket, so bucket order alone is not
        #: insertion order — entries_for_nsm restores it via ``seq``.
        self._nsm_entries: Dict[int, Dict[Entry, None]] = {}
        #: nsm id → live entry count (zero-count keys are dropped, so
        #: nsm_loads never reports retired NSMs).
        self._nsm_counts: Dict[int, int] = {}
        self._seq = 0
        self.inserted = 0
        self.removed = 0

    def __len__(self) -> int:
        return len(self._by_vm)

    # -- incremental index maintenance ----------------------------------------

    def _index_add(self, entry: Entry) -> None:
        vm_id = entry.vm_tuple[0]
        self._vm_entries.setdefault(vm_id, {})[entry] = None
        self._nsm_entries.setdefault(entry.nsm_id, {})[entry] = None
        self._nsm_counts[entry.nsm_id] = \
            self._nsm_counts.get(entry.nsm_id, 0) + 1

    def _index_drop_nsm(self, entry: Entry) -> None:
        bucket = self._nsm_entries.get(entry.nsm_id)
        if bucket is not None:
            bucket.pop(entry, None)
            if not bucket:
                del self._nsm_entries[entry.nsm_id]
        count = self._nsm_counts.get(entry.nsm_id, 0) - 1
        if count > 0:
            self._nsm_counts[entry.nsm_id] = count
        else:
            self._nsm_counts.pop(entry.nsm_id, None)

    # -- Fig. 6 lifecycle ------------------------------------------------------

    def insert(self, vm_tuple: VmTuple, nsm_id: int,
               nsm_queue_set: int) -> Entry:
        """Step (1)-(2) of Fig. 6: new entry with a pending NSM socket id."""
        if vm_tuple in self._by_vm:
            raise ConnectionTableError(f"duplicate VM tuple {vm_tuple}")
        entry = Entry(vm_tuple, nsm_id, nsm_queue_set, seq=self._seq)
        self._seq += 1
        self._by_vm[vm_tuple] = entry
        self._index_add(entry)
        self.inserted += 1
        return entry

    def complete(self, vm_tuple: VmTuple, nsm_socket_id: int) -> Entry:
        """Step (4) of Fig. 6: fill in the NSM socket id from the response."""
        entry = self._by_vm.get(vm_tuple)
        if entry is None:
            raise ConnectionTableError(f"no entry for VM tuple {vm_tuple}")
        if entry.complete:
            if entry.nsm_socket_id != nsm_socket_id:
                raise ConnectionTableError(
                    f"conflicting NSM socket for {vm_tuple}: "
                    f"{entry.nsm_socket_id} vs {nsm_socket_id}")
            return entry
        entry.nsm_socket_id = nsm_socket_id
        nsm_tuple = entry.nsm_tuple
        holder = self._by_nsm.get(nsm_tuple)
        if holder is not None and holder is not entry:
            # Two live connections claiming one NSM socket would alias
            # silently (last writer wins); that is always a bug.
            entry.nsm_socket_id = None
            raise ConnectionTableError(
                f"NSM tuple {nsm_tuple} already bound to VM tuple "
                f"{holder.vm_tuple}; refusing to alias it for {vm_tuple}")
        self._by_nsm[nsm_tuple] = entry
        return entry

    def lookup_vm(self, vm_tuple: VmTuple) -> Optional[Entry]:
        return self._by_vm.get(vm_tuple)

    def lookup_nsm(self, nsm_tuple: NsmTuple) -> Optional[Entry]:
        return self._by_nsm.get(nsm_tuple)

    def remove_vm(self, vm_tuple: VmTuple) -> None:
        entry = self._by_vm.pop(vm_tuple, None)
        if entry is None:
            return
        if entry.nsm_tuple is not None:
            self._by_nsm.pop(entry.nsm_tuple, None)
        bucket = self._vm_entries.get(vm_tuple[0])
        if bucket is not None:
            bucket.pop(entry, None)
            if not bucket:
                del self._vm_entries[vm_tuple[0]]
        self._index_drop_nsm(entry)
        self.removed += 1

    # -- owner-scoped queries (O(per-owner), never full scans) -----------------

    def entries_for_vm(self, vm_id: int) -> List[Entry]:
        """All live entries belonging to one VM (for teardown/migration)."""
        return list(self._vm_entries.get(vm_id, ()))

    def entries_for_nsm(self, nsm_id: int) -> List[Entry]:
        """All live entries served by one NSM (for quarantine/failover),
        including entries whose NSM socket id is still pending, in global
        insertion order (the order the old full scan walked them in)."""
        bucket = self._nsm_entries.get(nsm_id)
        if bucket is None:
            return []
        return sorted(bucket, key=lambda entry: entry.seq)

    def rebind_vm(self, vm_id: int, new_nsm_id: int,
                  queue_set_for) -> int:
        """Point every one of ``vm_id``'s entries at a new NSM (live
        migration).  ``queue_set_for(vm_tuple)`` supplies the queue set
        on the new NSM.  Returns how many entries were rebound."""
        rebound = 0
        for entry in self.entries_for_vm(vm_id):
            if entry.nsm_tuple is not None:
                self._by_nsm.pop(entry.nsm_tuple, None)
            self._index_drop_nsm(entry)
            entry.nsm_id = new_nsm_id
            entry.nsm_queue_set = queue_set_for(entry.vm_tuple)
            self._nsm_entries.setdefault(new_nsm_id, {})[entry] = None
            self._nsm_counts[new_nsm_id] = \
                self._nsm_counts.get(new_nsm_id, 0) + 1
            if entry.nsm_tuple is not None:
                holder = self._by_nsm.get(entry.nsm_tuple)
                if holder is not None and holder is not entry:
                    raise ConnectionTableError(
                        f"rebind of VM {vm_id} would alias NSM tuple "
                        f"{entry.nsm_tuple} already bound to VM tuple "
                        f"{holder.vm_tuple}")
                self._by_nsm[entry.nsm_tuple] = entry
            rebound += 1
        return rebound

    def vms_for_nsm(self, nsm_id: int) -> List[int]:
        """Sorted ids of VMs with at least one live entry on this NSM
        (the autoscaler's drain list when retiring an NSM)."""
        return sorted({entry.vm_tuple[0]
                       for entry in self._nsm_entries.get(nsm_id, ())})

    def nsm_loads(self) -> Dict[int, int]:
        """Live connection count per NSM id (the load-balancing signal).
        Maintained incrementally: O(NSMs with live entries), not
        O(connections)."""
        return dict(self._nsm_counts)
