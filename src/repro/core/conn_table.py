"""CoreEngine's connection table (Fig. 6).

Maps ⟨VM ID, queue set ID, VM socket ID⟩ to ⟨NSM ID, queue set ID, NSM
socket ID⟩ and back.  Entries are inserted when the first NQE of a new
connection is switched, completed when the NSM's response supplies its
socket id, and removed at close.  The table is what makes flexible
multiplexing possible: one NSM serves many VMs, distinguished purely by
tuple.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import NetKernelError

VmTuple = Tuple[int, int, int]    # (vm id, queue set id, vm socket id)
NsmTuple = Tuple[int, int, int]   # (nsm id, queue set id, nsm socket id)


class ConnectionTableError(NetKernelError):
    """Inconsistent connection-table operation (always a bug)."""


class Entry:
    """One bidirectional mapping; nsm_socket_id may be pending (Fig. 6)."""

    __slots__ = ("vm_tuple", "nsm_id", "nsm_queue_set", "nsm_socket_id")

    def __init__(self, vm_tuple: VmTuple, nsm_id: int, nsm_queue_set: int,
                 nsm_socket_id: Optional[int] = None):
        self.vm_tuple = vm_tuple
        self.nsm_id = nsm_id
        self.nsm_queue_set = nsm_queue_set
        self.nsm_socket_id = nsm_socket_id

    @property
    def complete(self) -> bool:
        return self.nsm_socket_id is not None

    @property
    def nsm_tuple(self) -> Optional[NsmTuple]:
        if self.nsm_socket_id is None:
            return None
        return (self.nsm_id, self.nsm_queue_set, self.nsm_socket_id)


class ConnectionTable:
    """Bidirectional VM-tuple ↔ NSM-tuple map."""

    def __init__(self):
        self._by_vm: Dict[VmTuple, Entry] = {}
        self._by_nsm: Dict[NsmTuple, Entry] = {}
        self.inserted = 0
        self.removed = 0

    def __len__(self) -> int:
        return len(self._by_vm)

    def insert(self, vm_tuple: VmTuple, nsm_id: int,
               nsm_queue_set: int) -> Entry:
        """Step (1)-(2) of Fig. 6: new entry with a pending NSM socket id."""
        if vm_tuple in self._by_vm:
            raise ConnectionTableError(f"duplicate VM tuple {vm_tuple}")
        entry = Entry(vm_tuple, nsm_id, nsm_queue_set)
        self._by_vm[vm_tuple] = entry
        self.inserted += 1
        return entry

    def complete(self, vm_tuple: VmTuple, nsm_socket_id: int) -> Entry:
        """Step (4) of Fig. 6: fill in the NSM socket id from the response."""
        entry = self._by_vm.get(vm_tuple)
        if entry is None:
            raise ConnectionTableError(f"no entry for VM tuple {vm_tuple}")
        if entry.complete:
            if entry.nsm_socket_id != nsm_socket_id:
                raise ConnectionTableError(
                    f"conflicting NSM socket for {vm_tuple}: "
                    f"{entry.nsm_socket_id} vs {nsm_socket_id}")
            return entry
        entry.nsm_socket_id = nsm_socket_id
        self._by_nsm[entry.nsm_tuple] = entry
        return entry

    def lookup_vm(self, vm_tuple: VmTuple) -> Optional[Entry]:
        return self._by_vm.get(vm_tuple)

    def lookup_nsm(self, nsm_tuple: NsmTuple) -> Optional[Entry]:
        return self._by_nsm.get(nsm_tuple)

    def remove_vm(self, vm_tuple: VmTuple) -> None:
        entry = self._by_vm.pop(vm_tuple, None)
        if entry is None:
            return
        if entry.nsm_tuple is not None:
            self._by_nsm.pop(entry.nsm_tuple, None)
        self.removed += 1

    def entries_for_vm(self, vm_id: int):
        """All live entries belonging to one VM (for teardown/migration)."""
        return [e for t, e in self._by_vm.items() if t[0] == vm_id]

    def entries_for_nsm(self, nsm_id: int):
        """All live entries served by one NSM (for quarantine/failover),
        including entries whose NSM socket id is still pending."""
        return [e for e in self._by_vm.values() if e.nsm_id == nsm_id]

    def rebind_vm(self, vm_id: int, new_nsm_id: int,
                  queue_set_for) -> int:
        """Point every one of ``vm_id``'s entries at a new NSM (live
        migration).  ``queue_set_for(vm_tuple)`` supplies the queue set
        on the new NSM.  Returns how many entries were rebound."""
        rebound = 0
        for entry in self.entries_for_vm(vm_id):
            if entry.nsm_tuple is not None:
                self._by_nsm.pop(entry.nsm_tuple, None)
            entry.nsm_id = new_nsm_id
            entry.nsm_queue_set = queue_set_for(entry.vm_tuple)
            if entry.nsm_tuple is not None:
                self._by_nsm[entry.nsm_tuple] = entry
            rebound += 1
        return rebound

    def vms_for_nsm(self, nsm_id: int):
        """Sorted ids of VMs with at least one live entry on this NSM
        (the autoscaler's drain list when retiring an NSM)."""
        return sorted({e.vm_tuple[0] for e in self._by_vm.values()
                       if e.nsm_id == nsm_id})

    def nsm_loads(self) -> Dict[int, int]:
        """Live connection count per NSM id (the load-balancing signal)."""
        loads: Dict[int, int] = {}
        for entry in self._by_vm.values():
            loads[entry.nsm_id] = loads.get(entry.nsm_id, 0) + 1
        return loads
