"""NSM autoscaler: fleet-scale elasticity on the AG-trace load signal.

The paper's §7.3 multiplexing argument (">40% of cores saved") assumes
someone right-sizes the NSM population as offered load moves.  This
module is that someone: a control loop watches a load signal (typically
the per-minute :func:`repro.trace.ag_trace.aggregate` of an AG fleet)
plus per-NSM live connection counts, decides how many NSMs the host
should run, and converges to it by spawning NSMs, retiring drained ones,
and rebalancing VMs with the existing live-migration path
(``host.migrate_vm`` — park → drain → export/import → rebind → resume,
so tenant connections survive every move).

The execution model follows the Aether-V job-queue pattern (SNIPPETS.md
§2): the control loop only *submits* jobs; a single worker process pulls
them FIFO and runs them one at a time, so provisioning and migrations
are serialised — at most one VM is ever mid-migration because of the
autoscaler, and a retire never races a spawn.  Jobs re-validate their
target when they finally run (the NSM they were queued against may have
been quarantined meanwhile) and migration failures are counted, not
fatal: a crash mid-rebalance degrades to the PR 3 failover path.

Invariants (asserted by the chaos harness and tests/test_autoscaler.py):
no VM is ever left assigned to an inactive NSM at a job boundary, TCP
migration forwards all reclaim once their connections die, and the NQE
pool returns to balance after the run.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError, NetKernelError

LoadSignal = Union[Sequence[float], Callable[[int], float]]


class AutoscalePolicy:
    """Sizing rule: offered load (normalized RPS, AG units) → NSM count.

    ``nsm_capacity`` is one NSM's worth of normalized load (an AG's
    provisioned peak is 100, so the default says one NSM absorbs three
    fully-bursting AGs).  ``headroom`` over-provisions against the next
    interval's burst; min/max clamp the fleet.
    """

    def __init__(self, nsm_capacity: float = 300.0, headroom: float = 1.2,
                 min_nsms: int = 1, max_nsms: int = 8,
                 rebalance_spread: int = 2):
        if nsm_capacity <= 0:
            raise ConfigurationError(
                f"nsm_capacity must be positive: {nsm_capacity}")
        if not 1 <= min_nsms <= max_nsms:
            raise ConfigurationError(
                f"need 1 <= min_nsms <= max_nsms: {min_nsms}..{max_nsms}")
        self.nsm_capacity = nsm_capacity
        self.headroom = headroom
        self.min_nsms = min_nsms
        self.max_nsms = max_nsms
        #: Rebalance when the VM-count gap between the most- and
        #: least-loaded NSM reaches this spread.
        self.rebalance_spread = max(2, rebalance_spread)

    def desired_nsms(self, offered_load: float) -> int:
        raw = math.ceil(max(0.0, offered_load) * self.headroom
                        / self.nsm_capacity)
        return max(self.min_nsms, min(self.max_nsms, raw))


class _Job:
    __slots__ = ("kind", "target", "submitted_at")

    def __init__(self, kind: str, target=None, submitted_at: float = 0.0):
        self.kind = kind          # "spawn" | "retire" | "migrate"
        self.target = target
        self.submitted_at = submitted_at


class NsmAutoscaler:
    """The control loop + serialized job worker (see module docstring)."""

    def __init__(self, sim, host, load_signal: LoadSignal,
                 interval_sec: float = 60.0,
                 policy: Optional[AutoscalePolicy] = None,
                 stack: str = "kernel", nsm_vcpus: int = 1,
                 provision_delay_sec: float = 2e-3,
                 name_prefix: str = "auto-nsm"):
        if interval_sec <= 0:
            raise ConfigurationError(
                f"interval must be positive: {interval_sec}")
        self.sim = sim
        self.host = host
        self.policy = policy or AutoscalePolicy()
        self.interval = interval_sec
        self.stack = stack
        self.nsm_vcpus = nsm_vcpus
        self.provision_delay = provision_delay_sec
        self.name_prefix = name_prefix
        self._load_signal = load_signal

        #: NSMs this autoscaler spawned (name → module).  Only managed
        #: NSMs are ever retired; statically provisioned ones are a
        #: floor the operator owns.
        self.managed: Dict[str, object] = {}
        #: Managed NSMs queued or mid-drain for retirement.
        self._draining: set = set()
        #: NSM ids whose crash we have already scheduled a reap for.
        self._reaped: set = set()
        #: Stacks of retired NSMs: their engines stay fabric endpoints
        #: and may legitimately hold one-hop forwards for live
        #: connections, so leak checks must keep seeing them.
        self.retired_stacks: List[object] = []

        self.counters = {
            "ticks": 0, "spawned": 0, "retired": 0, "retire_aborted": 0,
            "migrations": 0, "migration_failures": 0, "jobs": 0,
        }
        #: Audit log: dicts of (t, action, detail), in submission order.
        self.events: List[dict] = []
        #: Invariant breaches seen at job boundaries (must stay empty).
        self.violations: List[str] = []

        self._seq = 0
        self._jobs = deque()
        self._job_waiter = sim.event()
        self._running = True
        self._tick = 0
        self._worker = sim.process(self._worker_loop())
        #: The control loop rides Simulator.every: one decision per
        #: interval, stopping cleanly when the autoscaler stops.
        self._control = sim.every(interval_sec, self._control_tick)

    # -- control loop ---------------------------------------------------------

    def stop(self) -> None:
        """Stop deciding and stop the worker after the current job."""
        self._running = False
        if not self._job_waiter.triggered:
            self._job_waiter.succeed()

    def load_at(self, tick: int) -> float:
        signal = self._load_signal
        if callable(signal):
            return float(signal(tick))
        if not len(signal):
            return 0.0
        return float(signal[min(tick, len(signal) - 1)])

    def _control_tick(self):
        if not self._running:
            return False  # ends the Simulator.every series
        engine = self.host.coreengine
        tick = self._tick
        self._tick += 1
        self.counters["ticks"] += 1
        load = self.load_at(tick)
        desired = self.policy.desired_nsms(load)
        # Crashed NSMs (health monitor quarantined them) get their stack
        # state reaped so forwarding entries pointing at them reclaim.
        for nsm_id in sorted(set(engine.quarantined) - self._reaped):
            self._reaped.add(nsm_id)
            self._submit(_Job("reap", target=nsm_id))
        active_ids = set(engine._active_nsm_ids())
        draining_ids = {nsm.nsm_id for name, nsm in self.managed.items()
                        if name in self._draining}
        serving = sorted(active_ids - draining_ids)
        self._log("tick", f"load={load:.1f} desired={desired} "
                          f"serving={len(serving)}")

        if desired > len(serving):
            for _ in range(desired - len(serving)):
                self._submit(_Job("spawn"))
        elif desired < len(serving):
            for name in self._retire_candidates(len(serving) - desired):
                self._draining.add(name)
                self._submit(_Job("retire", target=name))
        self._maybe_rebalance(serving)
        return None

    def _retire_candidates(self, count: int) -> List[str]:
        """Managed, non-draining NSMs with the fewest live connections
        (the cheapest drains first)."""
        engine = self.host.coreengine
        loads = engine.table.nsm_loads()
        candidates = [
            (loads.get(nsm.nsm_id, 0), name)
            for name, nsm in sorted(self.managed.items())
            if name not in self._draining
            and name in self.host.nsms
        ]
        candidates.sort()
        return [name for _load, name in candidates[:count]]

    def _maybe_rebalance(self, serving: List[int]) -> None:
        """One migrate job per tick, most- → least-crowded NSM, once the
        VM-count spread reaches the policy threshold."""
        if len(serving) < 2:
            return
        engine = self.host.coreengine
        counts = {nsm_id: 0 for nsm_id in serving}
        by_nsm: Dict[int, List[int]] = {nsm_id: [] for nsm_id in serving}
        for vm_id, nsm_id in sorted(engine.vm_to_nsm.items()):
            if nsm_id in counts:
                counts[nsm_id] += 1
                by_nsm[nsm_id].append(vm_id)
        most = max(serving, key=lambda n: (counts[n], n))
        least = min(serving, key=lambda n: (counts[n], -n))
        if counts[most] - counts[least] < self.policy.rebalance_spread:
            return
        vm_id = by_nsm[most][0]
        self._submit(_Job("migrate", target=(vm_id, least)))

    # -- job queue (Aether-V: FIFO submission, serialized execution) ----------

    def _submit(self, job: _Job) -> None:
        job.submitted_at = self.sim.now
        self._jobs.append(job)
        self._log("submit", job.kind)
        if not self._job_waiter.triggered:
            self._job_waiter.succeed()
            self._job_waiter = self.sim.event()

    def _worker_loop(self):
        while True:
            waiter = self._job_waiter
            while self._jobs:
                job = self._jobs.popleft()
                self.counters["jobs"] += 1
                yield from self._execute(job)
                self._check_assignments(after=job.kind)
            if not self._running:
                return
            if waiter.triggered:
                continue  # submitted while we were executing
            yield waiter

    def _execute(self, job: _Job):
        if job.kind == "spawn":
            yield from self._do_spawn()
        elif job.kind == "retire":
            yield from self._do_retire(job.target)
        elif job.kind == "migrate":
            vm_id, target_nsm_id = job.target
            yield from self._do_migrate(vm_id, target_nsm_id,
                                        reason="rebalance")
        elif job.kind == "reap":
            self._do_reap(job.target)

    def _do_spawn(self):
        # Model the provisioning latency (image pull, boot, register).
        yield self.sim.timeout(self.provision_delay)
        name = f"{self.name_prefix}{self._seq}"
        self._seq += 1
        # Shard-aware scale-out: on a sharded switch the new NSM homes
        # on the emptiest shard, so the policy grows *shards* — shard-
        # local placement (assign_vm_auto's same-shard preference) then
        # steers new VMs there without cross-shard handoffs.  The shard
        # is chosen when the job runs, not when it was queued: the fleet
        # may have changed shape while the job waited.
        engine = self.host.coreengine
        shard = engine.emptiest_shard() \
            if hasattr(engine, "emptiest_shard") else None
        nsm = self.host.add_nsm(name, vcpus=self.nsm_vcpus,
                                stack=self.stack, shard=shard)
        self.managed[name] = nsm
        self.counters["spawned"] += 1
        self._log("spawn",
                  name if shard is None else f"{name}@shard{shard}")
        self._notify("spawn")

    def _do_retire(self, name: str):
        nsm = self.host.nsms.get(name)
        if nsm is None:
            self._draining.discard(name)
            self.managed.pop(name, None)
            return
        engine = self.host.coreengine
        reg = engine._nsm_registration(nsm.nsm_id)
        if reg is None or not reg.active:
            # Quarantined (or already gone) while the job was queued:
            # failover moved its VMs; reap the husk's stack state so
            # forwarders pointing at it reclaim, then drop it.
            reap_crashed_stack(nsm.stack)
            self.host.remove_nsm(nsm)
            self._finish_retire(name, nsm)
            return
        # Drain: move every assigned VM to the least-loaded survivor.
        for vm_id in sorted(vm for vm, assigned
                            in engine.vm_to_nsm.items()
                            if assigned == nsm.nsm_id):
            target_id = engine._least_loaded_nsm(exclude=nsm.nsm_id)
            if target_id is None:
                # Nowhere to drain to — abort, keep serving.
                self._draining.discard(name)
                self.counters["retire_aborted"] += 1
                self._log("retire-aborted", name)
                return
            yield from self._do_migrate(vm_id, target_id, reason="drain")
        if any(assigned == nsm.nsm_id
               for assigned in engine.vm_to_nsm.values()):
            # A migration failed and the VM is still here; try again on
            # a later tick rather than yanking a serving NSM.
            self._draining.discard(name)
            self.counters["retire_aborted"] += 1
            self._log("retire-aborted", name)
            return
        self.host.remove_nsm(nsm)
        self._finish_retire(name, nsm)

    def _finish_retire(self, name: str, nsm) -> None:
        self.retired_stacks.append(nsm.stack)
        self.managed.pop(name, None)
        self._draining.discard(name)
        self.counters["retired"] += 1
        self._log("retire", name)
        self._notify("retire")

    def _do_reap(self, nsm_id: int) -> None:
        """A crashed NSM was quarantined: reclaim its stack state (the
        process is dead; its TCP connections and listeners are gone, and
        engines still forwarding toward it must stop) and drop it from
        the host.  Failover already rebound its VMs."""
        nsm = next((n for n in self.host.nsms.values()
                    if n.nsm_id == nsm_id), None)
        if nsm is None:
            return
        stats = reap_crashed_stack(nsm.stack)
        self.host.remove_nsm(nsm)
        self.retired_stacks.append(nsm.stack)
        self.managed.pop(nsm.name, None)
        self._draining.discard(nsm.name)
        self._log("reap", f"{nsm.name}: {stats['conns']} conns, "
                          f"{stats['listeners']} listeners")
        self._notify("reap")

    def _do_migrate(self, vm_id: int, target_nsm_id: int, reason: str):
        engine = self.host.coreengine
        vm = next((v for v in self.host.vms.values()
                   if v.vm_id == vm_id), None)
        target = next((n for n in self.host.nsms.values()
                       if n.nsm_id == target_nsm_id), None)
        if vm is None or target is None:
            return
        target_reg = engine._nsm_registration(target_nsm_id)
        if target_reg is None or not target_reg.active:
            # Never migrate toward a dead NSM — the job is stale.
            self.counters["migration_failures"] += 1
            self._log("migrate-stale", f"vm{vm_id}->nsm{target_nsm_id}")
            return
        if engine.vm_to_nsm.get(vm_id) == target_nsm_id:
            return  # failover already moved it here
        try:
            yield from self.host.migrate_vm(vm, target)
        except NetKernelError as exc:
            # Source/target died mid-move (chaos): the engine already
            # unparked the VM; failover owns recovery from here.
            self.counters["migration_failures"] += 1
            self._log("migrate-failed",
                      f"vm{vm_id}->nsm{target_nsm_id}: {exc}")
            return
        self.counters["migrations"] += 1
        self._log("migrate", f"vm{vm_id}->nsm{target_nsm_id} ({reason})")
        self._notify("migrate")

    # -- invariants & audit ----------------------------------------------------

    def _check_assignments(self, after: str) -> None:
        for vm_id, nsm_id in assignment_violations(self.host):
            self.violations.append(
                f"t={self.sim.now:.6f} after {after}: VM {vm_id} "
                f"assigned to inactive NSM {nsm_id}")

    def _log(self, action: str, detail: str = "") -> None:
        self.events.append({"t": round(self.sim.now, 9),
                            "action": action, "detail": detail})

    def _notify(self, action: str) -> None:
        obs = getattr(self.host, "obs", None)
        if obs is not None:
            obs.on_autoscale(action)

    def report(self) -> dict:
        """Counters + fleet shape, JSON-ready.  On a sharded switch the
        report carries the per-shard load view (active NSMs, homed VMs,
        live connections per shard) the spawn placement steers by."""
        engine = self.host.coreengine
        shard_loads = engine.shard_loads() \
            if hasattr(engine, "shard_loads") else None
        return {
            "counters": dict(self.counters),
            "managed": sorted(self.managed),
            "draining": sorted(self._draining),
            "active_nsms": len(engine._active_nsm_ids()),
            "shard_loads": shard_loads,
            "violations": list(self.violations),
        }


# -- invariant helpers (shared by the chaos harness and the tests) -----------


def assignment_violations(host) -> List[tuple]:
    """(vm_id, nsm_id) pairs where a VM points at a missing or inactive
    NSM.  Empty at every autoscaler job boundary, or something is wrong."""
    engine = host.coreengine
    bad = []
    for vm_id, nsm_id in sorted(engine.vm_to_nsm.items()):
        reg = engine._nsm_registration(nsm_id)
        if reg is None or not reg.active:
            bad.append((vm_id, nsm_id))
    return bad


def reap_crashed_stack(stack) -> dict:
    """Tear down a dead NSM's TCP engine state in place.

    The process died silently, so no RSTs are emitted: connections are
    destroyed directly (engines holding migration forwards toward them
    reclaim those entries, the PR 6 fix) and listeners are closed (their
    port forwarders reclaim likewise).  Peers discover the death through
    their own timeouts/resets, exactly as with a real host crash.
    """
    engine = getattr(stack, "engine", None)
    if engine is None:
        return {"conns": 0, "listeners": 0}
    conns = list(engine._conns.values())
    for conn in conns:
        engine._destroy(conn)
    listeners = list(engine._listeners.values())
    for conn in listeners:
        engine.close(conn)
    return {"conns": len(conns), "listeners": len(listeners)}


def _tcp_engines(host, extra_stacks=()):
    stacks = [nsm.stack for nsm in host.nsms.values()]
    stacks.extend(extra_stacks)
    for stack in stacks:
        engine = getattr(stack, "engine", None)
        if engine is not None:
            yield engine


def forward_entry_count(host, extra_stacks=()) -> int:
    """Total live-migration forwarding entries across every TCP engine
    the host has ever run — current NSMs plus retired ones (their
    engines remain fabric endpoints).  Zero once all forwarded
    connections and listeners have died (the PR 6 reclamation fix);
    transiently nonzero while a forwarded connection is still alive
    (that is routing state, not a leak — see forward_leak_count)."""
    return sum(len(engine._forwards) + len(engine._port_forwards)
               for engine in _tcp_engines(host, extra_stacks))


def forward_leak_count(host, extra_stacks=()) -> int:
    """Dangling forwarding entries: ones whose target engine no longer
    owns the connection (or listener), so no teardown will ever reclaim
    them.  This is exactly the class of entry the PR 6 reclamation fix
    eliminates — it must be zero at all times.  A chained forward
    (target itself forwarding) also counts: collapse keeps chains at
    one hop, so seeing one is a regression."""
    leaked = 0
    for engine in _tcp_engines(host, extra_stacks):
        for key, target in engine._forwards.items():
            if key not in target._conns:
                leaked += 1
        for port, target in engine._port_forwards.items():
            if port not in target._listeners:
                leaked += 1
    return leaked
