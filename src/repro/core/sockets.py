"""The BSD socket facade applications program against.

The whole point of NetKernel is that applications keep the BSD socket API
(§1): the same application coroutine runs unmodified against

* :class:`NetKernelSocketApi` — backed by GuestLib (socket calls become
  NQEs served by an NSM), or
* ``BaselineSocketApi`` (:mod:`repro.baseline.sockets`) — backed by a
  network stack inside the VM, today's architecture.

All potentially blocking calls are generator coroutines (``yield from``
them inside an application process).  Constants EPOLLIN/EPOLLOUT mirror
the kernel's.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.guestlib import (
    EPOLLIN,
    EPOLLOUT,
    EpollInstance,
    GuestLib,
    NetKernelSocket,
)

__all__ = ["SocketApi", "NetKernelSocketApi", "EPOLLIN", "EPOLLOUT"]


class SocketApi:
    """Abstract BSD socket surface (Table 1's operations)."""

    def socket(self, vcpu: int = 0, sock_type: str = "stream"):
        raise NotImplementedError

    def bind(self, sock, port: int, vcpu: int = 0):
        raise NotImplementedError

    def sendto(self, sock, data: bytes, dest: Tuple[str, int],
               vcpu: int = 0):
        raise NotImplementedError

    def recvfrom(self, sock, max_bytes: int, vcpu: int = 0):
        raise NotImplementedError

    def listen(self, sock, backlog: int = 128, vcpu: int = 0):
        raise NotImplementedError

    def connect(self, sock, remote: Tuple[str, int], vcpu: int = 0):
        raise NotImplementedError

    def accept(self, listener, vcpu: int = 0):
        raise NotImplementedError

    def accept_nonblocking(self, listener):
        raise NotImplementedError

    def send(self, sock, data: bytes, vcpu: int = 0):
        raise NotImplementedError

    def recv(self, sock, max_bytes: int, vcpu: int = 0):
        raise NotImplementedError

    def recv_nonblocking(self, sock, max_bytes: int):
        raise NotImplementedError

    def close(self, sock, vcpu: int = 0):
        raise NotImplementedError

    def setsockopt(self, sock, option: str, value: int, vcpu: int = 0):
        raise NotImplementedError

    def getsockopt(self, sock, option: str, vcpu: int = 0):
        raise NotImplementedError

    def shutdown(self, sock, vcpu: int = 0):
        raise NotImplementedError

    def epoll_create(self):
        raise NotImplementedError

    def epoll_ctl(self, epoll, sock, mask: int) -> None:
        raise NotImplementedError

    def epoll_wait(self, epoll, max_events: int = 64,
                   timeout: Optional[float] = None, vcpu: int = 0):
        raise NotImplementedError


class NetKernelSocketApi(SocketApi):
    """The facade over GuestLib: applications never see NQEs."""

    def __init__(self, guestlib: GuestLib):
        self.guestlib = guestlib

    def socket(self, vcpu: int = 0, sock_type: str = "stream"):
        return (yield from self.guestlib.socket(vcpu, sock_type))

    def bind(self, sock: NetKernelSocket, port: int, vcpu: int = 0):
        return (yield from self.guestlib.bind(sock, port, vcpu))

    def listen(self, sock: NetKernelSocket, backlog: int = 128,
               vcpu: int = 0):
        return (yield from self.guestlib.listen(sock, backlog, vcpu))

    def connect(self, sock: NetKernelSocket, remote: Tuple[str, int],
                vcpu: int = 0):
        return (yield from self.guestlib.connect(sock, remote, vcpu))

    def accept(self, listener: NetKernelSocket, vcpu: int = 0):
        return (yield from self.guestlib.accept(listener, vcpu))

    def accept_nonblocking(self, listener: NetKernelSocket):
        return self.guestlib.accept_nonblocking(listener)

    def send(self, sock: NetKernelSocket, data: bytes, vcpu: int = 0):
        return (yield from self.guestlib.send(sock, data, vcpu))

    def recv(self, sock: NetKernelSocket, max_bytes: int, vcpu: int = 0):
        return (yield from self.guestlib.recv(sock, max_bytes, vcpu))

    def sendto(self, sock: NetKernelSocket, data: bytes,
               dest: Tuple[str, int], vcpu: int = 0):
        return (yield from self.guestlib.sendto(sock, data, dest, vcpu))

    def recvfrom(self, sock: NetKernelSocket, max_bytes: int, vcpu: int = 0):
        return (yield from self.guestlib.recvfrom(sock, max_bytes, vcpu))

    def recv_nonblocking(self, sock: NetKernelSocket, max_bytes: int):
        return (yield from self.guestlib.recv_nonblocking(sock, max_bytes))

    def close(self, sock: NetKernelSocket, vcpu: int = 0):
        return (yield from self.guestlib.close(sock, vcpu))

    def setsockopt(self, sock: NetKernelSocket, option: str, value: int,
                   vcpu: int = 0):
        return (yield from self.guestlib.setsockopt(sock, option, value, vcpu))

    def getsockopt(self, sock: NetKernelSocket, option: str, vcpu: int = 0):
        return (yield from self.guestlib.getsockopt(sock, option, vcpu))

    def shutdown(self, sock: NetKernelSocket, vcpu: int = 0):
        return (yield from self.guestlib.shutdown(sock, vcpu))

    def epoll_create(self) -> EpollInstance:
        return self.guestlib.epoll_create()

    def epoll_ctl(self, epoll: EpollInstance, sock: NetKernelSocket,
                  mask: int) -> None:
        self.guestlib.epoll_ctl(epoll, sock, mask)

    def epoll_wait(self, epoll: EpollInstance, max_events: int = 64,
                   timeout: Optional[float] = None, vcpu: int = 0):
        return (yield from self.guestlib.epoll_wait(epoll, max_events,
                                                    timeout, vcpu))
