"""CoreEngine's control-plane wire protocol (§5).

"One thread listens on a pre-defined port to handle NK device
(de)allocation requests, namely 8-byte network messages of the tuples
⟨ce_op, ce_data⟩.  When a VM (or NSM) starts (or terminates), it sends a
request to CoreEngine for registering (or deregistering) a NK device.
If the request is successfully handled, CoreEngine responds in the same
message format.  Otherwise, an error code is returned."

This module implements that exact 8-byte format (2-byte op, 2-byte
flags/queue-set count, 4-byte data) and a dispatcher that drives the
CoreEngine registration API, so the control plane is exercised through
its wire representation and not only through direct method calls.
"""

from __future__ import annotations

import enum
import struct
from typing import Tuple

from repro.core.coreengine import CoreEngine
from repro.errors import ConfigurationError

#: The §5 message size.
CONTROL_MESSAGE_SIZE = 8

_STRUCT = struct.Struct("<HHi")
assert _STRUCT.size == CONTROL_MESSAGE_SIZE


class CeOp(enum.IntEnum):
    """Control operations (the ce_op field)."""

    REGISTER_VM = 1
    REGISTER_NSM = 2
    DEREGISTER = 3
    ASSIGN_VM = 4
    # Responses.
    OK = 100
    ERROR = 101


class CeError(enum.IntEnum):
    """Error codes carried in ce_data of ERROR responses."""

    BAD_REQUEST = 1
    UNKNOWN_ID = 2
    NO_NSM = 3


def encode(op: CeOp, arg: int = 0, data: int = 0) -> bytes:
    """Pack one ⟨ce_op, ce_data⟩ message into its 8 bytes."""
    return _STRUCT.pack(int(op), arg, data)


def decode(raw: bytes) -> Tuple[CeOp, int, int]:
    """Unpack an 8-byte control message; raises ValueError when malformed."""
    if len(raw) != CONTROL_MESSAGE_SIZE:
        raise ValueError(
            f"control message must be {CONTROL_MESSAGE_SIZE} bytes, "
            f"got {len(raw)}")
    op, arg, data = _STRUCT.unpack(raw)
    return CeOp(op), arg, data


class ControlPlane:
    """The listener thread of §5: decodes requests, drives CoreEngine.

    ``handle(raw) -> raw`` mirrors the real daemon's request/response
    loop.  Registration responses carry the allocated numeric id in
    ce_data; errors return ``ERROR`` with a :class:`CeError` code.
    """

    def __init__(self, engine: CoreEngine):
        self.engine = engine
        self.requests_handled = 0
        self.errors_returned = 0

    def handle(self, raw: bytes) -> bytes:
        """Process one 8-byte request; returns the 8-byte response."""
        try:
            op, arg, data = decode(raw)
        except ValueError:
            return self._error(CeError.BAD_REQUEST)
        try:
            if op == CeOp.REGISTER_VM:
                numeric_id, _device = self.engine.register_vm(
                    f"vm-{data}", queue_sets=max(1, arg))
                return self._ok(numeric_id)
            if op == CeOp.REGISTER_NSM:
                numeric_id, _device = self.engine.register_nsm(
                    f"nsm-{data}", queue_sets=max(1, arg))
                return self._ok(numeric_id)
            if op == CeOp.DEREGISTER:
                self.engine.deregister(data)
                return self._ok(0)
            if op == CeOp.ASSIGN_VM:
                # arg selects the NSM id; data the VM id.
                self.engine.assign_vm(data, arg)
                return self._ok(0)
        except ConfigurationError:
            return self._error(CeError.UNKNOWN_ID)
        return self._error(CeError.BAD_REQUEST)

    def _ok(self, data: int) -> bytes:
        self.requests_handled += 1
        return encode(CeOp.OK, 0, data)

    def _error(self, code: CeError) -> bytes:
        self.errors_returned += 1
        return encode(CeOp.ERROR, 0, int(code))
