"""NetKernel reproduction.

A faithful, laptop-scale reproduction of *NetKernel: Making Network Stack
Part of the Virtualized Infrastructure* (Niu et al.), built over a
simulated host substrate: a discrete-event engine, cycle-calibrated CPU
cores, shared-memory rings and hugepages, a functional TCP stack, and the
NetKernel architecture (GuestLib, NQEs, CoreEngine, ServiceLib, NSMs) on
top — plus the baseline (stack-in-guest) architecture for comparison.

Quick start::

    from repro import Simulator, Network, NetKernelHost

    sim = Simulator()
    net = Network(sim)
    host = NetKernelHost(sim, net)
    nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
    vm = host.add_vm("vm1", vcpus=1, nsm=nsm)
    api = host.socket_api(vm)
    # write apps as generator coroutines against `api`, then sim.run(...)
"""

from repro.sim import Simulator
from repro.net import Network, Link
from repro.core import NetKernelHost
from repro.baseline import BaselineHost
from repro.cpu import CostModel, DEFAULT_COST_MODEL

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "Network",
    "Link",
    "NetKernelHost",
    "BaselineHost",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "__version__",
]
