"""The hugepage region shared between a VM and its NSM (§4.5, §5).

The paper uses QEMU IVSHMEM with 128 pages of 2 MiB.  We model the region
as a real allocator over that byte budget, and buffers carry real payload
bytes so that tests can verify end-to-end data integrity through the whole
NetKernel path (GuestLib copy-in → NQE data pointer → ServiceLib copy-out).

Data pointers in NQEs are modelled as integer buffer ids issued by the
region, mirroring the paper's "data pointer is a pointer to application
data in hugepages".
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import HugepageExhaustedError, ResourceError
from repro.units import MiB

#: The paper's configuration: 2 MiB pages, 128 of them (§5).
PAGE_SIZE = MiB(2)
DEFAULT_PAGE_COUNT = 128


class HugepageBuffer:
    """One allocated chunk inside the region, holding real bytes."""

    __slots__ = ("buffer_id", "size", "data", "_region", "freed")

    def __init__(self, buffer_id: int, size: int, region: "HugepageRegion"):
        self.buffer_id = buffer_id
        self.size = size
        self.data: bytes = b""
        self._region = region
        self.freed = False

    def write(self, data: bytes) -> None:
        """Copy application bytes into the buffer (GuestLib's copy-in).

        Accepts any bytes-like object.  ``bytes(data)`` materializes a
        memoryview in one copy — this is the single charged copy at the
        guest boundary — and *adopts* an immutable ``bytes`` object
        without copying (CPython returns it as-is), which is what makes
        the zero-copy hand-off chain through the datapath hold.
        """
        if self.freed:
            raise ResourceError(f"write to freed buffer {self.buffer_id}")
        if len(data) > self.size:
            raise ResourceError(
                f"write of {len(data)} B into {self.size} B buffer"
            )
        self.data = bytes(data)

    def read(self) -> bytes:
        """Copy the bytes out (ServiceLib's copy-out)."""
        if self.freed:
            raise ResourceError(f"read of freed buffer {self.buffer_id}")
        return self.data

    def free(self) -> None:
        self._region.free(self)


class HugepageRegion:
    """Allocator over the shared hugepage memory of one VM–NSM pair."""

    def __init__(self, page_count: int = DEFAULT_PAGE_COUNT,
                 page_size: int = PAGE_SIZE, name: str = "hugepages"):
        if page_count < 1 or page_size < 1:
            raise ResourceError("hugepage region needs >=1 page of >=1 byte")
        self.name = name
        self.capacity = page_count * page_size
        self.allocated = 0
        self._next_id = 1
        self._buffers: Dict[int, HugepageBuffer] = {}
        # Lifetime statistics.
        self.total_allocs = 0
        self.total_frees = 0
        self.peak_allocated = 0

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.allocated

    @property
    def live_buffers(self) -> int:
        return len(self._buffers)

    def alloc(self, size: int) -> HugepageBuffer:
        """Allocate a buffer of ``size`` bytes.

        Raises :class:`HugepageExhaustedError` when the region cannot hold
        the buffer — the signal GuestLib uses for send-buffer backpressure.
        """
        if size < 0:
            raise ResourceError(f"negative allocation: {size}")
        if size > self.free_bytes:
            raise HugepageExhaustedError(
                f"{self.name}: need {size} B, only {self.free_bytes} B free"
            )
        buffer = HugepageBuffer(self._next_id, size, self)
        self._next_id += 1
        self._buffers[buffer.buffer_id] = buffer
        self.allocated += size
        self.total_allocs += 1
        self.peak_allocated = max(self.peak_allocated, self.allocated)
        return buffer

    def try_alloc(self, size: int) -> Optional[HugepageBuffer]:
        """Allocate, or return None when the region is exhausted."""
        try:
            return self.alloc(size)
        except HugepageExhaustedError:
            return None

    def get(self, buffer_id: int) -> HugepageBuffer:
        """Resolve a data pointer (buffer id) carried in an NQE."""
        buffer = self._buffers.get(buffer_id)
        if buffer is None:
            raise ResourceError(
                f"{self.name}: dangling data pointer {buffer_id}"
            )
        return buffer

    def lookup(self, buffer_id: int) -> Optional[HugepageBuffer]:
        """Resolve a data pointer, or None if it no longer lives here
        (used on drop paths where a dangling pointer is not a bug)."""
        return self._buffers.get(buffer_id)

    def watermarks(self) -> Dict[str, int]:
        """Occupancy snapshot for samplers (bytes and buffer counts)."""
        return {
            "capacity": self.capacity,
            "allocated": self.allocated,
            "free": self.free_bytes,
            "peak_allocated": self.peak_allocated,
            "live_buffers": self.live_buffers,
            "total_allocs": self.total_allocs,
            "total_frees": self.total_frees,
        }

    def free(self, buffer: HugepageBuffer) -> None:
        """Release a buffer back to the region."""
        if buffer.freed:
            raise ResourceError(
                f"{self.name}: double free of buffer {buffer.buffer_id}"
            )
        if buffer.buffer_id not in self._buffers:
            raise ResourceError(
                f"{self.name}: foreign buffer {buffer.buffer_id}"
            )
        del self._buffers[buffer.buffer_id]
        self.allocated -= buffer.size
        self.total_frees += 1
        buffer.freed = True
        buffer.data = b""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<HugepageRegion {self.name} "
                f"{self.allocated}/{self.capacity} B in use>")
