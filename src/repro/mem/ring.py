"""Single-producer single-consumer ring buffer.

The paper's queues are lockless because each is shared between exactly one
producer and one consumer (§3, "Scalable Lockless Queues").  We model that
discipline explicitly: a ring is *claimed* by one producer identity and one
consumer identity, and any second party touching the same end is a bug the
simulation surfaces immediately rather than a silent race.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import ResourceError, RingEmptyError, RingFullError


class SpscRing:
    """Bounded FIFO with single-producer / single-consumer enforcement."""

    def __init__(self, capacity: int, name: str = "ring"):
        if capacity < 1:
            raise ResourceError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._slots: List[Any] = [None] * capacity
        self._head = 0  # next slot to consume
        self._tail = 0  # next slot to produce
        self._count = 0
        self._producer: Optional[object] = None
        self._consumer: Optional[object] = None
        # Lifetime statistics.
        self.produced = 0
        self.consumed = 0
        self.full_rejections = 0
        self.peak_depth = 0

    # -- ownership -----------------------------------------------------------

    def claim_producer(self, owner: object) -> None:
        """Bind the producing end to ``owner``; rebinding is an error."""
        if self._producer is not None and self._producer is not owner:
            raise ResourceError(
                f"{self.name}: second producer {owner!r} (already "
                f"{self._producer!r}) — SPSC discipline violated"
            )
        self._producer = owner

    def claim_consumer(self, owner: object) -> None:
        """Bind the consuming end to ``owner``; rebinding is an error."""
        if self._consumer is not None and self._consumer is not owner:
            raise ResourceError(
                f"{self.name}: second consumer {owner!r} (already "
                f"{self._consumer!r}) — SPSC discipline violated"
            )
        self._consumer = owner

    def _check_producer(self, owner: Optional[object]) -> None:
        if owner is not None:
            self.claim_producer(owner)

    def _check_consumer(self, owner: Optional[object]) -> None:
        if owner is not None:
            self.claim_consumer(owner)

    # -- state ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def empty(self) -> bool:
        return self._count == 0

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - self._count

    # -- produce ---------------------------------------------------------------

    def try_push(self, item: Any, owner: Optional[object] = None) -> bool:
        """Push one item; returns False (and counts a rejection) if full."""
        self._check_producer(owner)
        if self.full:
            self.full_rejections += 1
            return False
        self._slots[self._tail] = item
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1
        self.produced += 1
        if self._count > self.peak_depth:
            self.peak_depth = self._count
        return True

    def push(self, item: Any, owner: Optional[object] = None) -> None:
        """Push one item; raises :class:`RingFullError` if full."""
        if not self.try_push(item, owner):
            raise RingFullError(f"{self.name} is full ({self.capacity})")

    def push_batch(self, items, owner: Optional[object] = None) -> int:
        """Push as many of ``items`` as fit; returns how many were pushed.

        One ownership check covers the whole batch — the producer cannot
        change mid-call under the SPSC discipline.
        """
        self._check_producer(owner)
        pushed = 0
        count = self._count
        capacity = self.capacity
        tail = self._tail
        slots = self._slots
        for item in items:
            if count == capacity:
                self.full_rejections += 1
                break
            slots[tail] = item
            tail = (tail + 1) % capacity
            count += 1
            pushed += 1
        self._tail = tail
        self._count = count
        self.produced += pushed
        if count > self.peak_depth:
            self.peak_depth = count
        return pushed

    # -- consume -----------------------------------------------------------------

    def try_pop(self, owner: Optional[object] = None) -> Any:
        """Pop the oldest item, or return None when empty."""
        self._check_consumer(owner)
        if self.empty:
            return None
        item = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        self.consumed += 1
        return item

    def pop(self, owner: Optional[object] = None) -> Any:
        """Pop the oldest item; raises :class:`RingEmptyError` when empty."""
        self._check_consumer(owner)
        if self.empty:
            raise RingEmptyError(f"{self.name} is empty")
        return self.try_pop(owner)

    def pop_batch(self, max_items: int, owner: Optional[object] = None) -> List[Any]:
        """Pop up to ``max_items`` items (the paper's batched consumption).

        One ownership check covers the whole batch — the consumer cannot
        change mid-call under the SPSC discipline.
        """
        self._check_consumer(owner)
        if max_items < 0:
            raise ResourceError(f"negative batch: {max_items}")
        count = self._count
        if count == 0 or max_items == 0:
            return []
        take = max_items if max_items < count else count
        batch: List[Any] = []
        head = self._head
        slots = self._slots
        capacity = self.capacity
        for _ in range(take):
            batch.append(slots[head])
            slots[head] = None
            head = (head + 1) % capacity
        self._head = head
        self._count = count - take
        self.consumed += take
        return batch

    def peek(self, owner: Optional[object] = None) -> Any:
        """The oldest item without consuming it, or None when empty."""
        self._check_consumer(owner)
        if self.empty:
            return None
        return self._slots[self._head]

    def snapshot(self) -> List[Any]:
        """All queued items, oldest first, without consuming anything.

        Inspection only (migration quiescence checks, tests): bypasses the
        ownership discipline because it moves no cursor and mutates no slot.
        """
        return [self._slots[(self._head + i) % self.capacity]
                for i in range(self._count)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SpscRing {self.name} {self._count}/{self.capacity}>"
