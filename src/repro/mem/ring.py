"""Single-producer single-consumer ring buffer.

The paper's queues are lockless because each is shared between exactly one
producer and one consumer (§3, "Scalable Lockless Queues").  We model that
discipline explicitly: a ring is *claimed* by one producer identity and one
consumer identity, and any second party touching the same end is a bug the
simulation surfaces immediately rather than a silent race.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import ResourceError, RingEmptyError, RingFullError


class SpscRing:
    """Bounded FIFO with single-producer / single-consumer enforcement."""

    def __init__(self, capacity: int, name: str = "ring"):
        if capacity < 1:
            raise ResourceError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._slots: List[Any] = [None] * capacity
        self._head = 0  # next slot to consume
        self._tail = 0  # next slot to produce
        self._count = 0
        self._producer: Optional[object] = None
        self._consumer: Optional[object] = None
        # Lifetime statistics.
        self.produced = 0
        self.consumed = 0
        self.full_rejections = 0
        self.peak_depth = 0
        #: Windowed occupancy high-watermark: like ``peak_depth`` but
        #: resettable via :meth:`take_hwm`, so the overload detector can
        #: sample per-interval peaks instead of a lifetime maximum.
        self.hwm_depth = 0
        #: Drains that built a fresh list (``pop_batch``).  The vectorized
        #: datapath drains through ``drain_into`` instead, which reuses a
        #: caller-owned scratch list; perf smoke asserts this counter stays
        #: flat across steady-state switching.
        self.list_allocs = 0

    # -- ownership -----------------------------------------------------------

    def claim_producer(self, owner: object) -> None:
        """Bind the producing end to ``owner``; rebinding is an error."""
        if self._producer is not None and self._producer is not owner:
            raise ResourceError(
                f"{self.name}: second producer {owner!r} (already "
                f"{self._producer!r}) — SPSC discipline violated"
            )
        self._producer = owner

    def claim_consumer(self, owner: object) -> None:
        """Bind the consuming end to ``owner``; rebinding is an error."""
        if self._consumer is not None and self._consumer is not owner:
            raise ResourceError(
                f"{self.name}: second consumer {owner!r} (already "
                f"{self._consumer!r}) — SPSC discipline violated"
            )
        self._consumer = owner

    # Ownership checks are inlined at each call site as
    # ``if owner is not None and self._producer is not owner:`` — the
    # steady-state claim (same owner every call) costs one identity
    # compare and no function call, which matters at switching rates.

    # -- state ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def empty(self) -> bool:
        return self._count == 0

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - self._count

    # -- produce ---------------------------------------------------------------

    def _note_full(self) -> None:
        """The single full-rejection accounting point.

        Both push paths (``try_push`` and ``push_batch``) funnel through
        here, so rejection semantics — one rejection per refused push or
        per overflowing batch — live in exactly one place.
        """
        self.full_rejections += 1

    def _note_depth(self, depth: int) -> None:
        """Record a post-push depth against both high-watermarks."""
        if depth > self.peak_depth:
            self.peak_depth = depth
        if depth > self.hwm_depth:
            self.hwm_depth = depth

    def take_hwm(self) -> int:
        """Return the windowed occupancy high-watermark and restart the
        window at the current depth (the overload detector's sampler)."""
        hwm = self.hwm_depth
        self.hwm_depth = self._count
        return hwm

    def try_push(self, item: Any, owner: Optional[object] = None) -> bool:
        """Push one item; returns False (and counts a rejection) if full."""
        if owner is not None and self._producer is not owner:
            self.claim_producer(owner)
        count = self._count
        if count == self.capacity:
            self._note_full()
            return False
        tail = self._tail
        self._slots[tail] = item
        tail += 1
        self._tail = 0 if tail == self.capacity else tail
        count += 1
        self._count = count
        self.produced += 1
        self._note_depth(count)
        return True

    def push(self, item: Any, owner: Optional[object] = None) -> None:
        """Push one item; raises :class:`RingFullError` if full."""
        if not self.try_push(item, owner):
            raise RingFullError(f"{self.name} is full ({self.capacity})")

    def push_batch(self, items, owner: Optional[object] = None,
                   count: Optional[int] = None) -> int:
        """Push as many of ``items`` as fit; returns how many were pushed.

        One ownership check covers the whole batch — the producer cannot
        change mid-call under the SPSC discipline.

        ``count`` pushes only ``items[:count]`` without materializing the
        slice: pass a reusable scratch list plus the valid-prefix length
        and the call is iterator-free and allocation-free (the vectorized
        producer fast path).
        """
        if owner is not None and self._producer is not owner:
            self.claim_producer(owner)
        n = len(items) if count is None else count
        depth = self._count
        free = self.capacity - depth
        if n > free:
            # One rejection per overflowing batch, matching the scalar
            # loop's behaviour of counting the first refused element.
            self._note_full()
            n = free
        if n <= 0:
            return 0
        capacity = self.capacity
        tail = self._tail
        slots = self._slots
        for i in range(n):
            slots[tail] = items[i]
            tail += 1
            if tail == capacity:
                tail = 0
        self._tail = tail
        depth += n
        self._count = depth
        self.produced += n
        self._note_depth(depth)
        return n

    # -- consume -----------------------------------------------------------------

    def try_pop(self, owner: Optional[object] = None) -> Any:
        """Pop the oldest item, or return None when empty."""
        if owner is not None and self._consumer is not owner:
            self.claim_consumer(owner)
        if self._count == 0:
            return None
        head = self._head
        slots = self._slots
        item = slots[head]
        slots[head] = None
        self._head = head + 1 if head + 1 < self.capacity else 0
        self._count -= 1
        self.consumed += 1
        return item

    def pop(self, owner: Optional[object] = None) -> Any:
        """Pop the oldest item; raises :class:`RingEmptyError` when empty.

        A single emptiness/ownership check: ``try_pop`` does the work and
        ``None`` (never a valid queued element) signals empty.
        """
        item = self.try_pop(owner)
        if item is None:
            raise RingEmptyError(f"{self.name} is empty")
        return item

    def pop_batch(self, max_items: int, owner: Optional[object] = None) -> List[Any]:
        """Pop up to ``max_items`` items (the paper's batched consumption).

        One ownership check covers the whole batch — the consumer cannot
        change mid-call under the SPSC discipline.  Builds a fresh list per
        call (counted in ``list_allocs``); steady-state consumers should
        prefer :meth:`drain_into`.
        """
        if owner is not None and self._consumer is not owner:
            self.claim_consumer(owner)
        if max_items < 0:
            raise ResourceError(f"negative batch: {max_items}")
        count = self._count
        if count == 0 or max_items == 0:
            return []
        self.list_allocs += 1
        take = max_items if max_items < count else count
        batch: List[Any] = []
        head = self._head
        slots = self._slots
        capacity = self.capacity
        for _ in range(take):
            batch.append(slots[head])
            slots[head] = None
            head = (head + 1) % capacity
        self._head = head
        self._count = count - take
        self.consumed += take
        return batch

    def drain_into(self, buf: List[Any], max_items: int,
                   owner: Optional[object] = None, start: int = 0) -> int:
        """Pop up to ``max_items`` items into ``buf[start:]``; returns the count.

        The allocation-free drain: the caller owns ``buf`` (a reusable
        scratch list) and reads back exactly ``start + n`` valid slots.
        ``buf`` is grown once if too short and never shrunk, so a steady
        state consumer performs zero list allocations per pass.
        """
        if owner is not None and self._consumer is not owner:
            self.claim_consumer(owner)
        if max_items < 0:
            raise ResourceError(f"negative batch: {max_items}")
        count = self._count
        take = max_items if max_items < count else count
        if take <= 0:
            return 0
        need = start + take
        if len(buf) < need:
            buf.extend([None] * (need - len(buf)))
        head = self._head
        slots = self._slots
        capacity = self.capacity
        for i in range(start, need):
            buf[i] = slots[head]
            slots[head] = None
            head += 1
            if head == capacity:
                head = 0
        self._head = head
        self._count = count - take
        self.consumed += take
        return take

    def peek(self, owner: Optional[object] = None) -> Any:
        """The oldest item without consuming it, or None when empty."""
        if owner is not None and self._consumer is not owner:
            self.claim_consumer(owner)
        if self.empty:
            return None
        return self._slots[self._head]

    def snapshot(self) -> List[Any]:
        """All queued items, oldest first, without consuming anything.

        Inspection only (migration quiescence checks, tests): bypasses the
        ownership discipline because it moves no cursor and mutates no slot.
        """
        return [self._slots[(self._head + i) % self.capacity]
                for i in range(self._count)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SpscRing {self.name} {self._count}/{self.capacity}>"
