"""Shared-memory substrate: SPSC rings (the paper's lockless queues, §3)
and the hugepage region used for application payload (§4.5)."""

from repro.mem.ring import SpscRing
from repro.mem.hugepages import HugepageRegion, HugepageBuffer

__all__ = ["SpscRing", "HugepageRegion", "HugepageBuffer"]
