"""The per-host vSwitch.

Routes packets between local attachments (VMs/NSMs on the same host) and
the external fabric.  Local delivery still pays a serialization + hop cost
through an internal link so colocated-VM traffic has realistic timing —
this is the path the shared-memory NSM (use case 4) short-circuits.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.packet import Packet
from repro.units import gbps, usec

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

RxHandler = Callable[[Packet], None]


class VSwitch:
    """Software (or SR-IOV embedded) switch on one physical host."""

    def __init__(self, sim: "Simulator", host_id: str,
                 internal_rate_bps: float = gbps(100),
                 uplink: Optional[Link] = None):
        self.sim = sim
        self.host_id = host_id
        self._ports: Dict[str, RxHandler] = {}
        self._internal = Link(sim, internal_rate_bps, delay_sec=usec(5),
                              queue_bytes=4 * 1024 * 1024,
                              name=f"{host_id}.vswitch")
        self._uplink_handler: Optional[Callable[[Packet], None]] = None
        self.local_packets = 0
        self.uplink_packets = 0

    def attach(self, port_id: str, handler: RxHandler) -> None:
        """Attach a local endpoint (a VM or NSM vNIC RX handler)."""
        if port_id in self._ports:
            raise ConfigurationError(
                f"port {port_id} already attached to vswitch {self.host_id}"
            )
        self._ports[port_id] = handler

    def detach(self, port_id: str) -> None:
        self._ports.pop(port_id, None)

    def set_uplink(self, handler: Callable[[Packet], None]) -> None:
        """Install the path toward the external fabric."""
        self._uplink_handler = handler

    def is_local(self, endpoint_id: str) -> bool:
        return endpoint_id in self._ports

    def forward(self, packet: Packet) -> None:
        """Route one packet: to a local port if attached, else the uplink."""
        handler = self._ports.get(packet.dst_host)
        if handler is not None:
            self.local_packets += 1
            self._internal.transmit(packet, handler)
            return
        if self._uplink_handler is None:
            raise ConfigurationError(
                f"vswitch {self.host_id}: no route to {packet.dst_host} "
                "(not local, no uplink)"
            )
        self.uplink_packets += 1
        self._uplink_handler(packet)
