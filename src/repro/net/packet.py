"""Packets on the simulated wire.

A packet carries a transport-layer payload (for us, a TCP segment object)
plus the header fields the network layer needs: endpoints, size, and the
ECN codepoint used by DCTCP-style congestion control.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Tuple

#: Bytes of L2+L3+L4 headers added to every packet on the wire.
HEADER_BYTES = 66

_packet_ids = itertools.count(1)

Address = Tuple[str, int]  # (host id, port)


class Packet:
    """One packet in flight."""

    __slots__ = ("packet_id", "src", "dst", "payload_bytes", "segment",
                 "ecn_capable", "ecn_marked", "enqueued_at", "sent_at")

    def __init__(self, src: Address, dst: Address, payload_bytes: int,
                 segment: Any = None, ecn_capable: bool = False):
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.payload_bytes = payload_bytes
        self.segment = segment
        self.ecn_capable = ecn_capable
        self.ecn_marked = False
        self.enqueued_at: Optional[float] = None
        self.sent_at: Optional[float] = None

    @property
    def size(self) -> int:
        """Wire size in bytes, headers included."""
        return self.payload_bytes + HEADER_BYTES

    @property
    def src_host(self) -> str:
        return self.src[0]

    @property
    def dst_host(self) -> str:
        return self.dst[0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Packet #{self.packet_id} {self.src}->{self.dst} "
                f"{self.payload_bytes}B>")
