"""A unidirectional link: serialization rate, propagation delay, and a
drop-tail queue with optional ECN marking and fault injection."""

from __future__ import annotations

import random
from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

DeliverFn = Callable[[Packet], None]


class Link:
    """Models an output port: queue → serialize at ``rate_bps`` → propagate.

    The queue is drop-tail over bytes.  If ``ecn_threshold_bytes`` is set,
    packets admitted while the backlog exceeds the threshold get their ECN
    codepoint marked (the DCTCP switch behaviour).  ``loss_rate`` injects
    independent random drops for failure-injection tests.
    """

    def __init__(self, sim: "Simulator", rate_bps: float,
                 delay_sec: float = 10e-6,
                 queue_bytes: int = 512 * 1024,
                 ecn_threshold_bytes: Optional[int] = None,
                 loss_rate: float = 0.0,
                 seed: int = 1, name: str = "link"):
        if rate_bps <= 0:
            raise ConfigurationError(f"link rate must be positive: {rate_bps}")
        if delay_sec < 0:
            raise ConfigurationError(f"negative delay: {delay_sec}")
        if queue_bytes < 1:
            raise ConfigurationError(f"queue must hold >=1 byte: {queue_bytes}")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(f"loss rate out of range: {loss_rate}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_sec = delay_sec
        self.queue_bytes = queue_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.loss_rate = loss_rate
        self.name = name
        self._rng = random.Random(seed)
        self._backlog_bytes = 0
        self._busy_until = 0.0
        # Lifetime statistics.
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.dropped_packets = 0
        self.marked_packets = 0

    @property
    def backlog_bytes(self) -> int:
        return self._backlog_bytes

    def queueing_delay(self) -> float:
        """Current wait before a newly arriving packet starts serializing."""
        return max(0.0, self._busy_until - self.sim.now)

    def transmit(self, packet: Packet, deliver: DeliverFn) -> bool:
        """Enqueue ``packet``; call ``deliver`` when it reaches the far end.

        Returns False when the packet was dropped (queue overflow or
        injected loss).
        """
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.dropped_packets += 1
            return False
        if self._backlog_bytes + packet.size > self.queue_bytes:
            self.dropped_packets += 1
            return False
        if (packet.ecn_capable and self.ecn_threshold_bytes is not None
                and self._backlog_bytes >= self.ecn_threshold_bytes):
            packet.ecn_marked = True
            self.marked_packets += 1

        packet.enqueued_at = self.sim.now
        self._backlog_bytes += packet.size
        serialize = packet.size * 8.0 / self.rate_bps
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + serialize
        done_at = self._busy_until

        def _dequeue_and_deliver() -> None:
            # Backlog is freed at delivery rather than at the end of
            # serialization — a delay_sec-worth of over-count, negligible
            # next to the queue size, and it halves the event count.
            self._backlog_bytes -= packet.size
            packet.sent_at = self.sim.now
            self.delivered_packets += 1
            self.delivered_bytes += packet.size
            deliver(packet)

        self.sim.call_at(done_at + self.delay_sec, _dequeue_and_deliver)
        return True

    def utilization(self, window: Optional[float] = None) -> float:
        """Delivered-byte utilization over elapsed (or given) time."""
        elapsed = window if window is not None else self.sim.now
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.delivered_bytes * 8.0 / (self.rate_bps * elapsed))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.rate_bps / 1e9:.1f}Gbps>"
