"""The network fabric connecting endpoints.

Each endpoint (a VM's stack in the baseline, or an NSM's stack under
NetKernel, or a remote traffic sink) registers under a host id with an RX
handler and an uplink/downlink pair.  Routing is destination-based; an
optional shared *bottleneck* link lets fairness experiments create the
many-flows-one-pipe scenario of Fig. 9.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.packet import Packet
from repro.units import gbps, usec

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

RxHandler = Callable[[Packet], None]


class _Endpoint:
    def __init__(self, uplink: Link, downlink: Link, handler: RxHandler):
        self.uplink = uplink
        self.downlink = downlink
        self.handler = handler


class Network:
    """Destination-routed fabric with optional shared bottleneck."""

    def __init__(self, sim: "Simulator", default_rate_bps: float = gbps(100),
                 default_delay_sec: float = usec(25)):
        self.sim = sim
        self.default_rate_bps = default_rate_bps
        self.default_delay_sec = default_delay_sec
        self._endpoints: Dict[str, _Endpoint] = {}
        self._bottleneck: Optional[Link] = None

    def add_endpoint(self, host_id: str, handler: RxHandler,
                     uplink: Optional[Link] = None,
                     downlink: Optional[Link] = None) -> None:
        """Register a host with its RX handler and access links."""
        if host_id in self._endpoints:
            raise ConfigurationError(f"endpoint {host_id} already registered")
        uplink = uplink or Link(
            self.sim, self.default_rate_bps, self.default_delay_sec,
            name=f"{host_id}.up")
        downlink = downlink or Link(
            self.sim, self.default_rate_bps, self.default_delay_sec,
            name=f"{host_id}.down")
        self._endpoints[host_id] = _Endpoint(uplink, downlink, handler)

    def remove_endpoint(self, host_id: str) -> None:
        self._endpoints.pop(host_id, None)

    def has_endpoint(self, host_id: str) -> bool:
        return host_id in self._endpoints

    def set_bottleneck(self, link: Link) -> None:
        """Insert a shared link every flow traverses (Fig. 9's scenario)."""
        self._bottleneck = link

    @property
    def bottleneck(self) -> Optional[Link]:
        return self._bottleneck

    def send(self, packet: Packet) -> bool:
        """Route ``packet`` from its source to its destination endpoint.

        Returns False if it was dropped anywhere along the path.
        """
        src = self._endpoints.get(packet.src_host)
        dst = self._endpoints.get(packet.dst_host)
        if src is None:
            raise ConfigurationError(f"unknown source host {packet.src_host}")
        if dst is None:
            raise ConfigurationError(f"unknown dest host {packet.dst_host}")

        def deliver_to_dst(pkt: Packet) -> None:
            dst.downlink.transmit(pkt, dst.handler)

        if self._bottleneck is not None:
            bottleneck = self._bottleneck

            def through_bottleneck(pkt: Packet) -> None:
                bottleneck.transmit(pkt, deliver_to_dst)

            return src.uplink.transmit(packet, through_bottleneck)
        return src.uplink.transmit(packet, deliver_to_dst)
