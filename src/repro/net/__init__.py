"""Simulated physical network: packets, rate/delay links, NICs, the
vSwitch, and a fabric that routes between hosts."""

from repro.net.packet import Packet
from repro.net.link import Link
from repro.net.nic import Nic, VNic
from repro.net.switch import VSwitch
from repro.net.fabric import Network

__all__ = ["Packet", "Link", "Nic", "VNic", "VSwitch", "Network"]
