"""NICs: the physical NIC of a host and the virtual NIC of a VM.

Functionally a NIC is a named attachment point with an RX handler; its
multi-queue structure matters for the cost model (per-core queues avoid
contention) and is tracked as metadata rather than simulated per-queue.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.units import gbps

RxHandler = Callable[[Packet], None]


class Nic:
    """A physical NIC: 100G by default, multi-queue, owned by a host."""

    def __init__(self, host_id: str, rate_bps: float = gbps(100),
                 queues: int = 16):
        if queues < 1:
            raise ConfigurationError(f"NIC needs >=1 queue, got {queues}")
        if rate_bps <= 0:
            raise ConfigurationError(f"NIC rate must be positive: {rate_bps}")
        self.host_id = host_id
        self.rate_bps = rate_bps
        self.queues = queues
        self._rx_handler: Optional[RxHandler] = None
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0

    def on_receive(self, handler: RxHandler) -> None:
        """Install the RX handler (the host's network stack entry point)."""
        self._rx_handler = handler

    def receive(self, packet: Packet) -> None:
        """Deliver a packet arriving from the wire."""
        if self._rx_handler is None:
            raise ConfigurationError(
                f"NIC of {self.host_id} has no RX handler installed"
            )
        self.rx_packets += 1
        self.rx_bytes += packet.size
        self._rx_handler(packet)

    def note_transmit(self, packet: Packet) -> None:
        """Record a packet leaving through this NIC."""
        self.tx_packets += 1
        self.tx_bytes += packet.size


class VNic(Nic):
    """A virtual NIC presented to a VM; attaches to the host's vSwitch.

    With SR-IOV a VNic is a VF with a hardware rate cap — modelled by
    ``rate_bps`` exactly like a physical port.
    """

    def __init__(self, vm_id: str, rate_bps: float = gbps(100)):
        super().__init__(vm_id, rate_bps=rate_bps, queues=1)
        self.vm_id = vm_id
