"""Pinned-seed wall-clock microbenchmarks.

Each benchmark is a callable ``fn(quick: bool) -> dict`` returning at
least ``{"wall_s", "events", "peak_rss"}`` (``peak_rss`` in KiB, from
``getrusage``).  The fig. 8 multiplexing benches additionally run the
same workload under both CoreEngine scan modes and report the speedup
plus whether the two simulated timelines were identical — the harness is
also the standing proof that the ready-set scheduler changes wall-clock
only.

Workload sizes are fixed constants (no RNG, no clock inputs), so the
simulated side of every result is reproducible bit-for-bit.
"""

from __future__ import annotations

import gc
import json
import os
import resource
import time
from collections import deque
from typing import Dict, List, Optional

from repro.core.coreengine import CoreEngine
from repro.core.nqe import NQE_POOL, NqeOp
from repro.cpu.core import Core
from repro.cpu.cost_model import DEFAULT_COST_MODEL
from repro.sim import Simulator


def _measure(fn):
    """(wall seconds, peak RSS KiB, fn result) with a clean GC start."""
    gc.collect()
    started = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - started
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return wall, peak, result


# -- raw simulator event throughput ------------------------------------------


def _events_workload(n_procs: int, events_each: int) -> int:
    sim = Simulator()

    def ticker():
        for _ in range(events_each):
            yield sim.timeout(1e-6)

    for _ in range(n_procs):
        sim.process(ticker())
    sim.run()
    return sim.events_processed


def bench_events(quick: bool) -> dict:
    """Raw event-loop throughput: timer wheels only, no datapath."""
    n_procs, events_each = (50, 400) if quick else (200, 2500)
    wall, peak, events = _measure(
        lambda: _events_workload(n_procs, events_each))
    return {"wall_s": wall, "events": events, "peak_rss": peak,
            "events_per_sec": events / wall if wall else 0.0}


# -- CoreEngine NQE switching ------------------------------------------------


def _mux_workload(scan: str, n_vms: int, active_vms: int,
                  nqes_per_active: int, burst: int = 1,
                  period: float = 20e-6, ring_slots: int = 256,
                  vectorized: Optional[bool] = None,
                  seed_conns: bool = False) -> dict:
    """Fig. 8-style multiplexing on raw NK devices.

    ``n_vms`` devices register with one CoreEngine; ``active_vms`` of
    them produce control NQEs (``burst`` per doorbell, paced ``period``
    apart, staggered so wake-ups usually find one dirty device).  A raw
    ring consumer on the NSM device echoes every request as an
    OP_RESULT; per-VM drainers recycle the responses.  Returns a
    fingerprint of the simulated timeline — identical across scan modes
    *and* across ``vectorized`` settings by the scheduler's bit-identity
    invariants.

    ``seed_conns`` exercises the connection-plane control path at boot:
    every VM is placed with ``assign_vm_auto`` (which consults
    ``nsm_loads`` per call) and gets one established connection-table
    entry.  With the indexed table that is O(VMs) total; a table that
    regresses to full scans makes it O(VMs x connections) and blows the
    bench's wall-time floor.
    """
    sim = Simulator()
    core = Core(sim, name="bench.ce", hz=DEFAULT_COST_MODEL.core_hz)
    # Small rings keep device setup cheap (4096-slot rings would make
    # allocation, not scheduling, dominate the 1000-VM bench).
    engine = CoreEngine(sim, core, batch_size=8, ring_slots=ring_slots,
                        scan=scan, vectorized=vectorized)
    nsm_id, nsm_dev = engine.register_nsm("nsm0", queue_sets=1)
    vms = []
    for i in range(n_vms):
        vm_id, vm_dev = engine.register_vm(f"vm{i}", queue_sets=1)
        if seed_conns:
            assigned = engine.assign_vm_auto(vm_id)
            # One established connection per VM: VM socket 1 (the same
            # socket id the producers use, so switching hits this entry
            # instead of inserting) mapped to a unique NSM socket id.
            engine.table.insert((vm_id, 0, 1), assigned, 0)
            engine.table.complete((vm_id, 0, 1), nsm_socket_id=vm_id)
        else:
            engine.assign_vm(vm_id, nsm_id)
        vms.append((vm_id, vm_dev))
    received = [0]

    def responder():
        owner = object()
        qs = nsm_dev.queue_sets[0]
        job_ring, send_ring = nsm_dev.consume_rings(qs)
        completion_ring, _ = nsm_dev.produce_rings(qs)
        backlog = deque()
        scratch: list = []
        while True:
            # Always consume requests (so CE's VM→NSM deliveries never
            # stall on a full job ring) and queue responses locally,
            # draining them whenever the completion ring has room —
            # needed once the active-VM count approaches the ring size.
            progressed = False
            if backlog:
                pushed = False
                cap = completion_ring.capacity
                while backlog and completion_ring._count < cap:
                    completion_ring.try_push(backlog.popleft(), owner=owner)
                    pushed = True
                if pushed:
                    nsm_dev.ring_doorbell()
                    progressed = True
            n = (job_ring.drain_into(scratch, 64, owner=owner)
                 if job_ring._count else 0)
            if send_ring._count:
                n += send_ring.drain_into(scratch, 64, owner=owner, start=n)
            if n:
                progressed = True
                for i in range(n):
                    nqe = scratch[i]
                    scratch[i] = None
                    received[0] += 1
                    backlog.append(nqe.response(NqeOp.OP_RESULT))
                    NQE_POOL.release(nqe)
            if not progressed:
                if backlog:
                    yield sim.timeout(1e-6)
                else:
                    yield nsm_dev.wait_for_inbound()


    def drainer(vm_dev):
        owner = object()
        qs = vm_dev.queue_sets[0]
        completion_ring, _ = vm_dev.consume_rings(qs)
        scratch: list = []
        while True:
            n = completion_ring.drain_into(scratch, 64, owner=owner)
            if not n:
                yield vm_dev.wait_for_inbound()
                continue
            for i in range(n):
                NQE_POOL.release(scratch[i])
                scratch[i] = None

    def producer(vm_id, vm_dev, index):
        owner = object()
        qs = vm_dev.queue_sets[0]
        control_ring, _ = vm_dev.produce_rings(qs)
        acquire = NQE_POOL.acquire
        yield sim.timeout(1e-6 * (index + 1))  # stagger the phases
        for _ in range(nqes_per_active):
            for _ in range(burst):
                control_ring.push(
                    acquire(NqeOp.SETSOCKOPT, vm_id, 0, 1,
                            created_at=sim._now),
                    owner=owner)
            vm_dev.ring_doorbell()
            yield sim.timeout(period)

    sim.process(responder())
    for _vm_id, vm_dev in vms:
        sim.process(drainer(vm_dev))
    for index, (vm_id, vm_dev) in enumerate(vms[:active_vms]):
        sim.process(producer(vm_id, vm_dev, index))
    sim.run()
    return {
        "sim_now": sim.now,
        "events_processed": sim.events_processed,
        "events_cancelled": sim.events_cancelled,
        "nqes_switched": engine.nqes_switched,
        "batches": engine.batches,
        "received": received[0],
        "ce_busy_cycles": core.busy_cycles,
    }


def bench_nqe_switch(quick: bool) -> dict:
    """CoreEngine switch throughput: bursts of 8 through one hot VM.

    Runs the same workload with ``vectorized`` on and off: ``wall_s`` is
    the vectorized run (what the floor tracks), ``speedup_vs_scalar`` is
    the A/B ratio, and ``fingerprint_match`` asserts the two simulated
    timelines were bit-identical (vectorization is wall-clock only).
    """
    nqes = 2_000 if quick else 20_000
    wall, peak, fp = _measure(
        lambda: _mux_workload("ready", n_vms=1, active_vms=1,
                              nqes_per_active=nqes, burst=8,
                              period=5e-6, vectorized=True))
    wall_scalar, peak_scalar, fp_scalar = _measure(
        lambda: _mux_workload("ready", n_vms=1, active_vms=1,
                              nqes_per_active=nqes, burst=8,
                              period=5e-6, vectorized=False))
    return {"wall_s": wall, "events": fp["events_processed"],
            "peak_rss": max(peak, peak_scalar),
            "nqes_switched": fp["nqes_switched"],
            "nqe_switches_per_sec":
                fp["nqes_switched"] / wall if wall else 0.0,
            "wall_scalar_s": wall_scalar,
            "speedup_vs_scalar": wall_scalar / wall if wall else 0.0,
            "fingerprint_match": fp == fp_scalar,
            "fingerprint": fp}


def _bench_fig08(n_vms: int, nqes_quick: int, nqes_full: int):
    def bench(quick: bool) -> dict:
        active = max(1, n_vms // 10)  # 10% duty cycle
        nqes = nqes_quick if quick else nqes_full
        wall_ready, peak, fp_ready = _measure(
            lambda: _mux_workload("ready", n_vms, active, nqes))
        wall_full, peak_full, fp_full = _measure(
            lambda: _mux_workload("full", n_vms, active, nqes))
        wall_scalar, peak_scalar, fp_scalar = _measure(
            lambda: _mux_workload("ready", n_vms, active, nqes,
                                  vectorized=False))
        return {
            "wall_s": wall_ready,
            "events": fp_ready["events_processed"],
            "peak_rss": max(peak, peak_full, peak_scalar),
            "wall_full_s": wall_full,
            "speedup_vs_full": wall_full / wall_ready if wall_ready else 0.0,
            "wall_scalar_s": wall_scalar,
            "speedup_vs_scalar":
                wall_scalar / wall_ready if wall_ready else 0.0,
            # One flag covers both standing proofs: ready-vs-full scan
            # AND vectorized-vs-scalar produce the same simulated timeline.
            "fingerprint_match": fp_ready == fp_full == fp_scalar,
            "fingerprint": fp_ready,
        }

    return bench


# -- sharded CoreEngine multiplexing (fig. 8 at fleet scale) -----------------


#: The per-shard fingerprint: every key a shard must reproduce
#: bit-identically to a standalone 1-shard run of the same partition.
_SHARD_FP_KEYS = ("nqes_switched", "batches", "received", "ce_busy_cycles")


def _sharded_mux_workload(scan: str, n_shards: int, vms_per_shard: int,
                          active_per_shard: int, nqes_per_active: int,
                          burst: int = 1, period: float = 20e-6,
                          ring_slots: int = 256,
                          seed_conns: bool = False) -> dict:
    """The fig. 8 multiplexing workload partitioned over N shards.

    Each shard gets its own NSM plus ``vms_per_shard`` VMs pinned to the
    same shard and assigned to that NSM — a traffic-closed partition, so
    no cross-shard handoffs occur and each shard's switching timeline is
    independent.  Producers stagger by their *within-shard* index,
    making every shard's workload identical to a standalone 1-shard run
    of the same size; per-shard counters must therefore be bit-identical
    to that reference (the sharding analogue of PR 2's ready-vs-full
    scan proof).

    ``seed_conns`` mirrors :func:`_mux_workload`'s flag at cluster
    scale: every VM is placed with ``assign_vm_auto`` (shard-aware — the
    result must be the VM's home-shard NSM, counted in ``cohomed``) and
    seeded with one established connection-table entry.
    """
    from repro.core.sharding import ShardedCoreEngine

    sim = Simulator()
    cores = [Core(sim, name=f"bench.ce{i}", hz=DEFAULT_COST_MODEL.core_hz)
             for i in range(n_shards)]
    engine = ShardedCoreEngine(sim, cores, batch_size=8,
                               ring_slots=ring_slots, scan=scan)
    received = [0] * n_shards

    def responder(shard_index, nsm_dev):
        owner = object()
        qs = nsm_dev.queue_sets[0]
        job_ring, send_ring = nsm_dev.consume_rings(qs)
        completion_ring, _ = nsm_dev.produce_rings(qs)
        backlog = deque()
        scratch: list = []
        while True:
            # Same consume-always/drain-opportunistically discipline as
            # _mux_workload's responder — the two must stay identical
            # for the per-shard fingerprint-identity proof to hold.
            progressed = False
            if backlog:
                pushed = False
                cap = completion_ring.capacity
                while backlog and completion_ring._count < cap:
                    completion_ring.try_push(backlog.popleft(), owner=owner)
                    pushed = True
                if pushed:
                    nsm_dev.ring_doorbell()
                    progressed = True
            n = (job_ring.drain_into(scratch, 64, owner=owner)
                 if job_ring._count else 0)
            if send_ring._count:
                n += send_ring.drain_into(scratch, 64, owner=owner, start=n)
            if n:
                progressed = True
                for i in range(n):
                    nqe = scratch[i]
                    scratch[i] = None
                    received[shard_index] += 1
                    backlog.append(nqe.response(NqeOp.OP_RESULT))
                    NQE_POOL.release(nqe)
            if not progressed:
                if backlog:
                    yield sim.timeout(1e-6)
                else:
                    yield nsm_dev.wait_for_inbound()


    def drainer(vm_dev):
        owner = object()
        qs = vm_dev.queue_sets[0]
        completion_ring, _ = vm_dev.consume_rings(qs)
        scratch: list = []
        while True:
            n = completion_ring.drain_into(scratch, 64, owner=owner)
            if not n:
                yield vm_dev.wait_for_inbound()
                continue
            for i in range(n):
                NQE_POOL.release(scratch[i])
                scratch[i] = None

    def producer(vm_id, vm_dev, index):
        owner = object()
        qs = vm_dev.queue_sets[0]
        control_ring, _ = vm_dev.produce_rings(qs)
        yield sim.timeout(1e-6 * (index + 1))  # within-shard stagger
        for _ in range(nqes_per_active):
            for _ in range(burst):
                control_ring.push(
                    NQE_POOL.acquire(NqeOp.SETSOCKOPT, vm_id, 0, 1,
                                     created_at=sim.now),
                    owner=owner)
            vm_dev.ring_doorbell()
            yield sim.timeout(period)

    cohomed = 0
    for shard_index in range(n_shards):
        nsm_id, nsm_dev = engine.register_nsm(
            f"nsm{shard_index}", queue_sets=1, shard=shard_index)
        sim.process(responder(shard_index, nsm_dev))
        shard_vms = []
        for i in range(vms_per_shard):
            vm_id, vm_dev = engine.register_vm(
                f"s{shard_index}.vm{i}", queue_sets=1, shard=shard_index)
            if seed_conns:
                assigned = engine.assign_vm_auto(vm_id)
                if assigned == nsm_id:
                    cohomed += 1
                engine.table.insert((vm_id, 0, 1), assigned, 0)
                engine.table.complete((vm_id, 0, 1), nsm_socket_id=vm_id)
            else:
                engine.assign_vm(vm_id, nsm_id)
            shard_vms.append((vm_id, vm_dev))
        for _vm_id, vm_dev in shard_vms:
            sim.process(drainer(vm_dev))
        for index, (vm_id, vm_dev) in enumerate(
                shard_vms[:active_per_shard]):
            sim.process(producer(vm_id, vm_dev, index))
    sim.run()

    per_shard = []
    for shard_index, shard in enumerate(engine.shards):
        stats = shard.stats()
        fingerprint = {key: stats[key] for key in _SHARD_FP_KEYS
                       if key in stats}
        fingerprint["received"] = received[shard_index]
        fingerprint["ce_busy_cycles"] = cores[shard_index].busy_cycles
        per_shard.append(fingerprint)
    return {
        "sim_now": sim.now,
        "events_processed": sim.events_processed,
        "handoffs": engine.handoffs_in,
        "per_shard": per_shard,
        "cohomed": cohomed,
    }


def _bench_fig08_sharded(n_shards: int, vms_per_shard: int,
                         nqes_quick: int, nqes_full: int):
    def bench(quick: bool) -> dict:
        active = max(1, vms_per_shard // 10)  # 10% duty cycle
        nqes = nqes_quick if quick else nqes_full
        # 250 active producers per partition need completion headroom a
        # 256-slot ring does not give (the 1000-VM bench has only 100).
        slots = 1024
        # Reference: a standalone 1-shard CoreEngine running exactly one
        # partition's workload.
        wall_ref, peak_ref, ref = _measure(
            lambda: _mux_workload("ready", vms_per_shard, active, nqes,
                                  ring_slots=slots))
        ref_fp = {key: ref[key] for key in _SHARD_FP_KEYS}
        wall, peak, out = _measure(
            lambda: _sharded_mux_workload("ready", n_shards, vms_per_shard,
                                          active, nqes, ring_slots=slots))
        match = (all(fp == ref_fp for fp in out["per_shard"])
                 and out["sim_now"] == ref["sim_now"]
                 and out["handoffs"] == 0)
        return {
            "wall_s": wall,
            "events": out["events_processed"],
            "peak_rss": max(peak, peak_ref),
            "n_shards": n_shards,
            "vms_total": n_shards * vms_per_shard,
            "wall_1shard_partition_s": wall_ref,
            "handoffs": out["handoffs"],
            "fingerprint_match": match,
            "fingerprint": ref_fp,
            "per_shard_fingerprints": out["per_shard"],
            "sim_now": out["sim_now"],
        }

    return bench


def _bench_fig08_sharded_100k(n_shards: int, vms_per_shard_quick: int,
                              vms_per_shard_full: int,
                              nqes_quick: int, nqes_full: int):
    """The 100k-VM scale proof for the indexed connection table.

    Every VM is placed via shard-aware ``assign_vm_auto`` (one
    ``nsm_loads`` consultation per boot) and seeded with one established
    connection, so boot alone performs O(VMs) table control operations.
    A connection table that regresses to full-table scans turns that
    into O(VMs x connections) — ~2x10^8 entry visits even in the quick
    20k-VM CI variant — and trips the wall-time floor.  The switching
    fingerprint of every shard must stay bit-identical to a standalone
    1-shard run of one partition, exactly like ``fig08_sharded``, and
    shard-aware placement must have co-homed every VM (``cohomed`` ==
    VMs, ``handoffs`` == 0).
    """
    def bench(quick: bool) -> dict:
        vms_per_shard = vms_per_shard_quick if quick else vms_per_shard_full
        active = max(1, vms_per_shard // 100)  # 1% duty cycle
        nqes = nqes_quick if quick else nqes_full
        slots = 1024
        wall_ref, peak_ref, ref = _measure(
            lambda: _mux_workload("ready", vms_per_shard, active, nqes,
                                  ring_slots=slots, seed_conns=True))
        ref_fp = {key: ref[key] for key in _SHARD_FP_KEYS}
        wall, peak, out = _measure(
            lambda: _sharded_mux_workload("ready", n_shards, vms_per_shard,
                                          active, nqes, ring_slots=slots,
                                          seed_conns=True))
        vms_total = n_shards * vms_per_shard
        match = (all(fp == ref_fp for fp in out["per_shard"])
                 and out["sim_now"] == ref["sim_now"]
                 and out["handoffs"] == 0
                 and out["cohomed"] == vms_total)
        return {
            "wall_s": wall,
            "events": out["events_processed"],
            "peak_rss": max(peak, peak_ref),
            "n_shards": n_shards,
            "vms_total": vms_total,
            "cohomed": out["cohomed"],
            "wall_1shard_partition_s": wall_ref,
            "handoffs": out["handoffs"],
            "fingerprint_match": match,
            "fingerprint": ref_fp,
            "per_shard_fingerprints": out["per_shard"],
            "sim_now": out["sim_now"],
        }

    return bench


# -- end-to-end short-request RPS (fig. 20's workload shape) -----------------


def _rps_workload(requests: int) -> dict:
    from repro import NetKernelHost, Network
    from repro.units import gbps, usec

    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(100),
                      default_delay_sec=usec(25))
    host = NetKernelHost(sim, network)
    nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
    vm_server = host.add_vm("vm-server", vcpus=1, nsm=nsm)
    vm_client = host.add_vm("vm-client", vcpus=1, nsm=nsm)
    api_server = host.socket_api(vm_server)
    api_client = host.socket_api(vm_client)
    done = {}

    def server():
        listener = yield from api_server.socket()
        yield from api_server.bind(listener, 80)
        yield from api_server.listen(listener, backlog=64)
        conn = yield from api_server.accept(listener)
        while True:
            data = yield from api_server.recv(conn, 4096)
            if not data:
                break
            yield from api_server.send(conn, b"R" * 64)
        yield from api_server.close(conn)

    def client():
        yield sim.timeout(0.001)  # let the server bind first
        sock = yield from api_client.socket()
        yield from api_client.connect(sock, ("nsm0", 80))
        for _ in range(requests):
            yield from api_client.send(sock, b"Q" * 64)
            yield from api_client.recv(sock, 4096)
        yield from api_client.close(sock)
        done["sim_now"] = sim.now

    vm_server.spawn(server())
    vm_client.spawn(client())
    sim.run(until=60.0)
    return {
        "events_processed": sim.events_processed,
        "completed": "sim_now" in done,
        "sim_rps": requests / done["sim_now"] if done.get("sim_now") else 0.0,
    }


def bench_fig20_rps(quick: bool) -> dict:
    """Full GuestLib→CE→ServiceLib→stack round trips, 64 B echoes."""
    requests = 300 if quick else 3_000
    wall, peak, out = _measure(lambda: _rps_workload(requests))
    return {"wall_s": wall, "events": out["events_processed"],
            "peak_rss": peak, "completed": out["completed"],
            "sim_rps": out["sim_rps"],
            "requests_per_wall_sec": requests / wall if wall else 0.0}


def bench_capacity_mux(quick: bool) -> dict:
    """NDR/PDR bisection over the mux scenario, overload governor on."""
    from repro.perf.capacity import run_capacity

    window, iterations = (0.005, 3) if quick else (0.02, 5)
    wall, peak, out = _measure(
        lambda: run_capacity(scenario="mux", seed=0, window=window,
                             iterations=iterations))
    graceful = out["graceful"]
    return {"wall_s": wall, "events": out["events_processed"],
            "peak_rss": peak, "steps": len(out["steps"]),
            "ndr_ops": out["ndr"]["rate"] if out["ndr"] else None,
            "pdr_ops": out["pdr"]["rate"] if out["pdr"] else None,
            "graceful": graceful["pass"] if graceful else None,
            "leaks": len(out["leaks"]),
            "fingerprint": out["fingerprint"]}


#: name -> fn(quick) -> result dict.
BENCHMARKS = {
    "events": bench_events,
    "nqe_switch": bench_nqe_switch,
    "fig08_mux_10": _bench_fig08(10, nqes_quick=100, nqes_full=2_000),
    "fig08_mux_100": _bench_fig08(100, nqes_quick=60, nqes_full=1_000),
    "fig08_mux_1000": _bench_fig08(1_000, nqes_quick=10, nqes_full=100),
    "fig08_sharded": _bench_fig08_sharded(4, 2_500,
                                          nqes_quick=4, nqes_full=100),
    "fig08_sharded_100k": _bench_fig08_sharded_100k(
        8, vms_per_shard_quick=2_500, vms_per_shard_full=12_500,
        nqes_quick=8, nqes_full=40),
    "fig20_rps": bench_fig20_rps,
    "capacity_mux": bench_capacity_mux,
}


def run_benchmarks(names: Optional[List[str]] = None,
                   quick: bool = False,
                   profile_top: int = 0) -> Dict[str, dict]:
    """Run the named benchmarks (all by default), in registry order.

    ``profile_top > 0`` wraps each benchmark in cProfile and attaches the
    top-N functions by cumulative time as ``result["profile"]`` (a text
    dump; the CLI prints it).  Profiled wall times carry tracer overhead,
    so never use them for floors or committed BENCH files.
    """
    if not names:
        names = list(BENCHMARKS)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise KeyError(f"unknown benchmarks: {unknown}; "
                       f"choose from {list(BENCHMARKS)}")
    results = {}
    for name in names:
        if profile_top > 0:
            import cProfile
            import io
            import pstats
            prof = cProfile.Profile()
            prof.enable()
            try:
                result = BENCHMARKS[name](quick)
            finally:
                prof.disable()
            stream = io.StringIO()
            stats = pstats.Stats(prof, stream=stream)
            stats.sort_stats("cumulative").print_stats(profile_top)
            result["profile"] = stream.getvalue()
        else:
            result = BENCHMARKS[name](quick)
        result["name"] = name
        result["quick"] = quick
        results[name] = result
    return results


def write_results(results: Dict[str, dict], out_dir: str) -> List[str]:
    """Write one ``BENCH_<name>.json`` per result; returns the paths."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for name, result in results.items():
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        with open(path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


def check_floors(results: Dict[str, dict], floors: Dict[str, float],
                 tolerance: float = 2.0) -> List[str]:
    """Regression check: a benchmark fails when its wall time exceeds
    ``tolerance ×`` the checked-in floor (a generous baseline, so CI
    machine jitter does not trip it).  Returns failure messages."""
    failures = []
    for name, floor in floors.items():
        result = results.get(name)
        if result is None:
            continue
        limit = floor * tolerance
        if result["wall_s"] > limit:
            failures.append(
                f"{name}: wall {result['wall_s']:.2f}s exceeds "
                f"{tolerance:g}x floor ({floor:g}s -> limit {limit:g}s)")
    return failures
