"""Wall-clock performance harness (``repro bench``).

Unlike ``repro.experiments`` — which reproduces the paper's *simulated*
numbers — this package measures how fast the simulator itself runs:
events per second, NQE switches per second, and the CoreEngine ready-set
scheduler's wall-clock advantage over the full scan at fig. 8-style
multiplexing scale.  Results are pinned-seed and deterministic in
simulated time; only the wall-clock readings vary between machines.
"""

from repro.perf.bench import (  # noqa: F401
    BENCHMARKS,
    check_floors,
    run_benchmarks,
    write_results,
)
from repro.perf.capacity import jain_fairness, run_capacity  # noqa: F401
