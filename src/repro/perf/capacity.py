"""NDR/PDR capacity search: where is the knee, and is it a plateau?

Borrowing the methodology of NFV benchmarking harnesses (nfvbench,
RFC 2544): a deterministic binary search over *offered load* finds, per
scenario,

* **NDR** (no-drop rate) — the highest offered rate whose loss fraction
  stays within ``ndr_loss`` (default 1%), and
* **PDR** (partial-drop rate) — the highest rate whose loss stays
  within ``pdr_loss`` (default 10%).

Loss is goodput deficit, ``max(0, 1 - goodput/offered_rate)``, which
subsumes every way an op can fail to complete: admission rejections
(EAGAIN at the guest boundary), switch-side sheds, ring-full drops,
backpressure drops, and deadline expiries.  Each probed rate reports
goodput, loss decomposition, and delivery-latency percentiles, so the
search doubles as a latency-vs-load sweep.

Scenarios:

* ``mux`` — the fig. 8 switching workload on raw NK devices: ``n_vms``
  open-loop producers through one CoreEngine (overload control armed)
  to an echoing NSM consumer.  Producers honour the governor's
  ``admit()`` gate exactly as GuestLib does.
* ``rps`` — full GuestLib→CE→ServiceLib→stack echo round trips,
  ``n_vms`` client VMs paced against a shared server.
* ``failover`` — the ``rps`` workload with the serving NSM crashed
  mid-window and failover armed: capacity *through* a failure.

After the search, the harness re-offers **2× NDR** and checks the
graceful-degradation contract: goodput holds ≥ 80% of the NDR plateau,
per-VM goodput stays fair (Jain index ≥ 0.9), and no op hangs — every
issued op resolves as a completion, a fast EAGAIN, a counted drop, or a
bounded timeout.

Everything is seeded and simulated-time-driven; the same
``(scenario, seed, knobs)`` tuple replays to the same fingerprint,
which ``repro capacity --verify`` and the capacity-smoke CI job assert.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.coreengine import CoreEngine
from repro.core.nqe import NQE_POOL, NqeOp
from repro.cpu.core import Core
from repro.cpu.cost_model import DEFAULT_COST_MODEL
from repro.errors import ConfigurationError, SocketError, TimedOutError, \
    TryAgainError
from repro.faults.chaos import switch_fingerprint
from repro.sim.engine import Simulator

#: scenario -> (default rate_lo, default rate_hi, default window sec).
SCENARIOS: Dict[str, tuple] = {
    "mux": (50e3, 2e6, 0.02),
    "rps": (2e3, 64e3, 0.08),
    "failover": (2e3, 64e3, 0.08),
}

#: Echo clients start issuing after this warm-up (server bind + listen).
_ECHO_WARMUP = 1e-3

#: Per-op service time of the mux scenario's NSM consumer (seconds).
#: The stack, not the switch, is the capacity bottleneck (§7): this
#: pins the mux knee near 1/_MUX_SERVICE_SEC aggregate ops/sec, inside
#: the default search band.
_MUX_SERVICE_SEC = 2e-6

#: Echo payload for the rps/failover scenarios.
_ECHO_BYTES = 64
_ECHO_PORT = 7100


def jain_fairness(values) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²); 1.0 is perfectly fair."""
    values = [float(v) for v in values]
    n = len(values)
    if n == 0:
        return 1.0
    total = sum(values)
    if total <= 0.0:
        return 1.0
    return (total * total) / (n * sum(v * v for v in values))


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    index = int(round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


# -- scenario: mux (raw-device switching capacity) ---------------------------


def _measure_mux(rate: float, seed: int, window: float,
                 n_vms: int) -> dict:
    """Offer ``rate`` control ops/sec across ``n_vms`` producers for
    ``window`` seconds of simulated time; return the step record."""
    pool_before = NQE_POOL.outstanding
    sim = Simulator()
    core = Core(sim, name="cap.ce", hz=DEFAULT_COST_MODEL.core_hz)
    engine = CoreEngine(sim, core, batch_size=8, ring_slots=128,
                        scan="ready", vectorized=True)
    governor = engine.enable_overload_control()
    nsm_id, nsm_dev = engine.register_nsm("nsm0", queue_sets=1)
    vms = []
    for i in range(n_vms):
        vm_id, vm_dev = engine.register_vm(f"vm{i}", queue_sets=1)
        engine.assign_vm(vm_id, nsm_id)
        vms.append((vm_id, vm_dev))

    counters = {"offered": 0, "rejected": 0, "ring_full": 0, "eagain": 0}
    ok_per_vm = {vm_id: 0 for vm_id, _ in vms}
    latencies: List[float] = []

    nsm_core = Core(sim, name="cap.nsm", hz=DEFAULT_COST_MODEL.core_hz)
    service_cycles = _MUX_SERVICE_SEC * nsm_core.hz

    def responder():
        owner = object()
        qs = nsm_dev.queue_sets[0]
        job_ring, send_ring = nsm_dev.consume_rings(qs)
        completion_ring, _ = nsm_dev.produce_rings(qs)
        scratch: list = []
        backlog: list = []
        while True:
            progressed = False
            if backlog:
                pushed = False
                while backlog and completion_ring.try_push(backlog[0],
                                                           owner=owner):
                    backlog.pop(0)
                    pushed = True
                if pushed:
                    nsm_dev.ring_doorbell()
                    progressed = True
            n = job_ring.drain_into(scratch, 64, owner=owner)
            n += send_ring.drain_into(scratch, 64, owner=owner, start=n)
            if n:
                progressed = True
                # The per-op stack cost makes this consumer, not the
                # switch, the congestion point (the §7 regime).
                yield nsm_core.execute(n * service_cycles, "cap.service")
                for i in range(n):
                    nqe = scratch[i]
                    scratch[i] = None
                    # Echo, preserving the issue stamp so the drainer
                    # (and the governor's EWMA) see end-to-end latency.
                    backlog.append(NQE_POOL.acquire(
                        NqeOp.OP_RESULT, nqe.vm_id, nqe.queue_set_id,
                        nqe.socket_id, token=nqe.token,
                        created_at=nqe.created_at))
                    NQE_POOL.release(nqe)
            if not progressed:
                if backlog:
                    yield sim.timeout(1e-6)
                else:
                    yield nsm_dev.wait_for_inbound()

    def drainer(vm_id, vm_dev):
        owner = object()
        qs = vm_dev.queue_sets[0]
        completion_ring, _ = vm_dev.consume_rings(qs)
        scratch: list = []
        while True:
            n = completion_ring.drain_into(scratch, 64, owner=owner)
            if not n:
                yield vm_dev.wait_for_inbound()
                continue
            for i in range(n):
                nqe = scratch[i]
                scratch[i] = None
                if nqe.op_data < 0:
                    counters["eagain"] += 1
                else:
                    ok_per_vm[vm_id] += 1
                    if nqe.created_at > 0.0:
                        latencies.append(sim.now - nqe.created_at)
                NQE_POOL.release(nqe)

    period = n_vms / rate
    ops_per_vm = max(1, int(round(window / period)))

    def producer(vm_id, vm_dev, index):
        owner = object()
        qs = vm_dev.queue_sets[0]
        control_ring, _ = vm_dev.produce_rings(qs)
        # Stagger producers evenly inside one period.
        yield sim.timeout(index * period / n_vms)
        for _ in range(ops_per_vm):
            counters["offered"] += 1
            if not governor.admit(vm_id, NqeOp.SETSOCKOPT):
                counters["rejected"] += 1
            else:
                nqe = NQE_POOL.acquire(NqeOp.SETSOCKOPT, vm_id, 0, 1,
                                       created_at=sim.now)
                if control_ring.try_push(nqe, owner=owner):
                    vm_dev.ring_doorbell()
                else:
                    NQE_POOL.release(nqe)
                    counters["ring_full"] += 1
            yield sim.timeout(period)

    sim.process(responder())
    for vm_id, vm_dev in vms:
        sim.process(drainer(vm_id, vm_dev))
    for index, (vm_id, vm_dev) in enumerate(vms):
        sim.process(producer(vm_id, vm_dev, index))
    sim.run(until=window * 1.5 + 0.005)

    ok = sum(ok_per_vm.values())
    dropped = (engine.nqes_dropped + engine.nqes_dropped_backpressure)
    resolved = (ok + counters["rejected"] + counters["ring_full"]
                + counters["eagain"] + dropped)
    goodput = ok / window
    latencies.sort()
    return {
        "rate": rate,
        "offered": counters["offered"],
        "ok": ok,
        "rejected": counters["rejected"],
        "ring_full": counters["ring_full"],
        "eagain": counters["eagain"],
        "dropped": dropped,
        "hung_ops": max(0, counters["offered"] - resolved),
        "goodput": goodput,
        "loss": max(0.0, 1.0 - goodput / rate),
        "p50_us": round(_percentile(latencies, 0.50) * 1e6, 3),
        "p99_us": round(_percentile(latencies, 0.99) * 1e6, 3),
        "per_vm_ok": {str(vm_id): n for vm_id, n in ok_per_vm.items()},
        "overload": governor.stats(),
        "events_processed": sim.events_processed,
        "pool_delta": NQE_POOL.outstanding - pool_before,
    }


# -- scenarios: rps / failover (full-host echo capacity) ---------------------


def _measure_echo(rate: float, seed: int, window: float, n_vms: int,
                  crash: bool) -> dict:
    """Closed-loop paced echo round trips through the full datapath.

    Each of ``n_vms`` client VMs runs one worker that tries to hold the
    aggregate pace; loss is the goodput deficit against the offered
    rate (a lagging worker *is* the overload signal for a closed loop).
    With ``crash`` the serving NSM dies mid-window and the clients ride
    the failover onto the standby.
    """
    from repro.core.host import NetKernelHost
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.net.fabric import Network

    pool_before = NQE_POOL.outstanding
    sim = Simulator()
    network = Network(sim)
    host = NetKernelHost(sim, network)
    host.add_nsm("nsm-a", vcpus=1, stack="kernel")
    host.add_nsm("nsm-b", vcpus=1, stack="kernel")
    host.add_nsm("nsm-srv", vcpus=1, stack="kernel")
    host.coreengine.enable_overload_control()
    server_vm = host.add_vm("server", vcpus=1, nsm=host.nsms["nsm-srv"])
    clients = []
    for i in range(n_vms):
        clients.append(host.add_vm(
            f"client{i}", vcpus=1, nsm=host.nsms["nsm-a"],
            op_timeout=10e-3, max_op_retries=2, backoff_seed=seed))
    if crash:
        host.enable_failover(heartbeat_interval=2e-3,
                             detection_timeout=8e-3)
        plan = FaultPlan(seed=seed, name="capacity-failover")
        plan.nsm_crash(0.5 * window, "nsm-a")
        FaultInjector(sim, host, plan).arm()

    counters = {"offered": 0, "timeouts": 0, "sheds": 0, "errors": 0}
    ok_per_vm: Dict[int, int] = {vm.vm_id: 0 for vm in clients}
    latencies: List[float] = []
    finished = [0]

    server_api = host.socket_api(server_vm)

    def echo_server():
        def echo(conn):
            try:
                while True:
                    data = yield from server_api.recv(conn, 64 * 1024)
                    if not data:
                        break
                    yield from server_api.send(conn, data)
            except SocketError:
                pass

        listener = yield from server_api.socket()
        yield from server_api.bind(listener, _ECHO_PORT)
        yield from server_api.listen(listener, backlog=128)
        while True:
            conn = yield from server_api.accept(listener)
            server_vm.spawn(echo(conn))

    interval = n_vms / rate

    def client_worker(vm, api, index):
        sock = None
        next_slot = _ECHO_WARMUP + index * interval / n_vms
        t_end = _ECHO_WARMUP + window
        while True:
            if sim.now < next_slot:
                yield sim.timeout(next_slot - sim.now)
            if sim.now >= t_end:
                break
            next_slot += interval
            counters["offered"] += 1
            issued_at = sim.now
            try:
                if sock is None:
                    sock = yield from api.socket()
                    yield from api.connect(sock, ("nsm-srv", _ECHO_PORT))
                yield from api.send(sock, bytes(_ECHO_BYTES))
                got = 0
                while got < _ECHO_BYTES:
                    data = yield from api.recv(sock, _ECHO_BYTES - got)
                    if not data:
                        raise SocketError("peer closed mid-reply")
                    got += len(data)
                ok_per_vm[vm.vm_id] += 1
                latencies.append(sim.now - issued_at)
            except TryAgainError:
                counters["sheds"] += 1
            except TimedOutError:
                counters["timeouts"] += 1
                sock = yield from _scrap(api, sock)
            except SocketError:
                counters["errors"] += 1
                sock = yield from _scrap(api, sock)
        if sock is not None:
            try:
                yield from api.close(sock)
            except SocketError:
                pass
        finished[0] += 1

    def _scrap(api, sock):
        if sock is not None:
            try:
                yield from api.close(sock)
            except SocketError:
                pass
        return None

    server_vm.spawn(echo_server())
    for index, vm in enumerate(clients):
        vm.spawn(client_worker(vm, host.socket_api(vm), index))
    # Generous drain: a worker blocked at t_end resolves through its
    # full deadline/backoff ladder before the hung-op census below.
    drain = _ECHO_WARMUP + window + 0.15
    if crash:
        sim.call_at(drain - 0.01,
                    host.coreengine.disable_health_monitor)
    sim.run(until=drain)

    ok = sum(ok_per_vm.values())
    goodput = ok / window
    latencies.sort()
    engine = host.coreengine
    return {
        "rate": rate,
        "offered": counters["offered"],
        "ok": ok,
        "rejected": counters["sheds"],
        "ring_full": 0,
        "eagain": counters["sheds"],
        "timeouts": counters["timeouts"],
        "errors": counters["errors"],
        "dropped": (engine.nqes_dropped
                    + engine.nqes_dropped_backpressure),
        "hung_ops": len(clients) - finished[0],
        "goodput": goodput,
        "loss": max(0.0, 1.0 - goodput / rate),
        "p50_us": round(_percentile(latencies, 0.50) * 1e6, 3),
        "p99_us": round(_percentile(latencies, 0.99) * 1e6, 3),
        "per_vm_ok": {str(vm_id): n
                      for vm_id, n in sorted(ok_per_vm.items())},
        "overload": engine.overload.stats(),
        "events_processed": sim.events_processed,
        "pool_delta": NQE_POOL.outstanding - pool_before,
    }


# -- the search --------------------------------------------------------------


def run_capacity(scenario: str = "mux", seed: int = 0,
                 window: Optional[float] = None, n_vms: int = 4,
                 rate_lo: Optional[float] = None,
                 rate_hi: Optional[float] = None,
                 iterations: int = 6,
                 ndr_loss: float = 0.01,
                 pdr_loss: float = 0.10) -> dict:
    """Binary-search NDR and PDR for one scenario; check degradation.

    The search runs a fixed ``iterations`` bisections per threshold
    (measurements are memoized by rate, and the PDR search reuses the
    NDR search's probes), so the step sequence — and therefore the
    result fingerprint — is a pure function of the arguments.
    """
    if scenario not in SCENARIOS:
        raise ConfigurationError(
            f"unknown capacity scenario {scenario!r}; choose from "
            f"{sorted(SCENARIOS)}")
    if n_vms < 2:
        raise ConfigurationError("capacity search needs n_vms >= 2 "
                                 "(fairness is part of the contract)")
    lo_default, hi_default, window_default = SCENARIOS[scenario]
    window = float(window if window is not None else window_default)
    lo = float(rate_lo if rate_lo is not None else lo_default)
    hi = float(rate_hi if rate_hi is not None else hi_default)
    if not 0 < lo < hi:
        raise ConfigurationError(
            f"need 0 < rate_lo < rate_hi (got {lo} .. {hi})")

    if scenario == "mux":
        def run_step(rate):
            return _measure_mux(rate, seed, window, n_vms)
    else:
        def run_step(rate):
            return _measure_echo(rate, seed, window, n_vms,
                                 crash=(scenario == "failover"))

    memo: Dict[float, dict] = {}
    steps: List[dict] = []

    def measure(rate: float) -> dict:
        key = round(rate, 6)
        step = memo.get(key)
        if step is None:
            step = run_step(key)
            memo[key] = step
            steps.append(step)
        return step

    def search(threshold: float) -> Optional[float]:
        """Highest probed rate whose loss stays within ``threshold``."""
        if measure(lo)["loss"] > threshold:
            return None
        if measure(hi)["loss"] <= threshold:
            return hi
        low, high = lo, hi
        for _ in range(iterations):
            mid = round((low + high) / 2, 6)
            if measure(mid)["loss"] <= threshold:
                low = mid
            else:
                high = mid
        return low

    ndr_rate = search(ndr_loss)
    pdr_rate = search(pdr_loss)

    def _point(rate: Optional[float]) -> Optional[dict]:
        if rate is None:
            return None
        step = memo[round(rate, 6)]
        return {"rate": step["rate"], "goodput": round(step["goodput"], 3),
                "loss": round(step["loss"], 6),
                "p50_us": step["p50_us"], "p99_us": step["p99_us"]}

    graceful = None
    if ndr_rate is not None:
        plateau = memo[round(ndr_rate, 6)]
        twice = measure(min(2 * ndr_rate, 2 * hi))
        ratio = (twice["goodput"] / plateau["goodput"]
                 if plateau["goodput"] > 0 else 0.0)
        jain = jain_fairness(twice["per_vm_ok"].values())
        graceful = {
            "rate": twice["rate"],
            "goodput": round(twice["goodput"], 3),
            "goodput_ratio": round(ratio, 4),
            "jain_fairness": round(jain, 4),
            "hung_ops": twice["hung_ops"],
            "pass": bool(ratio >= 0.8 and jain >= 0.9
                         and twice["hung_ops"] == 0),
        }

    # Round the float-bearing fields so the fingerprint is stable
    # against formatting, then fingerprint the full step sequence.
    fp_steps = [dict(step, goodput=round(step["goodput"], 3),
                     loss=round(step["loss"], 6),
                     overload=dict(step["overload"]))
                for step in steps]
    result = {
        "scenario": scenario,
        "seed": seed,
        "window": window,
        "n_vms": n_vms,
        "rate_lo": lo,
        "rate_hi": hi,
        "iterations": iterations,
        "ndr_loss": ndr_loss,
        "pdr_loss": pdr_loss,
        "ndr": _point(ndr_rate),
        "pdr": _point(pdr_rate),
        "graceful": graceful,
        "steps": fp_steps,
        "events_processed": sum(s["events_processed"] for s in steps),
        "leaks": [f"step rate={s['rate']:g}: pool delta "
                  f"{s['pool_delta']:+d}"
                  for s in steps if s["pool_delta"] != 0],
        "fingerprint": switch_fingerprint(fp_steps),
    }
    return result
