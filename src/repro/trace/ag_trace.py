"""Synthetic application-gateway (AG) traffic traces (Fig. 7, §6.1).

The paper uses a September-2018 trace of tens of thousands of AGs from a
large cloud; that data is proprietary, so we generate traces with the
properties the paper reports and Fig. 7 shows:

* values are RPS normalized to the AG's provisioned peak capacity (100);
* **average utilization is very low most of the time** (a few percent);
* traffic is **bursty**: rare, short spikes reach 40–120% of capacity;
* bursts of different AGs are mostly uncorrelated, which is what makes
  consolidating them onto one NSM profitable.

Each AG gets a low baseline level with multiplicative noise plus a small
Poisson number of bursts with exponential decay.  Everything is
deterministic under a seed.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence


class AgTrace:
    """One AG's per-interval normalized RPS series."""

    def __init__(self, name: str, values: Sequence[float],
                 interval_sec: float = 60.0):
        if not len(values):
            raise ValueError("trace must have >=1 interval")
        self.name = name
        self.values = [max(0.0, float(v)) for v in values]
        self.interval_sec = interval_sec

    def __len__(self) -> int:
        return len(self.values)

    @property
    def peak(self) -> float:
        return max(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def mean_utilization(self) -> float:
        """Mean load relative to provisioned capacity (100)."""
        return self.mean / 100.0

    def quantile(self, q: float) -> float:
        ordered = sorted(self.values)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<AgTrace {self.name} n={len(self)} peak={self.peak:.1f} "
                f"mean={self.mean:.1f}>")


#: Trace profiles: "fleet" matches the broad population (very low mean,
#: rare and mostly modest bursts — ~97% of AGs never burst near their
#: reservation); "hot" matches Fig. 7's three most-utilized AGs (bigger,
#: more frequent bursts approaching provisioned capacity).
PROFILES = {
    "fleet": {"base": (0.3, 1.2), "bursts_per_hour": 0.6,
              "amplitude": (15.0, 60.0), "big_amplitude": (70.0, 110.0),
              "big_fraction": 0.05},
    "hot": {"base": (1.0, 4.0), "bursts_per_hour": 2.5,
            "amplitude": (35.0, 85.0), "big_amplitude": (85.0, 115.0),
            "big_fraction": 0.15},
}


def generate_ag_trace(name: str = "ag", minutes: int = 60, seed: int = 1,
                      profile: str = "fleet",
                      base_level: float = None,
                      bursts_per_hour: float = None) -> AgTrace:
    """One synthetic AG trace with Fig. 7's burstiness envelope."""
    params = PROFILES[profile]
    rng = random.Random(seed)
    if base_level is None:
        base_level = rng.uniform(*params["base"])
    if bursts_per_hour is None:
        bursts_per_hour = params["bursts_per_hour"]
    values = [0.0] * minutes
    # Smooth baseline with multiplicative noise.
    level = base_level
    for minute in range(minutes):
        level = max(0.2, level + rng.gauss(0.0, base_level * 0.15))
        values[minute] = level * rng.uniform(0.7, 1.3)
    # Bursts: Poisson count, exponential decay over a few minutes.
    expected = bursts_per_hour * minutes / 60.0
    n_bursts = _poisson(rng, expected)
    for _ in range(n_bursts):
        start = rng.randrange(minutes)
        if rng.random() < params["big_fraction"]:
            amplitude = rng.uniform(*params["big_amplitude"])
        else:
            amplitude = rng.uniform(*params["amplitude"])
        decay = rng.uniform(0.3, 1.2)  # per-minute decay rate
        for offset in range(minutes - start):
            contribution = amplitude * math.exp(-decay * offset)
            if contribution < 1.0:
                break
            values[start + offset] += contribution
    values = [min(v, 120.0) for v in values]
    return AgTrace(name, values)


def generate_fleet(n_ags: int, minutes: int = 60, seed: int = 7,
                   profile: str = "fleet") -> List[AgTrace]:
    """A fleet of independent AG traces."""
    return [
        generate_ag_trace(f"ag{i}", minutes, seed=seed * 1009 + i,
                          profile=profile)
        for i in range(n_ags)
    ]


def most_utilized(fleet: Sequence[AgTrace], count: int) -> List[AgTrace]:
    """The ``count`` AGs with the highest mean load (Fig. 7 picks the
    three most utilized — the *least* favourable case for multiplexing)."""
    return sorted(fleet, key=lambda t: t.mean, reverse=True)[:count]


def aggregate(traces: Sequence[AgTrace]) -> List[float]:
    """Per-interval sum across traces (the NSM's offered load)."""
    if not traces:
        return []
    length = len(traces[0])
    if any(len(t) != length for t in traces):
        raise ValueError("traces must have equal length")
    return [sum(t.values[i] for t in traces) for i in range(length)]


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's algorithm; fine for the small lambdas used here."""
    threshold = math.exp(-lam)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
