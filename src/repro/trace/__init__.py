"""Synthetic traces standing in for the paper's proprietary cloud data."""

from repro.trace.ag_trace import AgTrace, generate_ag_trace, generate_fleet

__all__ = ["AgTrace", "generate_ag_trace", "generate_fleet"]
