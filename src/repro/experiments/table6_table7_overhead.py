"""Tables 6 and 7: NetKernel's CPU overhead normalized over Baseline.

Table 6 (bulk throughput, 8 streams x 8KB): the extra hugepage→NSM copy
grows costlier with load (memory-bandwidth contention), so the ratio
rises with throughput.  Table 7 (short connections, 64B): per-request
NQE overhead is small and flat.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, qualitative
from repro.model import overhead


def run_table6() -> ExperimentResult:
    """Regenerate Table 6: overhead vs throughput."""
    rows = []
    for gbps, paper in sorted(overhead.PAPER_TABLE6.items()):
        measured = overhead.overhead_ratio_throughput(gbps)
        rows.append([gbps, round(measured, 2), paper,
                     qualitative(measured, paper)])
    notes = ("rising-with-throughput shape reproduced (extra copy is "
             "memory-bandwidth bound); our NQE fixed costs are charged "
             "conservatively, lifting the low-load end above the paper's")
    return ExperimentResult(
        "table6", "Normalized CPU usage vs throughput (NetKernel/Baseline)",
        ["gbps", "measured", "paper", "vs_paper"], rows, notes=notes)


def run_table7() -> ExperimentResult:
    """Regenerate Table 7: overhead vs request rate."""
    rows = []
    for rps, paper in sorted(overhead.PAPER_TABLE7.items()):
        measured = overhead.overhead_ratio_rps(rps)
        rows.append([int(rps / 1e3), round(measured, 3), paper,
                     qualitative(measured, paper)])
    notes = ("flat, mild overhead (paper: 1.05-1.09; per-request NQE "
             "costs are small next to connection setup/teardown)")
    return ExperimentResult(
        "table7", "Normalized CPU usage vs request rate (NetKernel/Baseline)",
        ["krps", "measured", "paper", "vs_paper"], rows, notes=notes)


# Canonical entry point: every experiment module exposes ``run``.
run = run_table6
