"""Fig. 14: single TCP stream receive throughput vs message size."""

from repro.experiments.streams import message_size_sweep


def run():
    """Regenerate Fig. 14 (single-stream receive)."""
    return message_size_sweep(
        "fig14", "Single-stream receive throughput (kernel-stack NSM, 1 vCPU)",
        direction="recv", streams=1, paper_top_gbps=13.6)
