"""Fig. 15: 8-stream TCP send throughput vs message size."""

from repro.experiments.streams import message_size_sweep


def run():
    """Regenerate Fig. 15 (8-stream send)."""
    return message_size_sweep(
        "fig15", "8-stream send throughput (kernel-stack NSM, 1 vCPU)",
        direction="send", streams=8, paper_top_gbps=55.2)
