"""Fig. 9: VM-level fair bandwidth sharing (use case 2, §6.2).

Two VMs share a bottleneck: VM A is well-behaved with 8 flows; VM B is
selfish and opens 8, 16, or 24 flows.  Baseline (per-flow CUBIC) lets B
grab bandwidth proportional to its flow count; NetKernel with the
VM-level congestion-control NSM (one shared window per VM, each flow
limited to 1/n of it) keeps the split at 50/50 regardless.

Runs the functional TCP engine packet-by-packet over a shared bottleneck
link (rates scaled down from the testbed's, which only rescales the
absolute numbers — the *shares* are what Fig. 9 plots).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.report import ExperimentResult
from repro.net.fabric import Network
from repro.net.link import Link
from repro.sim.engine import Simulator
from repro.stack.cc.cubic import CubicCC
from repro.stack.cc.vmcc import VmCC, VmSharedWindow
from repro.stack.tcp.engine import TcpEngine
from repro.units import gbps, mbps, usec

CHUNK = 64 * 1024


def _bulk_flows(engine: TcpEngine, count: int, sink: Tuple[str, int]) -> None:
    """Open ``count`` connections that keep the send buffer full."""

    def keep_full(conn) -> None:
        while True:
            accepted = engine.send(conn, b"x" * CHUNK)
            if accepted < CHUNK:
                break

    for _ in range(count):
        conn = engine.socket()
        conn.on_connected = keep_full
        conn.on_writable = keep_full
        engine.connect(conn, sink)


#: A 2x MSS keeps packet counts (and wall time) down without changing
#: the bandwidth shares Fig. 9 is about.
MSS = 2896


def _run_one(selfish_flows: int, vm_level_cc: bool,
             duration: float = 1.5,
             bottleneck_bps: float = mbps(300)) -> Tuple[float, float]:
    """Returns (VM A bytes, VM B bytes) delivered after warmup."""
    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(10),
                      default_delay_sec=usec(50))
    network.set_bottleneck(Link(sim, bottleneck_bps, delay_sec=usec(100),
                                queue_bytes=256 * 1024, name="bottleneck"))

    if vm_level_cc:
        shared_a, shared_b = VmSharedWindow(MSS), VmSharedWindow(MSS)

        def cc_a(mss):
            return VmCC(mss, shared=shared_a)

        def cc_b(mss):
            return VmCC(mss, shared=shared_b)
    else:
        def cc_a(mss):
            return CubicCC(mss, clock=lambda: sim.now)

        cc_b = cc_a

    vm_a = TcpEngine(sim, network, "vmA", cc_factory=cc_a, mss=MSS)
    vm_b = TcpEngine(sim, network, "vmB", cc_factory=cc_b, mss=MSS)
    sink_engine = TcpEngine(sim, network, "sink", mss=MSS)

    received: Dict[str, int] = {"vmA": 0, "vmB": 0}
    warmup = duration / 3.0

    listener = sink_engine.socket()
    sink_engine.bind(listener, 5001)
    sink_engine.listen(listener, backlog=128)

    def on_accept(lst) -> None:
        while True:
            child = sink_engine.accept(lst)
            if child is None:
                return
            src_host = child.remote[0]

            def drain(conn, src=src_host) -> None:
                while True:
                    data = sink_engine.recv(conn, 1 << 20)
                    if not data:
                        break
                    if sim.now >= warmup:
                        received[src] += len(data)

            child.on_readable = drain

    listener.on_accept_ready = on_accept

    _bulk_flows(vm_a, 8, ("sink", 5001))
    _bulk_flows(vm_b, selfish_flows, ("sink", 5001))
    sim.run(until=duration)
    return float(received["vmA"]), float(received["vmB"])


def run(duration: float = 1.5) -> ExperimentResult:
    """Regenerate Fig. 9: bandwidth shares under a selfish VM."""
    rows: List[List] = []
    for ratio, selfish in (("1:1", 8), ("2:1", 16), ("3:1", 24)):
        base_a, base_b = _run_one(selfish, vm_level_cc=False,
                                  duration=duration)
        nk_a, nk_b = _run_one(selfish, vm_level_cc=True, duration=duration)
        base_share = 100.0 * base_a / (base_a + base_b)
        nk_share = 100.0 * nk_a / (nk_a + nk_b)
        rows.append([ratio, selfish, round(base_share, 1),
                     round(nk_share, 1)])
    notes = ("VM A's share of aggregate throughput: Baseline degrades "
             "toward flow-count proportionality (50/33/25%); the VMCC "
             "NSM holds ~50% regardless — the Fig. 9 result")
    return ExperimentResult(
        "fig9", "VM A (8 flows) share vs selfish VM B flow count",
        ["flows_ratio", "vmB_flows", "baseline_vmA_share_pct",
         "netkernel_vmA_share_pct"], rows, notes=notes)
