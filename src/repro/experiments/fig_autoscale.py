"""Autoscaling experiment: NSM fleet elasticity on the AG-trace signal.

Not a paper figure — it closes the loop the paper's §7.3 multiplexing
results imply: if one NSM can serve many VMs, then the NSM population
should track offered load, not peak provisioning.  An
:class:`~repro.core.autoscaler.NsmAutoscaler` watches the per-minute
aggregate of a generated AG fleet (Fig. 7's model) and spawns/retires
NSMs, draining VMs with live migration before every retirement.

Two scenarios run on a sharded CoreEngine: a clean run, and a chaos run
where the busiest autoscaler-spawned NSM is crashed mid-rebalance and
recovery rides the PR 3 quarantine/failover path.  Both must end with

* zero VMs assigned to an inactive NSM (checked at every job boundary),
* zero leaked TCP migration-forwarding entries once traffic stops
  (counting the engines of retired NSMs too), and
* the NQE pool back in balance (outstanding delta zero).

The echo workload keeps real connections alive across every migration,
so the drain path is exercised with state to move, not empty tables.
"""

from __future__ import annotations

from repro.core.autoscaler import (AutoscalePolicy, assignment_violations,
                                   forward_entry_count, forward_leak_count)
from repro.core.host import NetKernelHost
from repro.core.nqe import NQE_POOL
from repro.experiments.report import ExperimentResult
from repro.net.fabric import Network
from repro.sim.engine import Simulator
from repro.trace import ag_trace

#: One autoscaler tick of simulated time stands in for one trace minute
#: (compressed so the experiment runs in milliseconds of sim time).
TICK_SEC = 0.01


def run_autoscale_scenario(seed: int = 0, ticks: int = 14,
                           n_clients: int = 6, n_ags: int = 24,
                           ce_shards: int = 2, chaos: bool = False,
                           max_nsms: int = 4) -> dict:
    """One autoscaling run; returns counters + invariant checks."""
    sim = Simulator()
    host = NetKernelHost(sim, Network(sim), ce_shards=ce_shards)
    nsm0 = host.add_nsm("nsm0", vcpus=1, stack="kernel")
    host.enable_failover(heartbeat_interval=1e-3, detection_timeout=5e-3)

    # The load signal: per-minute aggregate of an AG fleet (Fig. 7
    # model), one trace minute per TICK_SEC of simulated time.
    signal = ag_trace.aggregate(
        ag_trace.generate_fleet(n_ags, minutes=ticks, seed=seed + 1))
    auto = host.enable_autoscaler(
        signal, interval_sec=TICK_SEC,
        policy=AutoscalePolicy(nsm_capacity=30.0, headroom=1.2,
                               min_nsms=1, max_nsms=max_nsms),
        provision_delay_sec=1e-3)

    server = host.add_vm("server", nsm=nsm0)
    clients = [host.add_vm(f"c{i}") for i in range(n_clients)]
    stop = {"flag": False}
    stats = {"rtts": 0, "echoed": 0, "client_errors": 0,
             "server_errors": 0, "listener_closed": 0}
    open_socks = []  # (api, sock) pairs a sweeper can close at shutdown

    def server_app(api):
        lsock = yield from api.socket()
        yield from api.bind(lsock, 80)
        yield from api.listen(lsock)
        while not stop["flag"]:
            conn = api.accept_nonblocking(lsock)
            if conn is None:
                yield sim.timeout(1e-4)
                continue
            sim.process(echo(api, conn))
        yield from api.close(lsock)
        stats["listener_closed"] += 1

    def echo(api, conn):
        try:
            data = yield from api.recv(conn, 64)
            yield from api.send(conn, b"R" * len(data))
            yield from api.close(conn)
            stats["echoed"] += 1
        except Exception:
            stats["server_errors"] += 1

    def client_app(api, idx):
        yield sim.timeout(1e-4 * (idx + 1))
        while not stop["flag"]:
            entry = None
            try:
                sock = yield from api.socket()
                entry = (api, sock)
                open_socks.append(entry)
                yield from api.connect(sock, ("nsm0", 80))
                yield from api.send(sock, b"Q" * 32)
                yield from api.recv(sock, 64)
                yield from api.close(sock)
                stats["rtts"] += 1
            except Exception:
                # Crash fallout (ECONNRESET / refused): count and retry.
                stats["client_errors"] += 1
            finally:
                if entry is not None and entry in open_socks:
                    open_socks.remove(entry)
            yield sim.timeout(2e-3)

    server.spawn(server_app(host.socket_api(server)))
    for index, client in enumerate(clients):
        client.spawn(client_app(host.socket_api(client), index))

    duration = ticks * TICK_SEC
    if chaos:
        def crash_busiest():
            managed = sorted(auto.managed.items())
            if not managed:
                return
            loads = host.coreengine.table.nsm_loads()
            _name, victim = max(
                managed, key=lambda item: loads.get(item[1].nsm_id, 0))
            victim.servicelib.crash()
        # Mid-run, while the fleet is scaled up and rebalancing.
        sim.call_at(0.4 * duration, crash_busiest)

    sim.call_at(duration, lambda: stop.update(flag=True))

    def sweep_stragglers():
        # A real client would run with a read timeout; model that by
        # aborting whatever the shutdown left blocked in recv (e.g.
        # conns whose server half died silently in the chaos crash).
        for api, sock in list(open_socks):
            sim.process(api.close(sock))
    sim.call_at(duration + 0.02, sweep_stragglers)
    sim.call_at(duration + 0.04, auto.stop)

    pool_before = NQE_POOL.outstanding
    sim.run(until=duration + 0.08)

    report = auto.report()
    return {
        "workload": stats,
        "autoscaler": report,
        "violations": report["violations"] + [
            f"end-state: VM {vm} on inactive NSM {nsm}"
            for vm, nsm in assignment_violations(host)],
        "forward_leaks": forward_leak_count(host, auto.retired_stacks),
        "forward_entries": forward_entry_count(host, auto.retired_stacks),
        "table_entries": len(host.coreengine.table),
        "pool_delta": NQE_POOL.outstanding - pool_before,
        "handoffs": getattr(host.coreengine, "handoffs_in", 0),
        "peak_nsms": max_nsms_seen(report),
        # End-state shard occupancy (shard-aware spawn should leave the
        # surviving fleet spread one-NSM-per-shard before doubling up).
        "shard_loads": report["shard_loads"],
    }


def max_nsms_seen(report: dict) -> int:
    """Fleet size at the end of the run (static floor + net spawns)."""
    return 1 + report["counters"]["spawned"] - report["counters"]["retired"] \
        if report["counters"]["spawned"] else 1


def run(seed: int = 0, ticks: int = 14, ce_shards: int = 2,
        n_clients: int = 6, n_ags: int = 24,
        max_nsms: int = 4) -> ExperimentResult:
    """Clean + chaos autoscaling runs; fails on any invariant breach."""
    rows = []
    problems = []
    for label, chaos in (("clean", False), ("nsm-crash", True)):
        result = run_autoscale_scenario(seed=seed, ticks=ticks,
                                        ce_shards=ce_shards, chaos=chaos,
                                        n_clients=n_clients, n_ags=n_ags,
                                        max_nsms=max_nsms)
        counters = result["autoscaler"]["counters"]
        if result["violations"]:
            problems.append(f"{label}: {result['violations']}")
        if result["forward_leaks"]:
            problems.append(
                f"{label}: {result['forward_leaks']} leaked forwards")
        if not chaos and result["forward_entries"]:
            # A clean run closes everything, so even live routing state
            # must be gone; chaos may leave FIN_WAIT conns retransmitting
            # toward the dead NSM until TCP gives up (not a leak).
            problems.append(
                f"{label}: {result['forward_entries']} forward entries "
                "survived a clean shutdown")
        if result["pool_delta"]:
            problems.append(f"{label}: pool delta {result['pool_delta']}")
        if counters["migrations"] == 0:
            problems.append(f"{label}: autoscaler never migrated a VM")
        shard_loads = result["shard_loads"] or {}
        rows.append([
            label,
            result["workload"]["rtts"],
            result["workload"]["client_errors"],
            counters["spawned"],
            counters["retired"],
            counters["migrations"],
            counters["migration_failures"],
            result["forward_leaks"],
            result["forward_entries"],
            len(result["violations"]),
            result["pool_delta"],
            sum(1 for row in shard_loads.values() if row["nsms"]),
        ])
    notes = ("NSM fleet tracked the AG aggregate up and back down; every "
             "retirement drained through live migration; chaos crash "
             "recovered via quarantine + reap with all invariants intact"
             if not problems else "; ".join(problems))
    return ExperimentResult(
        "fig-autoscale",
        "NSM autoscaling on the AG-trace load signal (clean + chaos)",
        ["scenario", "rtts", "client_errors", "spawned", "retired",
         "migrations", "migration_failures", "leaked_forwards",
         "live_forward_entries", "violations", "pool_delta",
         "nsm_shards"],
        rows, notes=notes)
