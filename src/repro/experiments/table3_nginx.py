"""Table 3: unmodified nginx under ab, kernel-stack NSM vs mTCP NSM.

The paper's use case 3 (§6.3): NetKernel runs nginx over mTCP without any
API change; mTCP gives 1.4x-1.9x over the kernel stack NSM.  ab drives a
single listening port (no SO_REUSEPORT), so the kernel stack pays
shared-accept-queue contention as core counts grow.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, qualitative
from repro.model import throughput as tp


def run() -> ExperimentResult:
    """Regenerate Table 3: nginx over kernel vs mTCP NSMs."""
    rows = []
    for vcpus in (1, 2, 4):
        kernel = tp.requests_per_second("netkernel", stack="kernel",
                                        vcpus=vcpus, app="nginx",
                                        reuseport=False)
        mtcp = tp.requests_per_second("netkernel", stack="mtcp",
                                      vcpus=vcpus, app="nginx",
                                      reuseport=False)
        paper_kernel = tp.PAPER["table3_kernel_rps"][vcpus]
        paper_mtcp = tp.PAPER["table3_mtcp_rps"][vcpus]
        rows.append([
            vcpus,
            round(kernel / 1e3, 1), round(paper_kernel / 1e3, 1),
            qualitative(kernel, paper_kernel),
            round(mtcp / 1e3, 1), round(paper_mtcp / 1e3, 1),
            qualitative(mtcp, paper_mtcp),
            round(mtcp / kernel, 2),
        ])
    notes = ("mTCP/kernel speedup column reproduces the paper's 1.4x-1.9x "
             "band; kernel rows are accept-queue bound, mTCP rows are "
             "bound by nginx's own application logic")
    return ExperimentResult(
        "table3", "nginx RPS: kernel vs mTCP NSM (ab, 64B, conc 100)",
        ["vcpus", "kernel_krps", "paper_kernel", "k_vs_paper",
         "mtcp_krps", "paper_mtcp", "m_vs_paper", "mtcp_speedup"],
        rows, notes=notes)
