"""Fig. 21: isolation of VMs sharing one NSM (§7.6).

Three VMs share a kernel-stack NSM whose VF is capped at 10G: VM1 is
rate-limited to 1 Gbps, VM2 to 500 Mbps, VM3 is uncapped.  They arrive
and depart at different times; CoreEngine's round-robin polling plus
per-VM token buckets must hold VM1/VM2 at their caps while VM3 takes all
remaining capacity (work conservation).

This is a full functional NetKernel run.  ``scale`` shrinks rates (and
``time_factor`` the schedule) so the packet-level simulation stays fast;
reported throughput is rescaled to the paper's units.  The paper's
schedule: VM1 joins at 0s and leaves at 25s; VM2 4.5–21s; VM3 8–30s.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.host import NetKernelHost
from repro.experiments.report import ExperimentResult
from repro.net.fabric import Network
from repro.sim.engine import Simulator
from repro.stack.tcp.engine import TcpEngine
from repro.units import gbps, usec

CHUNK = 64 * 1024

SCHEDULE = (
    ("vm1", 0.0, 25.0, 1.0e9),    # cap 1 Gbps
    ("vm2", 4.5, 21.0, 0.5e9),    # cap 500 Mbps
    ("vm3", 8.0, 30.0, None),     # uncapped
)


def run(scale: float = 0.05, time_factor: float = 0.15,
        bin_sec: float = 0.1) -> ExperimentResult:
    """Regenerate Fig. 21: the isolation time series (DES)."""
    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(40),
                      default_delay_sec=usec(50))
    host = NetKernelHost(sim, network)
    nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel",
                       nic_rate_bps=10e9 * scale,
                       stack_kwargs={"mss": 16_000})

    # Remote sink, one port per VM so the receiver can attribute bytes.
    sink = TcpEngine(sim, network, "sink", mss=16_000)
    duration = 30.0 * time_factor
    bins = int(duration / bin_sec) + 1
    series: Dict[str, List[float]] = {}

    def make_listener(vm_name: str, port: int) -> None:
        listener = sink.socket()
        sink.bind(listener, port)
        sink.listen(listener, 64)
        series[vm_name] = [0.0] * bins

        def on_accept(lst) -> None:
            while True:
                child = sink.accept(lst)
                if child is None:
                    return

                def drain(conn) -> None:
                    while True:
                        data = sink.recv(conn, 1 << 20)
                        if not data:
                            break
                        index = min(bins - 1, int(sim.now / bin_sec))
                        series[vm_name][index] += len(data)

                child.on_readable = drain

        listener.on_accept_ready = on_accept

    for index, (vm_name, start, stop, cap) in enumerate(SCHEDULE):
        port = 9000 + index
        make_listener(vm_name, port)
        vm = host.add_vm(vm_name, vcpus=1, nsm=nsm)
        if cap is not None:
            host.coreengine.set_bandwidth_limit(vm.vm_id, cap * scale)
        api = host.socket_api(vm)

        def sender(api=api, port=port, start=start * time_factor,
                   stop=stop * time_factor):
            if start > 0:
                yield sim.timeout(start)
            sock = yield from api.socket()
            yield from api.connect(sock, ("sink", port))
            payload = b"d" * CHUNK
            while sim.now < stop:
                yield from api.send(sock, payload)
            yield from api.close(sock)

        vm.spawn(sender())

    sim.run(until=duration + 0.2)

    rows = []
    # The final bin is a clamp target for post-schedule stragglers; skip it.
    for index in range(bins - 1):
        t = index * bin_sec / time_factor  # rescale to paper seconds
        row = [round(t, 2)]
        for vm_name, _s, _e, _cap in SCHEDULE:
            bits = series[vm_name][index] * 8
            row.append(round(bits / bin_sec / scale / 1e9, 3))
        rows.append(row)

    # Steady-state check windows (paper seconds).
    def window_mean(vm_name: str, lo: float, hi: float) -> float:
        lo_b = int(lo * time_factor / bin_sec)
        hi_b = int(hi * time_factor / bin_sec)
        vals = series[vm_name][lo_b:hi_b]
        if not vals:
            return 0.0
        return sum(v * 8 / bin_sec / scale / 1e9 for v in vals) / len(vals)

    notes = (f"steady windows (Gbps, paper-scale): "
             f"VM1[10-20s]={window_mean('vm1', 10, 20):.2f} (cap 1.0), "
             f"VM2[10-20s]={window_mean('vm2', 10, 20):.2f} (cap 0.5), "
             f"VM3[10-20s]={window_mean('vm3', 10, 20):.2f} (~8.5 share), "
             f"VM3[26-29s]={window_mean('vm3', 26, 29):.2f} (~10 alone); "
             f"rates scaled by {scale}, schedule by {time_factor}")
    return ExperimentResult(
        "fig21", "Per-VM throughput under caps sharing a 10G NSM (Gbps)",
        ["t_sec"] + [name for name, *_ in SCHEDULE], rows, notes=notes)
