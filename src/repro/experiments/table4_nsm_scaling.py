"""Table 4: scaling a 1-core VM across multiple 2-vCPU kernel NSMs."""

from repro.experiments.streams import nsm_count_sweep


def run():
    """Regenerate Table 4 (NSM-count scaling)."""
    return nsm_count_sweep()
