"""Table 5: response-time distribution for short connections (§7.7).

The paper runs ab with 1K concurrency against epoll servers and reports
min/mean/stddev/median/max response times for Baseline, NetKernel with
the kernel-stack NSM, and NetKernel with the mTCP NSM.  The key results:
Baseline and NetKernel are indistinguishable (NQE transmission adds no
measurable latency), with a heavy tail from SYN drops at overload; the
mTCP NSM is both faster and dramatically tighter (stddev 0.23 ms vs
~106 ms).

This is a full functional run: a client VM's load generator connects
through NetKernel (or the baseline stack) to a server VM's epoll server;
queueing, accept-backlog overflow, and SYN-retransmission tails all
emerge from the simulation.  ``requests``/``concurrency`` are scaled
down from the paper's 5M/1K for runtime; the distribution *shape* is the
object of interest.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.epoll_server import EpollServer
from repro.apps.load_gen import LoadGenerator
from repro.baseline.host import BaselineHost
from repro.core.host import NetKernelHost
from repro.experiments.report import ExperimentResult
from repro.net.fabric import Network
from repro.sim.engine import Simulator
from repro.units import gbps, usec


def _run_netkernel(stack: str, requests: int, concurrency: int) -> Dict:
    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(100),
                      default_delay_sec=usec(25))
    host = NetKernelHost(sim, network)
    server_nsm = host.add_nsm("srv-nsm", vcpus=1, stack=stack)
    client_nsm = host.add_nsm("cli-nsm", vcpus=2, stack=stack)
    server_vm = host.add_vm("server", vcpus=1, nsm=server_nsm)
    client_vm = host.add_vm("client", vcpus=2, nsm=client_nsm)

    server = EpollServer(sim, host.socket_api(server_vm), port=80,
                         request_size=64, response_size=64,
                         app_cycles_per_request=2_500.0,
                         cores=server_vm.cores)
    server.start(server_vm)

    load = LoadGenerator(sim, host.socket_api(client_vm), ("srv-nsm", 80),
                         total_requests=requests, concurrency=concurrency)
    sim.run(until=0.002)  # let the server finish binding
    load.start(client_vm)
    sim.run(until=120.0)
    return load.stats.latency_summary()


def _run_baseline(requests: int, concurrency: int) -> Dict:
    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(100),
                      default_delay_sec=usec(25))
    host = BaselineHost(sim, network)
    server_vm = host.add_vm("server", vcpus=1, stack="kernel")
    client_vm = host.add_vm("client", vcpus=2, stack="kernel")

    server = EpollServer(sim, host.socket_api(server_vm), port=80,
                         request_size=64, response_size=64,
                         app_cycles_per_request=2_500.0,
                         cores=server_vm.cores)
    server.start(server_vm)

    load = LoadGenerator(sim, host.socket_api(client_vm), ("server", 80),
                         total_requests=requests, concurrency=concurrency)
    sim.run(until=0.002)
    load.start(client_vm)
    sim.run(until=120.0)
    return load.stats.latency_summary()


PAPER_ROWS = {
    "Baseline": {"min": 0, "mean": 16, "stddev": 105.6, "median": 2,
                 "max": 7019},
    "NetKernel": {"min": 0, "mean": 16, "stddev": 105.9, "median": 2,
                  "max": 7019},
    "NetKernel, mTCP NSM": {"min": 3, "mean": 4, "stddev": 0.23,
                            "median": 4, "max": 11},
}


def run(requests: int = 4_000, concurrency: int = 200) -> ExperimentResult:
    """Regenerate Table 5: latency distributions (DES)."""
    measured = {
        "Baseline": _run_baseline(requests, concurrency),
        "NetKernel": _run_netkernel("kernel", requests, concurrency),
        "NetKernel, mTCP NSM": _run_netkernel("mtcp", requests, concurrency),
    }
    rows = []
    for label, summary in measured.items():
        paper = PAPER_ROWS[label]
        rows.append([
            label,
            round(summary["min"], 2), round(summary["mean"], 2),
            round(summary["stddev"], 2), round(summary["median"], 2),
            round(summary["max"], 1),
            f"{paper['mean']}/{paper['stddev']}/{paper['max']}",
        ])
    notes = ("Baseline ≈ NetKernel (NQE path adds no visible latency); "
             "mTCP NSM is tight and fast (small stddev/max) — the paper's "
             "qualitative result.  Absolute values differ: we issue "
             f"{requests} requests at concurrency {concurrency} instead "
             "of 5M at 1K.")
    return ExperimentResult(
        "table5", "Response-time distribution, 64B messages (ms)",
        ["system", "min", "mean", "stddev", "median", "max",
         "paper(mean/std/max)"], rows, notes=notes)
