"""Shared sweep for the bulk-stream figures (13-16, 18, 19; Table 4)."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.report import ExperimentResult, qualitative
from repro.model import throughput as tp

MESSAGE_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)


def message_size_sweep(exp_id: str, title: str, direction: str,
                       streams: int, paper_top_gbps: float,
                       sizes: Sequence[int] = MESSAGE_SIZES) -> ExperimentResult:
    """Figs. 13-16: throughput vs message size, Baseline vs NetKernel,
    1-vCPU VM and 1-vCPU NSM."""
    rows = []
    for size in sizes:
        baseline = tp.stream_throughput_gbps("baseline", direction, size,
                                             streams=streams)
        netkernel = tp.stream_throughput_gbps("netkernel", direction, size,
                                              streams=streams)
        rows.append([size, round(baseline, 2), round(netkernel, 2)])
    top = rows[-1]
    notes = (f"top (16KB): baseline {top[1]} / netkernel {top[2]} Gbps; "
             f"paper top {paper_top_gbps} "
             f"({qualitative(top[2], paper_top_gbps)} vs paper); "
             "NetKernel on par with Baseline at every size")
    return ExperimentResult(exp_id, title,
                            ["msg_size", "baseline_gbps", "netkernel_gbps"],
                            rows, notes=notes)


def vcpu_sweep(exp_id: str, title: str, direction: str,
               vcpus: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
               msg_size: int = 8192, streams: int = 8) -> ExperimentResult:
    """Figs. 18-19: throughput vs vCPUs (VM and NSM scaled together)."""
    rows = []
    for n in vcpus:
        baseline = tp.stream_throughput_gbps("baseline", direction, msg_size,
                                             streams=streams, vm_vcpus=n)
        netkernel = tp.stream_throughput_gbps(
            "netkernel", direction, msg_size, streams=streams,
            vm_vcpus=n, nsm_vcpus=n)
        rows.append([n, round(baseline, 1), round(netkernel, 1)])
    return ExperimentResult(exp_id, title,
                            ["vcpus", "baseline_gbps", "netkernel_gbps"],
                            rows)


def nsm_count_sweep(counts: Sequence[int] = (1, 2, 3, 4)) -> ExperimentResult:
    """Table 4: one 1-core VM served by several 2-vCPU kernel NSMs."""
    rows = []
    for count in counts:
        send = tp.stream_throughput_gbps("netkernel", "send", 8192,
                                         streams=8, vm_vcpus=1, nsm_vcpus=2,
                                         nsm_count=count)
        recv = tp.stream_throughput_gbps("netkernel", "recv", 8192,
                                         streams=8, vm_vcpus=1, nsm_vcpus=2,
                                         nsm_count=count)
        rps = tp.requests_per_second("netkernel", vcpus=2, vm_vcpus=1,
                                     nsm_count=count)
        paper_send = tp.PAPER["table4_send_gbps"][count]
        paper_recv = tp.PAPER["table4_recv_gbps"][count]
        paper_rps = tp.PAPER["table4_rps"][count]
        rows.append([count, round(send, 1), paper_send, round(recv, 1),
                     paper_recv, round(rps / 1e3, 1),
                     round(paper_rps / 1e3, 1)])
    notes = ("send saturates at the VM-side ceiling; recv and RPS scale "
             "near-linearly with NSMs, as in the paper")
    return ExperimentResult(
        "table4", "Scaling with number of 2-vCPU kernel NSMs",
        ["nsms", "send_gbps", "paper_send", "recv_gbps", "paper_recv",
         "krps", "paper_krps"], rows, notes=notes)
