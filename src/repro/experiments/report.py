"""Result container + table formatting for experiment runners."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


class ExperimentResult:
    """Rows regenerated for one paper table/figure, plus paper values."""

    def __init__(self, exp_id: str, title: str,
                 columns: Sequence[str], rows: Sequence[Sequence[Any]],
                 notes: str = ""):
        self.exp_id = exp_id
        self.title = title
        self.columns = list(columns)
        self.rows = [list(row) for row in rows]
        self.notes = notes

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-safe form: everything __init__ took, nothing
        derived.  ``from_dict(to_dict(r))`` preserves ``row_dicts()``
        and ``table_str()`` exactly, which is what lets results survive
        the control-plane RunStore round-trip byte-for-byte."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict` (extra keys are rejected so a
        schema drift shows up as an error, not silent data loss)."""
        extra = set(data) - {"exp_id", "title", "columns", "rows", "notes"}
        if extra:
            raise ValueError(
                f"unknown ExperimentResult fields: {sorted(extra)}")
        return cls(data["exp_id"], data["title"], data["columns"],
                   data["rows"], notes=data.get("notes", ""))

    def row_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def table_str(self) -> str:
        """A monospace table, the way the bench harness prints it."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1000:
                    return f"{value:,.0f}"
                if abs(value) >= 10:
                    return f"{value:.1f}"
                return f"{value:.3f}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ExperimentResult {self.exp_id} rows={len(self.rows)}>"


def obs_stage_table(report: Dict[str, Any]) -> ExperimentResult:
    """Per-stage latency + cycles table from an Observability report
    (the dict returned by ``repro.obs.Observability.report``)."""
    rows = [
        [stage["stage"], stage["count"], stage["p50_us"], stage["p95_us"],
         stage["p99_us"], stage["max_us"], stage["cycles"]]
        for stage in report["stages"]
    ]
    return ExperimentResult(
        "obs", "Per-stage NQE latency (guest -> CE -> NSM -> guest)",
        ["stage", "count", "p50_us", "p95_us", "p99_us", "max_us", "cycles"],
        rows)


def obs_ops_table(report: Dict[str, Any]) -> ExperimentResult:
    """Per-op end-to-end latency table from an Observability report."""
    rows = [
        [op["kind"], op["op"], op["vm"], op["count"], op["p50_us"],
         op["p99_us"], op["max_us"]]
        for op in report["ops"]
    ]
    return ExperimentResult(
        "obs-ops", "Per-op NQE latency by VM",
        ["kind", "op", "vm", "count", "p50_us", "p99_us", "max_us"],
        rows)


def ratio_check(measured: float, paper: float,
                tolerance: float = 0.5) -> bool:
    """True when measured is within ±tolerance (relative) of paper."""
    if paper == 0:
        return measured == 0
    return abs(measured - paper) / abs(paper) <= tolerance


def qualitative(measured: float, paper: float) -> str:
    """A short verdict string for the printed tables."""
    if paper == 0:
        return "n/a"
    delta = (measured - paper) / paper * 100.0
    return f"{delta:+.0f}%"
