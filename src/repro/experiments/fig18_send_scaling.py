"""Fig. 18: send throughput of 8 streams vs number of vCPUs.

Paper: both systems reach line rate with 3 vCPUs.
"""

from repro.experiments.streams import vcpu_sweep


def run():
    """Regenerate Fig. 18 (send scaling with vCPUs)."""
    return vcpu_sweep("fig18", "Send throughput scaling (8 streams, 8KB)",
                      direction="send")
