"""Live-migration experiment: downtime vs live-connection count.

Not a paper figure — §8 of the paper argues that putting the stack in
the virtualized infrastructure makes "live migration of the network
stack" possible: CoreEngine owns the queues and the ConnectionTable, so
it can quiesce a VM's doorbells, move every socket's state to another
NSM, and resume without the guest noticing.  This experiment quantifies
that path in the repro: N concurrent echo streams ride through a
migration from nsm-a to nsm-b for a sweep of stream counts, measuring
the blackout window (simulated downtime reported by CoreEngine) and how
many ops parked during it.

Zero-reset is the acceptance bar: any ECONNRESET, timeout, payload
mismatch, or resource leak fails the experiment.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.report import ExperimentResult
from repro.faults.migration import run_migration

#: Live-connection counts swept (each stream is one established TCP
#: connection at migration time).
STREAM_COUNTS = (1, 25, 50, 100)


def run(duration: float = 0.12, seed: int = 0,
        stream_counts: Sequence[int] = STREAM_COUNTS) -> ExperimentResult:
    """Sweep live-connection count through a mid-traffic migration."""
    rows = []
    problems = []
    for streams in stream_counts:
        result = run_migration(seed=seed, streams=streams,
                               duration=duration)
        counters = result["counters"]
        record = result["migration"]
        if record is None:
            problems.append(
                f"streams={streams}: migration failed "
                f"({result['migration_error']})")
        if counters["resets"] or counters["timeouts"]:
            problems.append(
                f"streams={streams}: guest saw {counters['resets']} "
                f"reset(s), {counters['timeouts']} timeout(s)")
        if counters["mismatches"]:
            problems.append(
                f"streams={streams}: {counters['mismatches']} payload "
                "mismatch(es) across the migration")
        if result["leaks"]:
            problems.append(f"streams={streams} leaks: {result['leaks']}")
        rows.append([
            streams,
            round(record["blackout_sec"] * 1e3, 4) if record else None,
            record["sockets_moved"] if record else 0,
            record["parked_ops"] if record else 0,
            counters["echoes_ok"],
            counters["resets"],
            counters["timeouts"],
        ])
    notes = ("blackout grows linearly with live connections (per-socket "
             "export/import cost on top of a fixed quiesce/drain floor); "
             "every stream rode through with zero resets and intact "
             "payloads" if not problems else "; ".join(problems))
    return ExperimentResult(
        "fig-migration",
        "Live-migration downtime vs live-connection count",
        ["streams", "blackout_ms", "sockets_moved", "parked_ops",
         "echoes_ok", "resets", "timeouts"],
        rows, notes=notes)
