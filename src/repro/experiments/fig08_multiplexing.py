"""Fig. 8 + Table 2: multiplexing bursty AGs onto one NSM (§6.1)."""

from __future__ import annotations

from repro.experiments.fig07_trace import canonical_ags
from repro.experiments.report import ExperimentResult
from repro.model import multiplexing as mx
from repro.trace.ag_trace import generate_fleet


def run_fig8() -> ExperimentResult:
    """Per-core RPS: baseline (4 cores per AG) vs NetKernel (1-core AGs +
    shared NSM + CoreEngine).  Paper: 12 cores -> 9 cores, +33%/core."""
    traces = canonical_ags()
    result = mx.fig8_comparison(traces, provisioned_cores=4)
    rows = [
        [minute, round(base, 0), round(nk, 0)]
        for minute, (base, nk) in enumerate(zip(
            result["per_core_rps_baseline"],
            result["per_core_rps_netkernel"]))
    ]
    notes = (f"baseline {result['baseline_cores']} cores vs NetKernel "
             f"{result['netkernel_cores']} cores "
             f"({result['nsm_cores']}-core NSM + 1 CoreEngine); "
             f"per-core RPS x{result['per_core_improvement']:.2f} "
             f"(paper: 12 vs 9 cores, x1.33)")
    return ExperimentResult(
        "fig8", "Per-core RPS, baseline vs NetKernel multiplexing",
        ["minute", "baseline_rps_per_core", "netkernel_rps_per_core"],
        rows, notes=notes)


# Canonical entry point: every experiment module exposes ``run``.
run = run_fig8


def run_table2(fleet_size: int = 200, seed: int = 7) -> ExperimentResult:
    """AG packing on a 32-core machine.  Paper: 16 -> 29 AGs, >40% cores
    saved, NSM under 60% utilization nearly always."""
    fleet = generate_fleet(fleet_size, seed=seed)
    packing = mx.table2_packing(fleet)
    rows = [
        ["Total # Cores", 32, 32],
        ["NSM", 0, packing["nsm_cores"]],
        ["CoreEngine", 0, packing["coreengine_cores"]],
        ["# AGs", packing["baseline_ags"], packing["netkernel_ags"]],
    ]
    notes = (f"cores saved: {packing['cores_saved_fraction'] * 100:.1f}% "
             f"(paper: >40%); NSM mean util "
             f"{packing['nsm_mean_utilization'] * 100:.0f}%, under the 60% "
             f"limit in {packing['fraction_minutes_under_limit'] * 100:.0f}% "
             "of minutes")
    return ExperimentResult(
        "table2", "AGs per 32-core machine (Baseline vs NetKernel)",
        ["row", "Baseline", "NetKernel"], rows, notes=notes)
