"""Capacity-envelope experiment: NDR/PDR per scenario, with overload on.

Not a paper figure — §7's claim that one NSM core multiplexes many VMs
raises the operational question this experiment answers: *where does
that multiplexing saturate, and what happens past the knee?*  For each
scenario the NDR/PDR binary search (``repro.perf.capacity``) finds the
no-drop rate (loss <= 1%) and partial-drop rate (loss <= 10%), then
re-offers 2x NDR to check that the overload governor degrades
gracefully: goodput holds >= 80% of the NDR plateau, per-VM goodput
stays weight-fair (Jain >= 0.9), and no guest op hangs — overload
surfaces as fail-fast EAGAIN, never as a stuck socket.

The failover scenario legitimately has no NDR: an NSM crash costs a
fixed outage window, so loss never reaches zero at any offered rate.
The row reports that honestly rather than inventing a rate.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.report import ExperimentResult
from repro.perf.capacity import run_capacity

#: Scenarios swept, in presentation order.
CAPACITY_SCENARIOS = ("mux", "rps", "failover")


def run(seed: int = 0, scenarios: Sequence[str] = CAPACITY_SCENARIOS,
        n_vms: int = 4, iterations: int = 5) -> ExperimentResult:
    """Search each scenario's capacity envelope and tabulate the knees."""
    rows = []
    problems = []
    for scenario in scenarios:
        result = run_capacity(scenario=scenario, seed=seed, n_vms=n_vms,
                              iterations=iterations)
        ndr, pdr, graceful = (result["ndr"], result["pdr"],
                              result["graceful"])
        if pdr is None:
            problems.append(f"{scenario}: no PDR within "
                            f"[{result['rate_lo']:g}, "
                            f"{result['rate_hi']:g}] ops/s")
        if graceful is not None and not graceful["pass"]:
            problems.append(
                f"{scenario}: graceless at 2xNDR (goodput ratio "
                f"{graceful['goodput_ratio']}, jain "
                f"{graceful['jain_fairness']}, hung "
                f"{graceful['hung_ops']})")
        for leak in result["leaks"]:
            problems.append(f"{scenario}: {leak}")
        rows.append([
            scenario,
            None if ndr is None else round(ndr["rate"]),
            None if ndr is None else ndr["p99_us"],
            None if pdr is None else round(pdr["rate"]),
            None if pdr is None else pdr["p99_us"],
            None if graceful is None else graceful["goodput_ratio"],
            None if graceful is None else graceful["jain_fairness"],
            None if graceful is None else graceful["hung_ops"],
            None if graceful is None else graceful["pass"],
        ])
    notes = ("NDR = highest loss<=1% rate, PDR = highest loss<=10% rate "
             "(seeded bisection); graceful columns re-offer 2x NDR with "
             "the overload governor shedding — failover has no NDR by "
             "construction (crash outage is a fixed-time loss)"
             if not problems else "; ".join(problems))
    return ExperimentResult(
        "fig-capacity",
        "NDR/PDR capacity envelope with overload control",
        ["scenario", "ndr_ops", "ndr_p99_us", "pdr_ops", "pdr_p99_us",
         "goodput_ratio_2xndr", "jain_2xndr", "hung_ops", "graceful"],
        rows, notes=notes)
