"""Fig. 16: 8-stream TCP receive throughput vs message size."""

from repro.experiments.streams import message_size_sweep


def run():
    """Regenerate Fig. 16 (8-stream receive)."""
    return message_size_sweep(
        "fig16", "8-stream receive throughput (kernel-stack NSM, 1 vCPU)",
        direction="recv", streams=8, paper_top_gbps=17.4)
