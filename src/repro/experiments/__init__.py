"""Experiment runners: one module per paper table/figure.

Each runner returns an :class:`~repro.experiments.report.ExperimentResult`
holding the regenerated rows/series next to the paper's reported values.
``repro.experiments.registry`` maps experiment ids ("fig13", "table6", …)
to runners; the benchmark harness and the examples both go through it.
"""

from repro.experiments.report import ExperimentResult
from repro.experiments.registry import REGISTRY, run_experiment

__all__ = ["ExperimentResult", "REGISTRY", "run_experiment"]
