"""Fig. 11: CoreEngine NQE switching throughput vs batch size.

Two measurements: the calibrated analytic rate, and a *functional* rate
measured by actually pushing 32-byte-packed NQEs through SPSC rings with
the CoreEngine batch loop in simulated time.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.nqe import Nqe, NqeOp
from repro.cpu.cost_model import DEFAULT_COST_MODEL
from repro.experiments.report import ExperimentResult, qualitative
from repro.mem.ring import SpscRing
from repro.model.throughput import PAPER, nqe_switch_rate

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def functional_switch_rate(batch: int, nqes: int = 20_000) -> float:
    """Switch ``nqes`` elements ring->ring in simulated time.

    Replays CoreEngine's inner loop (pop batch, charge cycles, push) and
    returns NQEs per simulated second.
    """
    cost = DEFAULT_COST_MODEL
    source = SpscRing(max(batch * 2, 512), name="src")
    sink = SpscRing(nqes + 1, name="dst")
    switched = 0
    sim_time = 0.0
    remaining = nqes
    while switched < nqes:
        while not source.full and remaining > 0:
            source.push(Nqe(NqeOp.SEND, 1, 0, 1))
            remaining -= 1
        moved = source.pop_batch(batch)
        if not moved:
            break
        sim_time += cost.ce_batch_cycles(len(moved)) / cost.core_hz
        for nqe in moved:
            # The 32-byte pack/unpack keeps the wire format honest.
            sink.push(Nqe.unpack(nqe.pack()))
        switched += len(moved)
    return switched / sim_time if sim_time > 0 else 0.0


def run(batches: Sequence[int] = BATCH_SIZES) -> ExperimentResult:
    """Regenerate Fig. 11: NQE switching rate vs batch size."""
    rows = []
    for batch in batches:
        analytic = nqe_switch_rate(batch) / 1e6
        functional = functional_switch_rate(batch, nqes=4_096) / 1e6
        paper = PAPER["fig11_nqe_rate_millions"][batch]
        rows.append([batch, round(analytic, 1), round(functional, 1),
                     paper, qualitative(analytic, paper)])
    notes = ("monotone rise saturating near 200M NQEs/s, as in the paper; "
             "mid-range batches deviate because the paper's curve has "
             "cache effects a two-parameter linear batch-cost model omits")
    return ExperimentResult(
        "fig11", "CoreEngine switching throughput vs batch size (M NQEs/s)",
        ["batch", "model_M", "functional_M", "paper_M", "vs_paper"],
        rows, notes=notes)
