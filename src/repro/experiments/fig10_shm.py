"""Fig. 10: shared-memory NSM for colocated VMs of the same user (§6.4).

NetKernel (2 cores per VM + 2-core shm NSM + CoreEngine) against Baseline
(2-core sender VM, 5-core receiver VM, TCP Cubic through the vSwitch),
8 TCP connections.  Paper: NetKernel reaches ~100 Gbps at large messages,
about 2x Baseline.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.report import ExperimentResult
from repro.model import throughput as tp

MESSAGE_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192)


def run(sizes: Sequence[int] = MESSAGE_SIZES) -> ExperimentResult:
    """Regenerate Fig. 10: shm-NSM vs colocated TCP throughput."""
    rows = []
    for size in sizes:
        baseline = tp.baseline_colocated_gbps(size)
        netkernel = tp.shm_throughput_gbps(size)
        speedup = netkernel / baseline if baseline else float("inf")
        rows.append([size, round(baseline, 1), round(netkernel, 1),
                     round(speedup, 2)])
    top = rows[-1]
    notes = (f"at 8KB: NetKernel {top[2]}G vs Baseline {top[1]}G "
             f"(x{top[3]}); paper: ~100G, ~2x Baseline")
    return ExperimentResult(
        "fig10", "Colocated-VM throughput: shared-memory NSM vs TCP Cubic",
        ["msg_size", "baseline_gbps", "netkernel_shm_gbps", "speedup"],
        rows, notes=notes)
