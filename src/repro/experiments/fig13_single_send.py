"""Fig. 13: single TCP stream send throughput vs message size."""

from repro.experiments.streams import message_size_sweep


def run():
    """Regenerate Fig. 13 (single-stream send)."""
    return message_size_sweep(
        "fig13", "Single-stream send throughput (kernel-stack NSM, 1 vCPU)",
        direction="send", streams=1, paper_top_gbps=30.9)
