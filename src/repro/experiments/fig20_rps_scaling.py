"""Fig. 20: short-connection RPS vs vCPUs, kernel and mTCP NSMs.

Paper: kernel scales to ~400K rps at 8 vCPUs (5.7x one core); the mTCP
NSM reaches 190K/366K/652K/1.1M at 1/2/4/8 — NetKernel preserves each
stack's scalability.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, qualitative
from repro.model import throughput as tp


def run() -> ExperimentResult:
    """Regenerate Fig. 20: RPS scaling for both NSM stacks."""
    rows = []
    for vcpus in (1, 2, 3, 4, 5, 6, 7, 8):
        baseline = tp.requests_per_second("baseline", vcpus=vcpus)
        kernel = tp.requests_per_second("netkernel", vcpus=vcpus)
        if vcpus in (1, 2, 4, 8):  # the paper's stable mTCP core counts
            mtcp = tp.requests_per_second("netkernel", stack="mtcp",
                                          vcpus=vcpus)
            paper_mtcp = tp.PAPER["fig20_mtcp_rps"][vcpus] / 1e3
            mtcp_cell = round(mtcp / 1e3, 1)
        else:
            mtcp_cell, paper_mtcp = "-", "-"
        rows.append([vcpus, round(baseline / 1e3, 1),
                     round(kernel / 1e3, 1), mtcp_cell, paper_mtcp])
    k8 = rows[-1][2]
    notes = (f"kernel at 8 vCPUs: {k8}K rps (paper ~400K, "
             f"{qualitative(k8 * 1e3, 400e3)}); mTCP at 8: "
             f"{rows[-1][3]}K (paper 1100K)")
    return ExperimentResult(
        "fig20", "Short-connection RPS scaling with vCPUs (64B messages)",
        ["vcpus", "baseline_krps", "nk_kernel_krps", "nk_mtcp_krps",
         "paper_mtcp_krps"], rows, notes=notes)
