"""Fig. 17: short-connection RPS and goodput vs message size
(kernel-stack NSM, 1 vCPU, concurrency 1000, non-keepalive)."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.report import ExperimentResult
from repro.model import throughput as tp

MESSAGE_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192)


def run(sizes: Sequence[int] = MESSAGE_SIZES) -> ExperimentResult:
    """Regenerate Fig. 17: RPS and goodput vs message size."""
    rows = []
    for size in sizes:
        baseline = tp.requests_per_second("baseline", msg_size=size)
        netkernel = tp.requests_per_second("netkernel", msg_size=size)
        rows.append([
            size,
            round(baseline / 1e3, 1), round(netkernel / 1e3, 1),
            round(tp.short_conn_goodput_gbps(baseline, size), 2),
            round(tp.short_conn_goodput_gbps(netkernel, size), 2),
        ])
    notes = ("~70K rps for small messages in both systems (paper: ~70K); "
             "mild decline at large sizes from copy costs")
    return ExperimentResult(
        "fig17", "Short-connection RPS and goodput vs message size",
        ["msg_size", "baseline_krps", "netkernel_krps",
         "baseline_gbps", "netkernel_gbps"], rows, notes=notes)
