"""Fig. 12: hugepage message-copy throughput vs message size.

Analytic rate from the calibrated copy costs, plus a functional pass that
moves real bytes through a :class:`HugepageRegion` (alloc → write → read
→ free) in simulated time.
"""

from __future__ import annotations

from typing import Sequence

from repro.cpu.cost_model import DEFAULT_COST_MODEL
from repro.experiments.report import ExperimentResult, qualitative
from repro.mem.hugepages import HugepageRegion
from repro.model.throughput import PAPER, memcopy_throughput_gbps

MESSAGE_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192)


def functional_copy_gbps(msg_size: int, messages: int = 2_000) -> float:
    """Copy ``messages`` real payloads through hugepages; Gbps of
    simulated time based on the calibrated per-copy cost."""
    cost = DEFAULT_COST_MODEL
    region = HugepageRegion()
    payload = b"x" * msg_size
    sim_time = 0.0
    for _ in range(messages):
        buffer = region.alloc(msg_size)
        buffer.write(payload)
        assert buffer.read() == payload
        buffer.free()
        sim_time += cost.hugepage_copy_cycles(msg_size) / cost.core_hz
    return messages * msg_size * 8 / sim_time / 1e9


def run(sizes: Sequence[int] = MESSAGE_SIZES) -> ExperimentResult:
    """Regenerate Fig. 12: hugepage copy throughput vs size."""
    rows = []
    for size in sizes:
        analytic = memcopy_throughput_gbps(size)
        functional = functional_copy_gbps(size, messages=500)
        paper = PAPER["fig12_memcopy_gbps"][size]
        rows.append([size, round(analytic, 1), round(functional, 1),
                     paper, qualitative(analytic, paper)])
    notes = ("over 100G for messages >= 4KB (144G at 8KB), so the copy "
             "path is not the bottleneck at 100G line rate — the paper's "
             "conclusion")
    return ExperimentResult(
        "fig12", "Hugepage message copy throughput (Gbps)",
        ["msg_size", "model_gbps", "functional_gbps", "paper_gbps",
         "vs_paper"], rows, notes=notes)
