"""Fig. 19: receive throughput of 8 streams vs number of vCPUs.

Paper: both systems reach 91 Gbps with 8 vCPUs.
"""

from repro.experiments.streams import vcpu_sweep


def run():
    """Regenerate Fig. 19 (receive scaling with vCPUs)."""
    return vcpu_sweep("fig19", "Receive throughput scaling (8 streams, 8KB)",
                      direction="recv")
