"""Ablations of NetKernel's design choices (§3, §4.6, §2.2).

Each function isolates one design decision DESIGN.md calls out and
quantifies what it buys, either with the functional simulation or the
calibrated model.  The benchmark files under ``benchmarks/`` assert the
qualitative outcomes; the CLI exposes them as ``ablation-*`` ids.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.host import NetKernelHost
from repro.cpu.cost_model import DEFAULT_COST_MODEL
from repro.experiments.report import ExperimentResult
from repro.net.fabric import Network
from repro.sim.engine import Simulator
from repro.units import gbps, usec

#: Shared-queue lock model for the queue-sharing ablation: uncontended
#: lock/unlock cycles and per-extra-core contention factor.
LOCK_CYCLES = 50.0
LOCK_CONTENTION = 0.6


def _host(ce_batch_size: int = 4) -> Tuple[Simulator, NetKernelHost]:
    sim = Simulator()
    host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                      default_delay_sec=usec(25)),
                         ce_batch_size=ce_batch_size)
    return sim, host


def _bulk_run(sim, host, nsm_name: str, total_bytes: int,
              poll_window_sec=None, synchronous: bool = False,
              message: int = 8192) -> float:
    """One VM pushes ``total_bytes`` to another through ``nsm_name``;
    returns the transfer's goodput in Gbps."""
    nsm = host.nsms[nsm_name]
    vm_server = host.add_vm("srv", vcpus=1, nsm=nsm,
                            poll_window_sec=poll_window_sec)
    vm_client = host.add_vm("cli", vcpus=1, nsm=nsm,
                            poll_window_sec=poll_window_sec)
    api_s, api_c = host.socket_api(vm_server), host.socket_api(vm_client)
    done: Dict[str, float] = {}

    def server():
        listener = yield from api_s.socket()
        yield from api_s.bind(listener, 80)
        yield from api_s.listen(listener)
        conn = yield from api_s.accept(listener)
        got = 0
        while got < total_bytes:
            data = yield from api_s.recv(conn, 1 << 20)
            if not data:
                break
            got += len(data)
        done["at"] = sim.now

    def client():
        yield sim.timeout(0.001)
        sock = yield from api_c.socket()
        yield from api_c.connect(sock, (nsm_name, 80))
        done["start"] = sim.now
        sent = 0
        while sent < total_bytes:
            yield from api_c.send(sock, b"p" * message)
            sent += message
            if synchronous:
                while sock.tx_inflight > 0:
                    event = sim.event()
                    sock._writable_waiters.append(event)
                    yield event
        yield from api_c.close(sock)

    vm_server.spawn(server())
    vm_client.spawn(client())
    sim.run(until=60.0)
    elapsed = done["at"] - done["start"]
    return total_bytes * 8 / elapsed / 1e9


# ---------------------------------------------------------------------------
# Ablation 1: CoreEngine batch size
# ---------------------------------------------------------------------------


def ce_cycles_per_nqe_saturated(batch_size: int) -> float:
    """Cycles per NQE when the rings hold full batches (Fig. 11's
    microbenchmark regime, where batching pays off)."""
    cost = DEFAULT_COST_MODEL
    return cost.ce_batch_cycles(batch_size) / batch_size


def ce_observed_batch(total_bytes: int = 1_000_000,
                      batch_size: int = 64) -> float:
    """Average batch CoreEngine actually forms under a live workload.

    With doorbell-driven switching and a fast CE core, batches only form
    when NQEs are produced faster than CE drains them — at moderate load
    the observed batch stays near 1 regardless of the configured cap,
    which is itself an honest (and reported) result.
    """
    sim, host = _host(ce_batch_size=batch_size)
    host.add_nsm("nsm0", vcpus=1, stack="kernel")
    _bulk_run(sim, host, "nsm0", total_bytes)
    stats = host.coreengine.stats()
    return stats["avg_batch"]


def run_batching(batches=(1, 4, 16, 64)) -> ExperimentResult:
    """Ablate CE batching: per-NQE cost with full batches, plus the batch
    the switch actually forms under a live moderate load."""
    rows = [[b, round(ce_cycles_per_nqe_saturated(b), 1)] for b in batches]
    observed = ce_observed_batch()
    return ExperimentResult(
        "ablation-batching",
        "CoreEngine cycles per NQE vs batch size (saturated rings)",
        ["batch", "cycles_per_nqe"], rows,
        notes=("batching amortizes the ~277-cycle fixed switch cost "
               f"(Fig. 11's lesson); under a live moderate load the "
               f"observed batch averages {observed:.2f} — batches only "
               "form when producers outpace the switch"))


# ---------------------------------------------------------------------------
# Ablation 2: interrupt-driven polling window
# ---------------------------------------------------------------------------


def polling_wakeups(poll_window_sec: float) -> Tuple[int, int]:
    """(polled, interrupt) wakeups of the client VM under bursty load."""
    sim, host = _host()
    host.add_nsm("nsm0", vcpus=1, stack="kernel")
    nsm = host.nsms["nsm0"]
    vm_server = host.add_vm("srv", vcpus=1, nsm=nsm,
                            poll_window_sec=poll_window_sec)
    vm_client = host.add_vm("cli", vcpus=1, nsm=nsm,
                            poll_window_sec=poll_window_sec)
    api_s, api_c = host.socket_api(vm_server), host.socket_api(vm_client)

    def server():
        listener = yield from api_s.socket()
        yield from api_s.bind(listener, 80)
        yield from api_s.listen(listener)
        conn = yield from api_s.accept(listener)
        while True:
            data = yield from api_s.recv(conn, 65536)
            if not data:
                break

    def client():
        yield sim.timeout(0.001)
        sock = yield from api_c.socket()
        yield from api_c.connect(sock, ("nsm0", 80))
        for _ in range(100):
            yield from api_c.send(sock, b"x" * 4096)
            yield sim.timeout(100e-6)  # bursty, not saturating
        yield from api_c.close(sock)

    vm_server.spawn(server())
    vm_client.spawn(client())
    sim.run(until=5.0)
    device = host.coreengine.vm_device(vm_client.vm_id)
    return device.wakeups_polled, device.wakeups_interrupt


def run_polling() -> ExperimentResult:
    """Ablate the §4.6 poll window: 0 (pure interrupts) vs 20 µs vs 200 µs."""
    rows = []
    for label, window in (("no_polling", 0.0), ("paper_20us", 20e-6),
                          ("long_200us", 200e-6)):
        polled, interrupts = polling_wakeups(window)
        rows.append([label, polled, interrupts])
    return ExperimentResult(
        "ablation-polling", "NK-device wakeups by poll window",
        ["window", "polled", "interrupts"], rows,
        notes="a 20us window absorbs wakeups during active periods; "
              "window 0 pays an interrupt each time (§4.6)")


# ---------------------------------------------------------------------------
# Ablation 3: pipelined vs synchronous send()
# ---------------------------------------------------------------------------


def run_pipelining(messages: int = 200, size: int = 8192) -> ExperimentResult:
    """Ablate §4.6 send pipelining over the shm NSM (hand-off-bound)."""
    rows = []
    for label, synchronous in (("pipelined", False), ("synchronous", True)):
        sim, host = _host()
        host.add_nsm("nsm0", vcpus=1, stack="shm")
        goodput = _bulk_run(sim, host, "nsm0", messages * size,
                            synchronous=synchronous, message=size)
        rows.append([label, round(goodput, 2)])
    speedup = rows[0][1] / rows[1][1]
    return ExperimentResult(
        "ablation-pipelining", "send() design: goodput (Gbps)",
        ["mode", "gbps"], rows,
        notes=f"pipelining wins x{speedup:.2f} when the NQE hand-off is "
              "the bottleneck")


# ---------------------------------------------------------------------------
# Ablation 4: per-vCPU lockless queues vs one shared locked queue
# ---------------------------------------------------------------------------


def shared_queue_rate(cores: int, batch: int = 4) -> float:
    """NQEs/s through one locked queue serving all cores (model)."""
    cost = DEFAULT_COST_MODEL
    lock = LOCK_CYCLES * (1.0 + LOCK_CONTENTION * (cores - 1))
    cycles_per_nqe = cost.ce_batch_cycles(batch) / batch + lock
    return cost.core_hz / cycles_per_nqe


def per_core_queue_rate(cores: int, batch: int = 4) -> float:
    """NQEs/s with one lockless queue set per core (the paper's design)."""
    cost = DEFAULT_COST_MODEL
    return cores * cost.core_hz * batch / cost.ce_batch_cycles(batch)


def run_queue_sharing(core_counts=(1, 2, 4, 8)) -> ExperimentResult:
    """Ablate §3's lockless per-vCPU queue sets against a shared queue."""
    rows = [
        [n, round(per_core_queue_rate(n) / 1e6, 1),
         round(shared_queue_rate(n) / 1e6, 1)]
        for n in core_counts
    ]
    return ExperimentResult(
        "ablation-queues", "M NQEs/s: lockless per-core vs shared locked",
        ["cores", "lockless_M", "locked_M"], rows,
        notes="lockless scales linearly; the shared queue barely scales")


# ---------------------------------------------------------------------------
# Ablation 5: the stack-on-hypervisor alternative (§2.2)
# ---------------------------------------------------------------------------


def double_stack_send_gbps(msg_size: int, streams: int = 8,
                           vcpus: int = 1) -> float:
    """Guest stack + hypervisor stack in series on the same cores."""
    from repro.model import throughput as tp

    cost = DEFAULT_COST_MODEL
    guest = tp.baseline_send_cycles(msg_size, streams, cost)
    hypervisor = (tp.kernel_tx_stack_cycles(msg_size, streams, cost)
                  + msg_size * cost.baseline_copy_per_byte)
    cycles = guest + hypervisor
    speedup = cost.amdahl_speedup(vcpus, cost.alpha_ktcp_tx)
    rate = cost.core_hz * speedup / cycles
    return min(rate * msg_size * 8 / 1e9, tp.LINE_RATE_GBPS)


def run_double_stack(sizes=(1024, 4096, 8192, 16384)) -> ExperimentResult:
    """Ablate §2.2's rejected design: every byte through two stacks."""
    from repro.model import throughput as tp

    rows = []
    for size in sizes:
        rows.append([
            size,
            round(tp.stream_throughput_gbps("baseline", "send", size,
                                            streams=8), 1),
            round(tp.stream_throughput_gbps("netkernel", "send", size,
                                            streams=8), 1),
            round(double_stack_send_gbps(size), 1),
        ])
    return ExperimentResult(
        "ablation-double-stack",
        "send Gbps per core: baseline vs NetKernel vs hypervisor-stack",
        ["msg_size", "baseline", "netkernel", "double_stack"], rows,
        notes="processing every byte twice is strictly worse than both "
              "(the paper's §2.2 argument)")


# Canonical entry point: every experiment module exposes ``run``.
run = run_batching
