"""Failover experiment: recovery time and goodput dip vs detection timeout.

Not a paper figure — §8 of the paper discusses NSM failure as an open
concern ("the NSM presents a single point of failure for all its VMs")
and argues the architecture makes handling it *possible*: CoreEngine
sees every NQE, so it can detect a dead NSM and re-bind its VMs to a
standby.  This experiment quantifies that recovery path in the repro:
an echo client rides through an NSM crash for a sweep of
failure-detection timeouts, measuring time-to-recovery (first
successful request after the crash) and the goodput lost to the outage.

Every affected connection must either fail fast with ECONNRESET (the
quarantine path) or re-establish on the standby — a run with a hung
GuestLib op or a resource leak fails the experiment.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.report import ExperimentResult
from repro.faults.chaos import run_chaos
from repro.faults.plan import FaultPlan

#: Detection timeouts swept (seconds).  The heartbeat period stays at
#: 2 ms, so the first entry is the tightest sensible setting.
DETECTION_TIMEOUTS = (4e-3, 10e-3, 25e-3, 50e-3)


def run(duration: float = 0.6, seed: int = 0,
        detection_timeouts: Sequence[float] = DETECTION_TIMEOUTS,
        ) -> ExperimentResult:
    """Sweep the NSM failure-detection timeout through an nsm-crash plan."""
    # Fault-free baseline (an empty plan) anchors the goodput-dip column.
    baseline = run_chaos(seed=seed, duration=duration,
                         plan=FaultPlan(seed=seed, name="none"))
    rows = []
    problems = []
    for detect in detection_timeouts:
        result = run_chaos(seed=seed, plan_name="nsm-crash",
                           duration=duration, detection_timeout=detect)
        counters = result["counters"]
        recovery = result["recovery_sec"]
        if recovery is None:
            problems.append(f"detect={detect * 1e3:g}ms never recovered")
        unresolved = (counters["connects"] - 1
                      - counters["resets"] - counters["timeouts"])
        if counters["resets"] + counters["timeouts"] == 0:
            problems.append(
                f"detect={detect * 1e3:g}ms: crash surfaced no "
                "ECONNRESET/timeout to the client")
        if result["leaks"]:
            problems.append(
                f"detect={detect * 1e3:g}ms leaks: {result['leaks']}")
        rows.append([
            round(detect * 1e3, 1),
            round(recovery * 1e3, 2) if recovery is not None else None,
            counters["requests_ok"],
            baseline["counters"]["requests_ok"] - counters["requests_ok"],
            counters["resets"],
            counters["timeouts"],
            result["ce"]["heartbeats_sent"],
            unresolved,
        ])
    notes = ("recovery tracks the detection timeout (plus one reconnect "
             "round-trip); goodput lost during the outage grows with it; "
             "every failed connection surfaced as ECONNRESET or a bounded "
             "timeout" if not problems else "; ".join(problems))
    return ExperimentResult(
        "fig-failover",
        "Recovery time and goodput dip vs NSM failure-detection timeout",
        ["detect_ms", "recovery_ms", "requests_ok", "requests_lost",
         "resets", "timeouts", "heartbeats", "unresolved_failures"],
        rows, notes=notes)
