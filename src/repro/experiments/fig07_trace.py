"""Fig. 7: traffic of the three most-utilized application gateways.

The paper plots one hour of per-minute normalized RPS for the three most
utilized AGs of a production trace.  We regenerate the figure from the
synthetic trace generator; the canonical seeds are chosen so the triple
matches the paper's reported provisioning (every AG needs 4 cores at
peak, and one 5-core NSM covers their aggregate — see Fig. 8).
"""

from __future__ import annotations

from typing import List

from repro.experiments.report import ExperimentResult
from repro.trace.ag_trace import AgTrace, generate_ag_trace

#: Seeds for AG1..AG3 (base seed 39 of the search documented in DESIGN.md).
CANONICAL_SEEDS = (1209, 1210, 1211)


def canonical_ags(minutes: int = 60) -> List[AgTrace]:
    """The AG triple used by Fig. 7 and Fig. 8."""
    return [
        generate_ag_trace(f"AG{i + 1}", minutes=minutes, profile="hot",
                          seed=seed)
        for i, seed in enumerate(CANONICAL_SEEDS)
    ]


def run(minutes: int = 60) -> ExperimentResult:
    """Regenerate Fig. 7: the per-minute AG trace table."""
    traces = canonical_ags(minutes)
    rows = [
        [minute] + [round(t.values[minute], 1) for t in traces]
        for minute in range(minutes)
    ]
    notes = ("bursty, low mean utilization: " + ", ".join(
        f"{t.name} peak={t.peak:.0f} mean={t.mean:.1f}" for t in traces))
    return ExperimentResult(
        "fig7", "Traffic of three most-utilized AGs (normalized RPS/min)",
        ["minute"] + [t.name for t in traces], rows, notes=notes)
