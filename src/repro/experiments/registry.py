"""Registry mapping experiment ids to runners.

``run_experiment("fig13")`` regenerates the corresponding paper table or
figure and returns an :class:`~repro.experiments.report.ExperimentResult`.
DES-backed experiments accept keyword arguments to trade fidelity for
runtime (see each module's docstring).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments.report import ExperimentResult


def _lazy(module: str, fn: str = "run") -> Callable[..., ExperimentResult]:
    def runner(**kwargs) -> ExperimentResult:
        import importlib

        mod = importlib.import_module(f"repro.experiments.{module}")
        return getattr(mod, fn)(**kwargs)

    runner.__name__ = f"{module}.{fn}"
    return runner


REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "fig7": _lazy("fig07_trace"),
    "fig8": _lazy("fig08_multiplexing", "run_fig8"),
    "fig9": _lazy("fig09_fairness"),
    "fig10": _lazy("fig10_shm"),
    "fig11": _lazy("fig11_nqe_switching"),
    "fig12": _lazy("fig12_memcopy"),
    "fig13": _lazy("fig13_single_send"),
    "fig14": _lazy("fig14_single_recv"),
    "fig15": _lazy("fig15_multi_send"),
    "fig16": _lazy("fig16_multi_recv"),
    "fig17": _lazy("fig17_short_conn"),
    "fig18": _lazy("fig18_send_scaling"),
    "fig19": _lazy("fig19_recv_scaling"),
    "fig20": _lazy("fig20_rps_scaling"),
    "fig21": _lazy("fig21_isolation"),
    "table2": _lazy("fig08_multiplexing", "run_table2"),
    "table3": _lazy("table3_nginx"),
    "table4": _lazy("table4_nsm_scaling"),
    "table5": _lazy("table5_latency"),
    "table6": _lazy("table6_table7_overhead", "run_table6"),
    "table7": _lazy("table6_table7_overhead", "run_table7"),
    # Design-choice ablations (DESIGN.md §6).
    "ablation-batching": _lazy("ablations", "run_batching"),
    "ablation-polling": _lazy("ablations", "run_polling"),
    "ablation-pipelining": _lazy("ablations", "run_pipelining"),
    "ablation-queues": _lazy("ablations", "run_queue_sharing"),
    "ablation-double-stack": _lazy("ablations", "run_double_stack"),
    # Robustness (§8): NSM failure detection + connection failover.
    "fig-failover": _lazy("fig_failover"),
    # Live migration (§8): zero-reset stack upgrade between NSMs.
    "fig-migration": _lazy("fig_migration"),
    # Elastic NSM fleet on the AG-trace load signal (§7.3 follow-on).
    "fig-autoscale": _lazy("fig_autoscale"),
}


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id.

    Paper artifacts: "fig7".."fig21" and "table2".."table7".  Design
    ablations: "ablation-batching", "ablation-polling",
    "ablation-pipelining", "ablation-queues", "ablation-double-stack".
    """
    try:
        runner = REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from "
            f"{sorted(REGISTRY)}") from None
    return runner(**kwargs)
