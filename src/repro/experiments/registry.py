"""Registry mapping experiment ids to declared, validated runners.

``run_experiment("fig13")`` regenerates the corresponding paper table or
figure and returns an :class:`~repro.experiments.report.ExperimentResult`.
Each :class:`ExperimentEntry` *declares* its runner's keyword-parameter
names up front, so callers — the CLI, the control-plane job validator
(`repro.ctrl.jobs`), the examples — can reject an unknown parameter with
a clear error *before* dispatch instead of surfacing a ``TypeError``
deep inside a runner.  ``tests/test_experiments.py`` cross-checks every
declaration against the runner's real signature, so the two cannot
drift.

Ids are canonicalized: ``fig08`` and ``fig8`` name the same experiment
(zero-padded forms are what the bench harness and BENCH_* files use).
"""

from __future__ import annotations

import re
from typing import Any, Dict, Optional, Tuple

from repro.errors import JobValidationError
from repro.experiments.report import ExperimentResult


class ExperimentEntry:
    """One registry row: lazy runner + declared parameter interface.

    The entry is callable (``entry(**kwargs)`` validates then runs), so
    existing callers that treated REGISTRY values as bare runners keep
    working.  ``params`` is the declared tuple of keyword-parameter
    names the runner accepts; ``param_defaults()`` resolves their
    defaults from the live signature (cached, imports the module).
    """

    __slots__ = ("module", "fn", "params", "title", "_defaults")

    def __init__(self, module: str, fn: str = "run",
                 params: Tuple[str, ...] = (), title: str = ""):
        self.module = module
        self.fn = fn
        self.params = tuple(params)
        self.title = title
        self._defaults: Optional[Dict[str, Any]] = None

    def resolve(self):
        """Import the experiment module and return the runner."""
        import importlib

        mod = importlib.import_module(f"repro.experiments.{self.module}")
        return getattr(mod, self.fn)

    def param_defaults(self) -> Dict[str, Any]:
        """Declared parameter names -> default values (from the runner's
        signature; every declared parameter must have a default)."""
        if self._defaults is None:
            import inspect

            signature = inspect.signature(self.resolve())
            self._defaults = {
                name: parameter.default
                for name, parameter in signature.parameters.items()
                if parameter.default is not inspect.Parameter.empty
            }
        return dict(self._defaults)

    def validate_kwargs(self, kwargs: Dict[str, Any]) -> None:
        """Reject parameters the runner does not declare."""
        unknown = sorted(set(kwargs) - set(self.params))
        if unknown:
            allowed = ", ".join(self.params) if self.params else "(none)"
            raise JobValidationError(
                f"unknown parameter(s) {unknown} for experiment "
                f"{self.module}.{self.fn}; declared parameters: {allowed}")

    def __call__(self, **kwargs) -> ExperimentResult:
        self.validate_kwargs(kwargs)
        return self.resolve()(**kwargs)

    def describe(self) -> Dict[str, Any]:
        """JSON-ready declaration (what GET /experiments serves)."""
        return {
            "module": self.module,
            "fn": self.fn,
            "title": self.title,
            "params": {name: default for name, default
                       in self.param_defaults().items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ExperimentEntry {self.module}.{self.fn} "
                f"params={self.params}>")


REGISTRY: Dict[str, ExperimentEntry] = {
    "fig7": ExperimentEntry(
        "fig07_trace", params=("minutes",),
        title="Traffic of three most-utilized AGs"),
    "fig8": ExperimentEntry(
        "fig08_multiplexing", "run_fig8",
        title="Per-core RPS under multiplexing"),
    "fig9": ExperimentEntry(
        "fig09_fairness", params=("duration",),
        title="VM-level fair bandwidth sharing"),
    "fig10": ExperimentEntry(
        "fig10_shm", params=("sizes",),
        title="Shared-memory NSM vs colocated TCP"),
    "fig11": ExperimentEntry(
        "fig11_nqe_switching", params=("batches",),
        title="CoreEngine NQE switching vs batch size"),
    "fig12": ExperimentEntry(
        "fig12_memcopy", params=("sizes",),
        title="Hugepage memory-copy throughput"),
    "fig13": ExperimentEntry(
        "fig13_single_send", title="Single-stream send throughput"),
    "fig14": ExperimentEntry(
        "fig14_single_recv", title="Single-stream receive throughput"),
    "fig15": ExperimentEntry(
        "fig15_multi_send", title="8-stream send throughput"),
    "fig16": ExperimentEntry(
        "fig16_multi_recv", title="8-stream receive throughput"),
    "fig17": ExperimentEntry(
        "fig17_short_conn", params=("sizes",),
        title="Short-connection RPS vs message size"),
    "fig18": ExperimentEntry(
        "fig18_send_scaling", title="Send scaling with vCPUs"),
    "fig19": ExperimentEntry(
        "fig19_recv_scaling", title="Receive scaling with vCPUs"),
    "fig20": ExperimentEntry(
        "fig20_rps_scaling", title="RPS scaling (kernel and mTCP NSMs)"),
    "fig21": ExperimentEntry(
        "fig21_isolation", params=("scale", "time_factor", "bin_sec"),
        title="Isolation with per-VM rate caps"),
    "table2": ExperimentEntry(
        "fig08_multiplexing", "run_table2", params=("fleet_size", "seed"),
        title="AG packing on a 32-core machine"),
    "table3": ExperimentEntry(
        "table3_nginx", title="nginx over kernel vs mTCP NSMs"),
    "table4": ExperimentEntry(
        "table4_nsm_scaling", title="Scaling with number of NSMs"),
    "table5": ExperimentEntry(
        "table5_latency", params=("requests", "concurrency"),
        title="Response-time distribution"),
    "table6": ExperimentEntry(
        "table6_table7_overhead", "run_table6",
        title="CPU overhead vs throughput"),
    "table7": ExperimentEntry(
        "table6_table7_overhead", "run_table7",
        title="CPU overhead vs request rate"),
    # Design-choice ablations (DESIGN.md §6).
    "ablation-batching": ExperimentEntry(
        "ablations", "run_batching", params=("batches",),
        title="Ablation: CoreEngine batch size"),
    "ablation-polling": ExperimentEntry(
        "ablations", "run_polling",
        title="Ablation: interrupt-driven polling window"),
    "ablation-pipelining": ExperimentEntry(
        "ablations", "run_pipelining", params=("messages", "size"),
        title="Ablation: pipelined vs synchronous send()"),
    "ablation-queues": ExperimentEntry(
        "ablations", "run_queue_sharing", params=("core_counts",),
        title="Ablation: lockless per-vCPU queues vs shared"),
    "ablation-double-stack": ExperimentEntry(
        "ablations", "run_double_stack", params=("sizes",),
        title="Ablation: stack-on-hypervisor alternative"),
    # Robustness (§8): NSM failure detection + connection failover.
    "fig-failover": ExperimentEntry(
        "fig_failover", params=("duration", "seed", "detection_timeouts"),
        title="Recovery time vs failure-detection timeout"),
    # Live migration (§8): zero-reset stack upgrade between NSMs.
    "fig-migration": ExperimentEntry(
        "fig_migration", params=("duration", "seed", "stream_counts"),
        title="Migration downtime vs live-connection count"),
    # Elastic NSM fleet on the AG-trace load signal (§7.3 follow-on).
    "fig-autoscale": ExperimentEntry(
        "fig_autoscale",
        params=("seed", "ticks", "ce_shards", "n_clients", "n_ags",
                "max_nsms"),
        title="NSM autoscaling on the AG-trace load signal"),
    # Overload control (§7 follow-on): where multiplexing saturates.
    "fig-capacity": ExperimentEntry(
        "fig_capacity",
        params=("seed", "scenarios", "n_vms", "iterations"),
        title="NDR/PDR capacity envelope with overload control"),
}

_PADDED_ID = re.compile(r"^(fig|table)0+(\d+)$")


def canonical_id(exp_id: str) -> str:
    """Map zero-padded ids ("fig08", "table02") onto registry keys."""
    exp_id = exp_id.strip().lower()
    if exp_id in REGISTRY:
        return exp_id
    match = _PADDED_ID.match(exp_id)
    if match:
        unpadded = match.group(1) + match.group(2)
        if unpadded in REGISTRY:
            return unpadded
    return exp_id


def experiment_entry(exp_id: str) -> ExperimentEntry:
    """The registry entry for an id (canonicalized); raises
    JobValidationError naming the choices for unknown ids."""
    entry = REGISTRY.get(canonical_id(exp_id))
    if entry is None:
        raise JobValidationError(
            f"unknown experiment {exp_id!r}; choose from "
            f"{sorted(REGISTRY)}")
    return entry


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id.

    Paper artifacts: "fig7".."fig21" and "table2".."table7" (zero-padded
    aliases like "fig08" accepted).  Design ablations:
    "ablation-batching", "ablation-polling", "ablation-pipelining",
    "ablation-queues", "ablation-double-stack".  Unknown ids and unknown
    keyword parameters raise :class:`~repro.errors.JobValidationError`
    (a KeyError subclass is *not* used; the job validator and the CLI
    map it onto the "usage" exit code).
    """
    try:
        entry = REGISTRY[exp_id]
    except KeyError:
        canonical = canonical_id(exp_id)
        if canonical not in REGISTRY:
            raise KeyError(
                f"unknown experiment {exp_id!r}; choose from "
                f"{sorted(REGISTRY)}") from None
        entry = REGISTRY[canonical]
    return entry(**kwargs)
