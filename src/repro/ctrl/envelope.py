"""One result envelope for every CLI subcommand and service response.

Shape (the satellite contract from ISSUE 7)::

    {"ok": bool, "kind": "<subcommand>", "data": ..., "error": null |
     {"code": "<EXIT_CODES name>", "exit_code": int, "messages": [...]}}

Commands build an :class:`Envelope`, attach their machine-readable
``data``, and record failures with :meth:`Envelope.fail` using names
from the single :data:`repro.errors.EXIT_CODES` table.  The process
exit code is derived from the first failure (success is 0), so the
per-command ad-hoc ``return 1`` conventions are gone.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import EXIT_CODES, exit_code


class Envelope:
    """Accumulates one command's outcome (see module docstring)."""

    def __init__(self, kind: str, data: Optional[Any] = None):
        self.kind = kind
        self.data: Any = data if data is not None else {}
        self.failures: List[Dict[str, Any]] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, code: str, message: str) -> "Envelope":
        """Record one failure; ``code`` must name an EXIT_CODES row."""
        if code not in EXIT_CODES or code == "ok":
            raise ValueError(f"unknown failure code {code!r}; choose "
                             f"from {sorted(set(EXIT_CODES) - {'ok'})}")
        self.failures.append({"code": code, "message": message})
        return self

    @property
    def exit_code(self) -> int:
        """0 when ok; otherwise the first failure's table entry."""
        if self.ok:
            return EXIT_CODES["ok"]
        return exit_code(self.failures[0]["code"])

    def error(self) -> Optional[Dict[str, Any]]:
        if self.ok:
            return None
        return {
            "code": self.failures[0]["code"],
            "exit_code": self.exit_code,
            "messages": [f["message"] for f in self.failures],
        }

    def to_dict(self) -> Dict[str, Any]:
        return {"ok": self.ok, "kind": self.kind, "data": self.data,
                "error": self.error()}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True,
                          default=str)
