"""ctrl-smoke: boot ``repro serve``, drive it over real HTTP, verify.

What the CI job runs (``python -m repro.ctrl.smoke``):

1. launch ``python -m repro serve`` as a subprocess on a free port with
   a fresh RunStore;
2. ``POST /jobs`` a quick fig08 experiment job, poll ``GET /jobs/<id>``
   to completion;
3. assert the stored result equals a direct
   ``run_experiment("fig8")`` call (same rows, same table);
4. submit the same job through ``repro job submit`` into a second
   store and assert the two stored result files are byte-identical —
   the CLI and the service share one executor, provably.

Exits 0 on success, 1 with a diagnostic on any mismatch.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

SERVE_BOOT_TIMEOUT = 30.0
JOB_TIMEOUT = 120.0


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read().decode())


def _post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read().decode())


def _wait_for_server(base: str, deadline: float) -> None:
    while time.time() < deadline:
        try:
            if _get(base, "/healthz")["ok"]:
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    raise TimeoutError(f"server at {base} never became healthy")


def main() -> int:
    """Run the smoke sequence from the module docstring; 0 on success."""
    workdir = Path(tempfile.mkdtemp(prefix="repro-ctrl-smoke-"))
    http_store = workdir / "store-http"
    cli_store = workdir / "store-cli"
    port = _free_port()
    base = f"http://127.0.0.1:{port}"

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--store", str(http_store)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    try:
        _wait_for_server(base, time.time() + SERVE_BOOT_TIMEOUT)

        submitted = _post(base, "/jobs", {
            "kind": "experiment", "experiment": "fig08"})
        assert submitted["ok"], submitted
        job_id = submitted["data"]["id"]
        print(f"submitted {job_id} over POST /jobs")

        deadline = time.time() + JOB_TIMEOUT
        state = None
        while time.time() < deadline:
            state = _get(base, f"/jobs/{job_id}")["data"]["state"]
            if state in ("done", "failed"):
                break
            time.sleep(0.2)
        if state != "done":
            print(f"FAIL: job ended in state {state!r}", file=sys.stderr)
            return 1

        stored = _get(base, f"/jobs/{job_id}/result")["data"]
        from repro.experiments import ExperimentResult, run_experiment

        direct = run_experiment("fig8")
        roundtrip = ExperimentResult.from_dict(stored["result"])
        if roundtrip.table_str() != direct.table_str() \
                or stored["result"] != direct.to_dict():
            print("FAIL: stored result != direct run_experiment('fig8')",
                  file=sys.stderr)
            return 1
        print("stored result matches a direct run_experiment call")

        # Same job through the CLI adapter; stored bytes must match.
        from repro.cli import main as cli_main

        code = cli_main(["job", "submit", "--kind", "experiment",
                         "--id", "fig08", "--store", str(cli_store),
                         "--json"])
        if code != 0:
            print(f"FAIL: CLI submit exited {code}", file=sys.stderr)
            return 1
        http_bytes = (http_store / "results"
                      / f"{job_id}.json").read_bytes()
        cli_bytes = (cli_store / "results"
                     / "job-000001.json").read_bytes()
        if http_bytes != cli_bytes:
            print("FAIL: CLI-stored and HTTP-stored results differ",
                  file=sys.stderr)
            return 1
        print("CLI and HTTP stored results are byte-identical")
        print("ctrl-smoke OK")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
