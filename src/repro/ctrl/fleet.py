"""Fleet state: what the provider's operators see.

NetKernel's pitch is that the network stack is *operated
infrastructure*: the provider can ask, at any moment, which NSMs are
serving, which are quarantined, which VM is homed where, and how the
datapath is doing.  :func:`fleet_snapshot` renders one host into that
JSON-ready view; :class:`FleetState` is the thread-safe latest-snapshot
holder the control-plane service reads for ``GET /fleet`` while a job's
simulation is still running in the worker thread (executors publish
through :meth:`FleetState.probe`).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional


def fleet_snapshot(host) -> Dict[str, Any]:
    """NSM health/quarantine, per-VM assignment, shard layout, and obs
    counters for one :class:`~repro.core.host.NetKernelHost`."""
    engine = host.coreengine
    quarantined = dict(engine.quarantined)
    nsms = []
    for name, nsm in sorted(host.nsms.items()):
        reg = engine._nsm_registration(nsm.nsm_id)
        nsms.append({
            "name": name,
            "nsm_id": nsm.nsm_id,
            "stack": nsm.stack_name,
            "vcpus": nsm.vcpus,
            "active": bool(reg is not None and reg.active),
            "quarantined": quarantined.get(nsm.nsm_id),
        })
    per_vm_drops = engine.per_vm_drops()
    vms = []
    for name, vm in sorted(host.vms.items()):
        vms.append({
            "name": name,
            "vm_id": vm.vm_id,
            "nsm_id": engine.vm_to_nsm.get(vm.vm_id),
            "drops": per_vm_drops.get(vm.vm_id,
                                      {"dropped": 0,
                                       "dropped_backpressure": 0,
                                       "shed": 0}),
        })
    shards = None
    if hasattr(engine, "shards"):
        shards = {
            "count": len(engine.shards),
            "vm_home": {str(vm_id): engine.shard_of_vm(vm_id)
                        for vm_id in sorted(engine._vm_home)},
            "nsm_home": {str(nsm_id): engine.shard_of_nsm(nsm_id)
                         for nsm_id in sorted(engine._nsm_home)},
            # Per-shard load (active NSMs / homed VMs / live connections)
            # — what shard-aware placement and the autoscaler's
            # emptiest-shard spawn decide on.
            "loads": {str(index): row
                      for index, row in sorted(engine.shard_loads().items())},
        }
    return {
        "sim_now": round(host.sim.now, 9),
        "nsms": nsms,
        "vms": vms,
        "quarantined": {str(k): v for k, v in sorted(quarantined.items())},
        "shards": shards,
        "counters": engine.stats(),
        "overload": (engine.overload.stats()
                     if engine.overload is not None else None),
    }


class FleetState:
    """Latest fleet snapshot, shared between worker and HTTP threads."""

    def __init__(self):
        self._lock = threading.Lock()
        self._snapshot: Optional[Dict[str, Any]] = None
        self._job_id: Optional[str] = None

    def probe(self, job_id: str):
        """A per-job publisher suitable as ``run_chaos(fleet_probe=…)``:
        called with the live host, stores a fresh snapshot."""
        def publish(host) -> None:
            self.update(job_id, fleet_snapshot(host))
        return publish

    def update(self, job_id: str, snapshot: Dict[str, Any]) -> None:
        with self._lock:
            self._job_id = job_id
            self._snapshot = snapshot

    def view(self) -> Dict[str, Any]:
        """What ``GET /fleet`` returns (empty-handed before any job)."""
        with self._lock:
            return {"job_id": self._job_id, "fleet": self._snapshot}
