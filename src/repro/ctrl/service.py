"""REST layer: the control plane over plain ``http.server``.

No framework, no new dependency — a :class:`ThreadingHTTPServer` whose
handlers translate HTTP onto exactly the same RunStore + JobWorker the
CLI verbs use, so a job submitted over ``POST /jobs`` stores the same
bytes as one submitted with ``repro job submit``.

Routes::

    GET  /healthz            liveness (store root + worker counters)
    GET  /experiments        registry: ids, titles, declared params
    GET  /jobs               every job record (FIFO by id)
    POST /jobs               submit a JobSpec; 201 + the queued record
    GET  /jobs/<id>          one job record
    GET  /jobs/<id>/result   the stored result payload
    GET  /fleet              latest fleet snapshot (NSM health/
                             quarantine, per-VM assignment, shard
                             layout, obs counters) from the running or
                             most recent job

Responses use the same envelope as ``repro … --json``:
``{"ok": bool, "kind": …, "data": …, "error": …}``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.ctrl.envelope import Envelope
from repro.ctrl.fleet import FleetState
from repro.ctrl.jobs import JobSpec
from repro.ctrl.store import DEFAULT_STORE, RunStore
from repro.ctrl.worker import JobWorker
from repro.errors import JobValidationError, UnknownJobError

#: Default bind address for ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642


class ControlPlane:
    """Store + fleet + worker behind one handle (what serve() runs)."""

    def __init__(self, store_root: str = DEFAULT_STORE,
                 store: Optional[RunStore] = None,
                 worker: Optional[JobWorker] = None):
        self.store = store if store is not None else RunStore(store_root)
        self.fleet = worker.fleet if worker is not None else FleetState()
        self.worker = worker if worker is not None else JobWorker(
            self.store, fleet=self.fleet)


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the ControlPlane hangs off the server."""

    server_version = "repro-ctrl/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    @property
    def plane(self) -> ControlPlane:
        return self.server.plane

    # -- plumbing -------------------------------------------------------------

    def _send(self, status: int, envelope: Envelope) -> None:
        body = envelope.to_json().encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _not_found(self, kind: str, message: str) -> None:
        self._send(404, Envelope(kind).fail("usage", message))

    # -- GET ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        path = self.path.rstrip("/").split("?", 1)[0] or "/"
        if path == "/healthz":
            self._send(200, Envelope("healthz", {
                "store": str(self.plane.store.root),
                "worker": dict(self.plane.worker.counters),
            }))
            return
        if path == "/experiments":
            from repro.experiments.registry import REGISTRY

            self._send(200, Envelope("experiments", {
                exp_id: entry.describe()
                for exp_id, entry in sorted(REGISTRY.items())
            }))
            return
        if path == "/jobs":
            self._send(200, Envelope("jobs", {
                "jobs": [job.to_dict()
                         for job in self.plane.store.list_jobs()],
            }))
            return
        if path == "/fleet":
            self._send(200, Envelope("fleet", self.plane.fleet.view()))
            return
        parts = path.strip("/").split("/")
        if len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            try:
                job = self.plane.store.load_job(job_id)
            except UnknownJobError as error:
                self._not_found("job", str(error))
                return
            if len(parts) == 2:
                self._send(200, Envelope("job", job.to_dict()))
                return
            if len(parts) == 3 and parts[2] == "result":
                try:
                    payload = self.plane.store.load_result(job_id)
                except UnknownJobError as error:
                    self._not_found("job-result", str(error))
                    return
                self._send(200, Envelope("job-result", payload))
                return
        self._not_found("request", f"no route for GET {self.path}")

    # -- POST -----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        path = self.path.rstrip("/")
        if path != "/jobs":
            self._not_found("request", f"no route for POST {self.path}")
            return
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        try:
            spec = JobSpec.from_dict(json.loads(raw.decode() or "{}"))
            job = self.plane.worker.submit(spec)
        except (json.JSONDecodeError, JobValidationError) as error:
            self._send(400, Envelope("job").fail("usage", str(error)))
            return
        self._send(201, Envelope("job", job.to_dict()))


def make_server(plane: ControlPlane, host: str = DEFAULT_HOST,
                port: int = DEFAULT_PORT) -> ThreadingHTTPServer:
    """An HTTP server bound to (host, port); port 0 picks a free one."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.plane = plane
    return server


def serve(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
          store_root: str = DEFAULT_STORE,
          ready_line=None) -> Tuple[ThreadingHTTPServer, ControlPlane]:
    """Boot the control plane: recover the store, start the worker
    thread, bind the server, announce readiness.  Blocks in
    ``serve_forever`` — callers wanting a background server use
    :func:`make_server` directly (the tests do)."""
    if ready_line is None:
        def ready_line(message):
            print(message, flush=True)
    plane = ControlPlane(store_root=store_root)
    plane.worker.start()
    server = make_server(plane, host, port)
    bound_host, bound_port = server.server_address[:2]
    ready_line(f"repro control plane listening on "
               f"http://{bound_host}:{bound_port} "
               f"(store={plane.store.root})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
        plane.worker.stop()
    return server, plane
