"""JSON file-backed RunStore: job specs, results, and BENCH history.

Layout (one directory, human-inspectable)::

    <root>/
      jobs/<job_id>.json      # Job record: spec + state + attempts
      results/<job_id>.json   # canonical result payload (see below)
      bench/BENCH_<name>.json # append-only BENCH history across runs

Every write is atomic (tmp file + ``os.replace``) and every JSON dump is
canonical — ``sort_keys=True, indent=2`` and a trailing newline — so the
same payload always produces byte-identical files.  That is what the
acceptance check leans on: a job submitted through the CLI and the same
job submitted over ``POST /jobs`` store *the same bytes*, and BENCH
trajectories stay diffable across PRs.  Result files deliberately
contain only the run's payload — no job id, no timestamps — so identity
is a plain file comparison.

Crash-resume: :meth:`RunStore.recover` flips any job left ``running``
(the worker process died mid-job) back to ``queued`` without touching
its attempt count; the worker re-queues them ahead of new work.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import UnknownJobError
from repro.ctrl.jobs import Job, JobSpec, QUEUED, RUNNING

#: Default store location (relative to the invoking directory).
DEFAULT_STORE = "runs"


def canonical_json(payload: Any) -> str:
    """The one serialization every stored artifact uses."""
    return json.dumps(payload, indent=2, sort_keys=True,
                      default=str) + "\n"


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class RunStore:
    """Persistent job + result + bench-history store (see module doc)."""

    def __init__(self, root: str = DEFAULT_STORE):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.bench_dir = self.root / "bench"
        for directory in (self.jobs_dir, self.results_dir,
                          self.bench_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- jobs -----------------------------------------------------------------

    def _job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _next_id(self) -> str:
        highest = 0
        for path in self.jobs_dir.glob("job-*.json"):
            suffix = path.stem.rsplit("-", 1)[-1]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
        return f"job-{highest + 1:06d}"

    def new_job(self, spec: JobSpec) -> Job:
        """Validate, allocate an id, persist as queued."""
        spec.validate()
        job = Job(self._next_id(), spec)
        self.save_job(job)
        return job

    def save_job(self, job: Job) -> None:
        _atomic_write(self._job_path(job.job_id),
                      canonical_json(job.to_dict()))

    def load_job(self, job_id: str) -> Job:
        path = self._job_path(job_id)
        if not path.is_file():
            raise UnknownJobError(
                f"no such job {job_id!r} in store {self.root}")
        return Job.from_dict(json.loads(path.read_text()))

    def list_jobs(self) -> List[Job]:
        jobs = []
        for path in sorted(self.jobs_dir.glob("job-*.json")):
            jobs.append(Job.from_dict(json.loads(path.read_text())))
        return jobs

    def recover(self) -> List[Job]:
        """Re-queue jobs a dead worker left ``running``; return every
        job now queued, FIFO by id (recovered ones keep their slot)."""
        queued = []
        for job in self.list_jobs():
            if job.state == RUNNING:
                job.transition(QUEUED)
                job.history.append("recovered")
                self.save_job(job)
            if job.state == QUEUED:
                queued.append(job)
        return queued

    # -- results --------------------------------------------------------------

    def _result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    def save_result(self, job_id: str, payload: Any) -> Path:
        """Store a job's result payload canonically; returns the path."""
        path = self._result_path(job_id)
        _atomic_write(path, canonical_json(payload))
        return path

    def load_result(self, job_id: str) -> Any:
        path = self._result_path(job_id)
        if not path.is_file():
            raise UnknownJobError(
                f"no stored result for job {job_id!r} in {self.root}")
        return json.loads(path.read_text())

    def result_bytes(self, job_id: str) -> bytes:
        """The stored result verbatim (byte-identity checks)."""
        path = self._result_path(job_id)
        if not path.is_file():
            raise UnknownJobError(
                f"no stored result for job {job_id!r} in {self.root}")
        return path.read_bytes()

    def has_result(self, job_id: str) -> bool:
        return self._result_path(job_id).is_file()

    # -- bench history ---------------------------------------------------------

    def record_bench(self, name: str, result: Dict[str, Any],
                     job_id: Optional[str] = None) -> Path:
        """Append one benchmark result to its BENCH history file."""
        path = self.bench_dir / f"BENCH_{name}.json"
        history = json.loads(path.read_text()) if path.is_file() else []
        entry = dict(result)
        if job_id is not None:
            entry["job_id"] = job_id
        history.append(entry)
        _atomic_write(path, canonical_json(history))
        return path

    def bench_history(self, name: str) -> List[Dict[str, Any]]:
        path = self.bench_dir / f"BENCH_{name}.json"
        return json.loads(path.read_text()) if path.is_file() else []
