"""Serialized job worker: FIFO submission, one job at a time.

This is the Aether-V execution model the NSM autoscaler already uses
in-simulation (``core/autoscaler.py``), lifted to the control plane:
submissions enqueue immediately, a single worker drains the queue in
order, and at most one run is ever in flight — so two jobs can never
interleave their simulations, and BENCH/chaos results stay comparable.

Lifecycle per attempt::

    queued -> running -> done                      (result persisted)
                     \\-> queued   after backoff    (attempts <= retries)
                     \\-> failed                    (retries exhausted)

Backoff is exponential off ``spec.backoff_base`` and flows through an
injectable ``sleep`` so tests run instantly.  On construction the
worker *recovers* the store: jobs a dead worker left ``running`` are
re-queued (same id, attempt count preserved) ahead of new submissions —
a killed-mid-job worker resumes without losing or duplicating a run.

The worker runs inline (:meth:`drain`, what the CLI uses) or as a
daemon thread (:meth:`start`, what ``repro serve`` uses).
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from typing import Callable, Dict, Optional

from repro.ctrl.executor import execute_job
from repro.ctrl.fleet import FleetState
from repro.ctrl.jobs import DONE, FAILED, Job, JobSpec, QUEUED, RUNNING
from repro.ctrl.store import RunStore


class JobWorker:
    """One store, one FIFO queue, one job in flight (module docstring)."""

    def __init__(self, store: RunStore,
                 fleet: Optional[FleetState] = None,
                 executor: Callable = execute_job,
                 sleep: Callable[[float], None] = time.sleep):
        self.store = store
        self.fleet = fleet if fleet is not None else FleetState()
        self.executor = executor
        self.sleep = sleep
        self.counters: Dict[str, int] = {
            "executed": 0, "retries": 0, "failed": 0, "recovered": 0,
        }
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._stopping = False
        for job in store.recover():
            if "recovered" in job.history:
                self.counters["recovered"] += 1
            self._queue.put(job.job_id)

    # -- submission ------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Validate + persist as queued + enqueue; returns the Job."""
        job = self.store.new_job(spec)
        self._queue.put(job.job_id)
        return job

    # -- execution -------------------------------------------------------------

    def drain(self) -> int:
        """Run every queued job to completion, FIFO; returns how many
        attempts were executed.  This is the synchronous (CLI) mode."""
        executed = 0
        while True:
            try:
                job_id = self._queue.get_nowait()
            except queue.Empty:
                return executed
            if job_id is None:
                continue
            executed += self._run_one(job_id)

    def start(self) -> "JobWorker":
        """Run as a daemon thread (the ``repro serve`` mode)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-job-worker", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop after the in-flight job finishes."""
        self._stopping = True
        self._queue.put(None)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def _loop(self) -> None:
        while not self._stopping:
            job_id = self._queue.get()
            if job_id is None:
                continue
            self._run_one(job_id)

    def _run_one(self, job_id: str) -> int:
        """One attempt of one job; re-queues on retryable failure.
        Returns the number of attempts executed (this call: 1)."""
        job = self.store.load_job(job_id)
        if job.state not in (QUEUED, RUNNING):
            return 0  # already finished (duplicate enqueue is a no-op)
        job.transition(RUNNING)
        job.attempts += 1
        self.store.save_job(job)
        self.counters["executed"] += 1
        try:
            payload = self.executor(
                job.spec, fleet_probe=self.fleet.probe(job.job_id))
        except Exception as error:  # noqa: BLE001 - jobs may fail anyhow
            job.error = "".join(traceback.format_exception_only(
                type(error), error)).strip()
            if job.attempts <= job.spec.max_retries:
                self.counters["retries"] += 1
                job.transition(QUEUED)
                self.store.save_job(job)
                self.sleep(job.backoff_for(job.attempts))
                self._queue.put(job.job_id)
            else:
                self.counters["failed"] += 1
                job.transition(FAILED)
                self.store.save_job(job)
            return 1
        self.store.save_result(job.job_id, payload)
        if job.spec.kind == "bench":
            for name, result in sorted(payload["results"].items()):
                self.store.record_bench(name, result, job_id=job.job_id)
        job.error = None
        job.transition(DONE)
        self.store.save_job(job)
        return 1

    def run_to_completion(self, spec: JobSpec) -> Job:
        """Submit + drain (the thin-adapter path the CLI verbs use):
        recovered and previously queued jobs run first, FIFO, then the
        new one; returns the new job's final record."""
        job = self.submit(spec)
        self.drain()
        return self.store.load_job(job.job_id)
