"""Job model for the control plane: every run is a Job.

A :class:`JobSpec` describes *what* to run — an experiment, a bench
sweep, a chaos/migration/autoscale scenario — with explicit parameters,
a seed, and a bounded retry budget.  A :class:`Job` is one spec's
lifecycle in the RunStore::

    queued -> running -> done
                     \\-> queued (retry, exponential backoff)
                     \\-> failed (retries exhausted)

Specs are validated *before* they are enqueued: unknown kinds, unknown
experiment ids, and unknown parameters are rejected with a
:class:`~repro.errors.JobValidationError` naming the allowed choices,
so a bad submission never reaches a runner as a ``TypeError``.
Experiment parameters validate against the declared interface in
``repro.experiments.registry``; the scenario kinds validate against the
tables below (cross-checked against the runners' real signatures by
``tests/test_ctrl_jobs.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import JobValidationError

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
STATES = (QUEUED, RUNNING, DONE, FAILED)

#: Parameters each scenario kind accepts (beyond the implicit seed).
#: ``experiment`` is special-cased: its parameter interface is declared
#: per-entry in repro.experiments.registry.
KIND_PARAMS: Dict[str, tuple] = {
    "experiment": (),  # resolved via the registry entry
    "bench": ("names", "quick", "profile_top"),
    "chaos": ("seed", "plan_name", "duration", "detection_timeout",
              "heartbeat_interval", "op_timeout"),
    "migrate": ("seed", "streams", "duration", "migrate_at",
                "payload_bytes", "pacing", "target_nsm",
                "blackout_base_sec"),
    "autoscale": ("seed", "ticks", "n_clients", "n_ags", "ce_shards",
                  "chaos", "max_nsms"),
    "capacity": ("seed", "scenario", "window", "n_vms", "rate_lo",
                 "rate_hi", "iterations", "ndr_loss", "pdr_loss"),
}

#: Kinds whose runner takes a ``seed`` parameter the spec's seed should
#: flow into when the caller did not pass one explicitly.
_SEEDED_KINDS = ("chaos", "migrate", "autoscale", "capacity")


class JobSpec:
    """What to run.  Immutable once submitted; persisted verbatim."""

    __slots__ = ("kind", "experiment", "params", "seed", "max_retries",
                 "backoff_base")

    def __init__(self, kind: str, experiment: Optional[str] = None,
                 params: Optional[Dict[str, Any]] = None, seed: int = 0,
                 max_retries: int = 2, backoff_base: float = 0.05):
        self.kind = kind
        self.experiment = experiment
        self.params = dict(params or {})
        self.seed = int(seed)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)

    def validate(self) -> None:
        """Reject malformed specs with a clear, typed error."""
        if self.kind not in KIND_PARAMS:
            raise JobValidationError(
                f"unknown job kind {self.kind!r}; choose from "
                f"{sorted(KIND_PARAMS)}")
        if self.max_retries < 0:
            raise JobValidationError(
                f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base < 0:
            raise JobValidationError(
                f"backoff_base must be >= 0: {self.backoff_base}")
        if self.kind == "experiment":
            if not self.experiment:
                raise JobValidationError(
                    "experiment jobs need an experiment id "
                    "(JobSpec.experiment / --id)")
            from repro.experiments.registry import experiment_entry

            experiment_entry(self.experiment).validate_kwargs(self.params)
            return
        if self.experiment:
            raise JobValidationError(
                f"{self.kind!r} jobs take no experiment id "
                f"(got {self.experiment!r})")
        allowed = KIND_PARAMS[self.kind]
        unknown = sorted(set(self.params) - set(allowed))
        if unknown:
            raise JobValidationError(
                f"unknown parameter(s) {unknown} for kind "
                f"{self.kind!r}; allowed: {', '.join(allowed)}")

    def effective_params(self) -> Dict[str, Any]:
        """Params as the executor will pass them: the spec's seed flows
        into seeded kinds unless the caller pinned one explicitly."""
        params = dict(self.params)
        if self.kind in _SEEDED_KINDS:
            params.setdefault("seed", self.seed)
        elif self.kind == "experiment":
            from repro.experiments.registry import experiment_entry

            entry = experiment_entry(self.experiment)
            if "seed" in entry.params:
                params.setdefault("seed", self.seed)
        return params

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "experiment": self.experiment,
            "params": dict(self.params),
            "seed": self.seed,
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        if not isinstance(data, dict):
            raise JobValidationError(
                f"job spec must be an object, got {type(data).__name__}")
        extra = set(data) - {"kind", "experiment", "params", "seed",
                             "max_retries", "backoff_base"}
        if extra:
            raise JobValidationError(
                f"unknown job-spec field(s): {sorted(extra)}")
        if "kind" not in data:
            raise JobValidationError("job spec needs a 'kind'")
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise JobValidationError("'params' must be an object")
        return cls(kind=data["kind"], experiment=data.get("experiment"),
                   params=params, seed=data.get("seed", 0),
                   max_retries=data.get("max_retries", 2),
                   backoff_base=data.get("backoff_base", 0.05))


class Job:
    """One spec's lifecycle in the RunStore."""

    __slots__ = ("job_id", "spec", "state", "attempts", "error",
                 "history")

    def __init__(self, job_id: str, spec: JobSpec, state: str = QUEUED,
                 attempts: int = 0, error: Optional[str] = None,
                 history: Optional[List[str]] = None):
        self.job_id = job_id
        self.spec = spec
        self.state = state
        self.attempts = attempts
        self.error = error
        self.history = list(history or [QUEUED])

    def transition(self, state: str) -> None:
        if state not in STATES:
            raise JobValidationError(f"unknown job state {state!r}")
        self.state = state
        self.history.append(state)

    def backoff_for(self, attempt: int) -> float:
        """Exponential backoff before re-running a failed attempt
        (attempt 1 -> base, 2 -> 2*base, 3 -> 4*base, …)."""
        return self.spec.backoff_base * (2 ** max(0, attempt - 1))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
            "history": list(self.history),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        return cls(job_id=data["id"], spec=JobSpec.from_dict(data["spec"]),
                   state=data["state"], attempts=data.get("attempts", 0),
                   error=data.get("error"),
                   history=data.get("history"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Job {self.job_id} {self.spec.kind} state={self.state} "
                f"attempts={self.attempts}>")
