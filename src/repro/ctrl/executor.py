"""The one executor every entry point runs jobs through.

``repro job submit``, ``POST /jobs``, and the legacy one-shot
subcommands (``repro chaos`` …) all end up in :func:`execute_job`, so a
run's stored payload is identical no matter which door it came in
through — that is the acceptance bar for this control plane.  The
executor is pure: it takes a validated :class:`~repro.ctrl.jobs.JobSpec`
(plus an optional fleet-state publisher) and returns a JSON-safe
payload.  Persistence and retries belong to the worker; rendering
belongs to the CLI/service layers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.ctrl.jobs import JobSpec

#: Signature of a fleet publisher: called with the live host mid-run.
FleetProbe = Callable[[object], None]


def execute_job(spec: JobSpec,
                fleet_probe: Optional[FleetProbe] = None) -> Dict[str, Any]:
    """Run one job synchronously and return its result payload.

    Payloads are deterministic for a fixed spec (runners are seeded
    DES workloads) and contain no wall-clock timestamps or job ids, so
    the RunStore can persist them byte-identically across invocations.
    """
    params = spec.effective_params()
    if spec.kind == "experiment":
        from repro.experiments.registry import (canonical_id,
                                                experiment_entry)

        entry = experiment_entry(spec.experiment)
        result = entry(**params)
        return {
            "kind": "experiment",
            "exp_id": canonical_id(spec.experiment),
            "params": params,
            "result": result.to_dict(),
        }
    if spec.kind == "bench":
        from repro.perf import run_benchmarks

        results = run_benchmarks(params.get("names") or None,
                                 quick=bool(params.get("quick", False)),
                                 profile_top=int(params.get("profile_top", 0)))
        return {"kind": "bench", "params": params, "results": results}
    if spec.kind == "chaos":
        from repro.faults.chaos import run_chaos

        result = run_chaos(fleet_probe=fleet_probe, **params)
        return {"kind": "chaos", "params": params, "result": result}
    if spec.kind == "migrate":
        from repro.faults.migration import run_migration

        result = run_migration(**params)
        return {"kind": "migrate", "params": params, "result": result}
    if spec.kind == "autoscale":
        from repro.experiments.fig_autoscale import run_autoscale_scenario

        result = run_autoscale_scenario(**params)
        return {"kind": "autoscale", "params": params, "result": result}
    if spec.kind == "capacity":
        from repro.perf.capacity import run_capacity

        result = run_capacity(**params)
        return {"kind": "capacity", "params": params, "result": result}
    raise AssertionError(f"unvalidated job kind {spec.kind!r}")
