"""Control-plane service: jobs, runs, and fleet state as an API.

This package makes the reproduction *operable* the way the paper makes
the network stack operable: every run — experiment, bench, chaos,
migrate, autoscale — is a :class:`~repro.ctrl.jobs.Job` with a
persisted spec, a retry budget, and a stored result, executed by one
serialized :class:`~repro.ctrl.worker.JobWorker` against a JSON
file-backed :class:`~repro.ctrl.store.RunStore`.  Two doors, one core:
the ``repro job`` CLI verbs and the ``repro serve`` REST layer
(``repro.ctrl.service``) both drive the same executor, so their stored
results are byte-identical.
"""

from repro.ctrl.envelope import Envelope
from repro.ctrl.executor import execute_job
from repro.ctrl.fleet import FleetState, fleet_snapshot
from repro.ctrl.jobs import Job, JobSpec
from repro.ctrl.store import RunStore
from repro.ctrl.worker import JobWorker

__all__ = [
    "Envelope",
    "execute_job",
    "FleetState",
    "fleet_snapshot",
    "Job",
    "JobSpec",
    "RunStore",
    "JobWorker",
]
