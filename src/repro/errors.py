"""Exception hierarchy for the NetKernel reproduction.

Socket-level failures mirror POSIX errno semantics so that application
models written against the BSD socket facade can handle errors the way a
real application would.
"""

from __future__ import annotations


class NetKernelError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(NetKernelError):
    """The discrete-event engine was used incorrectly."""


class ResourceError(NetKernelError):
    """A simulated resource (core, ring, hugepage region) was misused."""


class RingFullError(ResourceError):
    """An SPSC ring has no free slot for the produced element."""


class RingEmptyError(ResourceError):
    """An SPSC ring has no element to consume."""


class HugepageExhaustedError(ResourceError):
    """The hugepage region cannot satisfy an allocation."""


class ConfigurationError(NetKernelError):
    """A host, VM, or NSM was assembled with inconsistent parameters."""


class SocketError(NetKernelError):
    """Base class for BSD-socket-level failures; carries an errno name."""

    errno_name = "EIO"

    def __init__(self, message: str = ""):
        super().__init__(message or self.errno_name)


class BadFileDescriptorError(SocketError):
    """EBADF: the fd does not name an open socket."""

    errno_name = "EBADF"


class AddressInUseError(SocketError):
    """EADDRINUSE: bind() to an address already bound."""

    errno_name = "EADDRINUSE"


class ConnectionRefusedError_(SocketError):
    """ECONNREFUSED: no listener at the destination."""

    errno_name = "ECONNREFUSED"


class ConnectionResetError_(SocketError):
    """ECONNRESET: the peer aborted the connection."""

    errno_name = "ECONNRESET"


class NotConnectedError(SocketError):
    """ENOTCONN: operation requires an established connection."""

    errno_name = "ENOTCONN"


class AlreadyConnectedError(SocketError):
    """EISCONN: connect() on an already-connected socket."""

    errno_name = "EISCONN"


class InvalidSocketStateError(SocketError):
    """EINVAL: operation invalid for the socket's current state."""

    errno_name = "EINVAL"


class OperationWouldBlockError(SocketError):
    """EWOULDBLOCK: non-blocking operation cannot complete now."""

    errno_name = "EWOULDBLOCK"


class TimedOutError(SocketError):
    """ETIMEDOUT: the operation (connect, or a deadlined NQE op whose
    NSM never answered) timed out."""

    errno_name = "ETIMEDOUT"


#: Historical alias kept for callers written against the old name.
TimeoutError_ = TimedOutError


class MessageTooLargeError(SocketError):
    """EMSGSIZE: datagram larger than the allowed maximum."""

    errno_name = "EMSGSIZE"


#: The single errno-name → exception-class map.  Trailing-underscore
#: classes (ConnectionRefusedError_, ConnectionResetError_) exist only to
#: dodge the Python builtins of the same name; this table is the one
#: place that knows about the aliasing, so call sites raise via
#: :func:`socket_error_for` instead of hand-assembling SocketError
#: instances with a patched ``errno_name``.
ERRNO_EXCEPTIONS = {
    cls.errno_name: cls
    for cls in (
        BadFileDescriptorError,
        AddressInUseError,
        ConnectionRefusedError_,
        ConnectionResetError_,
        NotConnectedError,
        AlreadyConnectedError,
        InvalidSocketStateError,
        OperationWouldBlockError,
        TimedOutError,
        MessageTooLargeError,
    )
}


def socket_error_for(errno_name: str, message: str = "") -> SocketError:
    """The typed SocketError for an errno name (generic for unknowns)."""
    cls = ERRNO_EXCEPTIONS.get(errno_name)
    if cls is not None:
        return cls(message)
    error = SocketError(message or errno_name)
    error.errno_name = errno_name
    return error


__all__ = [
    "NetKernelError",
    "SimulationError",
    "ResourceError",
    "RingFullError",
    "RingEmptyError",
    "HugepageExhaustedError",
    "ConfigurationError",
    "SocketError",
    "BadFileDescriptorError",
    "AddressInUseError",
    "ConnectionRefusedError_",
    "ConnectionResetError_",
    "NotConnectedError",
    "AlreadyConnectedError",
    "InvalidSocketStateError",
    "OperationWouldBlockError",
    "TimedOutError",
    "TimeoutError_",
    "MessageTooLargeError",
    "ERRNO_EXCEPTIONS",
    "socket_error_for",
]
