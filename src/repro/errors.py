"""Exception hierarchy for the NetKernel reproduction.

Socket-level failures mirror POSIX errno semantics so that application
models written against the BSD socket facade can handle errors the way a
real application would.
"""

from __future__ import annotations


class NetKernelError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(NetKernelError):
    """The discrete-event engine was used incorrectly."""


class ResourceError(NetKernelError):
    """A simulated resource (core, ring, hugepage region) was misused."""


class RingFullError(ResourceError):
    """An SPSC ring has no free slot for the produced element."""


class RingEmptyError(ResourceError):
    """An SPSC ring has no element to consume."""


class HugepageExhaustedError(ResourceError):
    """The hugepage region cannot satisfy an allocation."""


class ConfigurationError(NetKernelError):
    """A host, VM, or NSM was assembled with inconsistent parameters."""


class ControlPlaneError(NetKernelError):
    """Base class for control-plane (repro.ctrl) failures."""


class JobValidationError(ControlPlaneError):
    """A JobSpec names an unknown kind, experiment, or parameter."""

    exit_name = "usage"


class UnknownJobError(ControlPlaneError):
    """A job id does not exist in the RunStore."""

    exit_name = "usage"


class JobExecutionError(ControlPlaneError):
    """A job's executor raised; the worker may retry it."""

    exit_name = "job-failed"


class SocketError(NetKernelError):
    """Base class for BSD-socket-level failures; carries an errno name."""

    errno_name = "EIO"

    def __init__(self, message: str = ""):
        super().__init__(message or self.errno_name)


class BadFileDescriptorError(SocketError):
    """EBADF: the fd does not name an open socket."""

    errno_name = "EBADF"


class AddressInUseError(SocketError):
    """EADDRINUSE: bind() to an address already bound."""

    errno_name = "EADDRINUSE"


class ConnectionRefusedError_(SocketError):
    """ECONNREFUSED: no listener at the destination."""

    errno_name = "ECONNREFUSED"


class ConnectionResetError_(SocketError):
    """ECONNRESET: the peer aborted the connection."""

    errno_name = "ECONNRESET"


class NotConnectedError(SocketError):
    """ENOTCONN: operation requires an established connection."""

    errno_name = "ENOTCONN"


class AlreadyConnectedError(SocketError):
    """EISCONN: connect() on an already-connected socket."""

    errno_name = "EISCONN"


class InvalidSocketStateError(SocketError):
    """EINVAL: operation invalid for the socket's current state."""

    errno_name = "EINVAL"


class OperationWouldBlockError(SocketError):
    """EWOULDBLOCK: non-blocking operation cannot complete now."""

    errno_name = "EWOULDBLOCK"


class TryAgainError(SocketError):
    """EAGAIN: the host shed this operation under overload.

    Distinct from :class:`TimedOutError` — an EAGAIN is an *admission*
    decision taken before (or at) the switch, so the guest knows its op
    never reached the NSM and may safely retry after backing off.  A
    deadline expiry stays ETIMEDOUT because the op's fate is unknown.
    """

    errno_name = "EAGAIN"


class TimedOutError(SocketError):
    """ETIMEDOUT: the operation (connect, or a deadlined NQE op whose
    NSM never answered) timed out."""

    errno_name = "ETIMEDOUT"


#: Historical alias kept for callers written against the old name.
TimeoutError_ = TimedOutError


class MessageTooLargeError(SocketError):
    """EMSGSIZE: datagram larger than the allowed maximum."""

    errno_name = "EMSGSIZE"


#: The single errno-name → exception-class map.  Trailing-underscore
#: classes (ConnectionRefusedError_, ConnectionResetError_) exist only to
#: dodge the Python builtins of the same name; this table is the one
#: place that knows about the aliasing, so call sites raise via
#: :func:`socket_error_for` instead of hand-assembling SocketError
#: instances with a patched ``errno_name``.
ERRNO_EXCEPTIONS = {
    cls.errno_name: cls
    for cls in (
        BadFileDescriptorError,
        AddressInUseError,
        ConnectionRefusedError_,
        ConnectionResetError_,
        NotConnectedError,
        AlreadyConnectedError,
        InvalidSocketStateError,
        OperationWouldBlockError,
        TryAgainError,
        TimedOutError,
        MessageTooLargeError,
    )
}


#: The single CLI/service exit-code table.  Every ``repro`` subcommand
#: and the control-plane job runner draw their process exit codes from
#: here (satellite of ISSUE 7): ``ok`` is success, ``usage`` is a bad
#: invocation (unknown experiment/parameter/job), and the rest name the
#: specific check that failed so CI logs are self-describing.
EXIT_CODES = {
    "ok": 0,
    "failure": 1,       # generic runtime failure
    "usage": 2,         # unknown id / unknown parameter / bad spec
    "divergence": 3,    # --verify fingerprint mismatch between runs
    "leak": 4,          # resource leak (hugepages, NQE pool, forwards)
    "disruption": 5,    # guest-visible resets/timeouts/mismatches
    "invariant": 6,     # assignment violation / pool imbalance
    "floor": 7,         # perf floor regression
    "job-failed": 8,    # control-plane job ended in state "failed"
}


def exit_code(name: str) -> int:
    """The numeric exit code for a named outcome (1 for unknowns)."""
    return EXIT_CODES.get(name, EXIT_CODES["failure"])


def socket_error_for(errno_name: str, message: str = "") -> SocketError:
    """The typed SocketError for an errno name (generic for unknowns)."""
    cls = ERRNO_EXCEPTIONS.get(errno_name)
    if cls is not None:
        return cls(message)
    error = SocketError(message or errno_name)
    error.errno_name = errno_name
    return error


__all__ = [
    "NetKernelError",
    "SimulationError",
    "ResourceError",
    "RingFullError",
    "RingEmptyError",
    "HugepageExhaustedError",
    "ConfigurationError",
    "ControlPlaneError",
    "JobValidationError",
    "UnknownJobError",
    "JobExecutionError",
    "EXIT_CODES",
    "exit_code",
    "SocketError",
    "BadFileDescriptorError",
    "AddressInUseError",
    "ConnectionRefusedError_",
    "ConnectionResetError_",
    "NotConnectedError",
    "AlreadyConnectedError",
    "InvalidSocketStateError",
    "OperationWouldBlockError",
    "TryAgainError",
    "TimedOutError",
    "TimeoutError_",
    "MessageTooLargeError",
    "ERRNO_EXCEPTIONS",
    "socket_error_for",
]
