"""Exception hierarchy for the NetKernel reproduction.

Socket-level failures mirror POSIX errno semantics so that application
models written against the BSD socket facade can handle errors the way a
real application would.
"""

from __future__ import annotations


class NetKernelError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(NetKernelError):
    """The discrete-event engine was used incorrectly."""


class ResourceError(NetKernelError):
    """A simulated resource (core, ring, hugepage region) was misused."""


class RingFullError(ResourceError):
    """An SPSC ring has no free slot for the produced element."""


class RingEmptyError(ResourceError):
    """An SPSC ring has no element to consume."""


class HugepageExhaustedError(ResourceError):
    """The hugepage region cannot satisfy an allocation."""


class ConfigurationError(NetKernelError):
    """A host, VM, or NSM was assembled with inconsistent parameters."""


class SocketError(NetKernelError):
    """Base class for BSD-socket-level failures; carries an errno name."""

    errno_name = "EIO"

    def __init__(self, message: str = ""):
        super().__init__(message or self.errno_name)


class BadFileDescriptorError(SocketError):
    """EBADF: the fd does not name an open socket."""

    errno_name = "EBADF"


class AddressInUseError(SocketError):
    """EADDRINUSE: bind() to an address already bound."""

    errno_name = "EADDRINUSE"


class ConnectionRefusedError_(SocketError):
    """ECONNREFUSED: no listener at the destination."""

    errno_name = "ECONNREFUSED"


class ConnectionResetError_(SocketError):
    """ECONNRESET: the peer aborted the connection."""

    errno_name = "ECONNRESET"


class NotConnectedError(SocketError):
    """ENOTCONN: operation requires an established connection."""

    errno_name = "ENOTCONN"


class AlreadyConnectedError(SocketError):
    """EISCONN: connect() on an already-connected socket."""

    errno_name = "EISCONN"


class InvalidSocketStateError(SocketError):
    """EINVAL: operation invalid for the socket's current state."""

    errno_name = "EINVAL"


class OperationWouldBlockError(SocketError):
    """EWOULDBLOCK: non-blocking operation cannot complete now."""

    errno_name = "EWOULDBLOCK"


class TimeoutError_(SocketError):
    """ETIMEDOUT: the operation (e.g. connect) timed out."""

    errno_name = "ETIMEDOUT"


class MessageTooLargeError(SocketError):
    """EMSGSIZE: datagram larger than the allowed maximum."""

    errno_name = "EMSGSIZE"
