"""NQE lifecycle tracing (the paper's §6/§7 per-stage breakdowns).

Each traced NQE carries a ``trace`` dict of sim-time stamps written at the
four datapath stations:

* ``guest_enqueue`` — GuestLib placed the NQE in its produce ring
* ``ce_out`` / ``ce_back`` — CoreEngine switched it (VM→NSM / NSM→VM)
* ``nsm_consume`` — ServiceLib popped it
* ``nsm_emit`` — ServiceLib produced the response/event NQE

Request/response pairs are correlated by the NQE token (``Nqe.response``
copies the request token), yielding end-to-end latency per op type; every
adjacent pair of stamps yields a per-hop histogram.  Stamping is pure
bookkeeping: no simulated cycles, no events, so an instrumented run has a
timeline identical to an uninstrumented one.
"""

from __future__ import annotations

from typing import Dict

from repro.core.nqe import Nqe, NqeOp
from repro.core.nk_device import ROLE_VM

#: VM→NSM requests that never get a token-matched response NQE; their
#: in-flight record is retired at NSM consume time (one-way latency).
ONE_WAY_OPS = frozenset((NqeOp.SEND, NqeOp.SENDTO, NqeOp.RECV_CREDIT,
                         NqeOp.ACCEPT_ATTACH))

#: Hop names in datapath order (guest → CE → NSM → CE → guest).
HOP_STAGES = ("guest_to_ce", "ce_to_nsm", "nsm_service",
              "nsm_to_ce", "ce_to_guest")


class NqeTracer:
    """Stamps NQEs at each station and folds deltas into histograms."""

    def __init__(self, sim, registry, max_inflight: int = 65536):
        self.sim = sim
        self.registry = registry
        self.max_inflight = max_inflight
        #: token -> request trace dict, for end-to-end correlation.
        self._inflight: Dict[int, dict] = {}
        self._hops = {stage: registry.histogram(f"nqe.hop.{stage}")
                      for stage in HOP_STAGES}
        self.traced = registry.counter("nqe.traced")
        self.dropped_records = registry.counter("nqe.trace_overflow")

    # -- stations, in datapath order ----------------------------------------

    def guest_enqueue(self, nqe: Nqe) -> None:
        trace = {"op": nqe.op, "vm_id": nqe.vm_id,
                 "guest_enqueue": self.sim.now}
        nqe.trace = trace
        self.traced.inc()
        if len(self._inflight) < self.max_inflight:
            self._inflight[nqe.token] = trace
        else:
            self.dropped_records.inc()

    def ce_switch(self, nqe: Nqe, source_role: str) -> None:
        trace = nqe.trace
        if trace is None:
            return  # produced before tracing was enabled
        now = self.sim.now
        if source_role == ROLE_VM:
            trace["ce_out"] = now
            self._hops["guest_to_ce"].record(now - trace["guest_enqueue"])
        else:
            trace["ce_back"] = now
            self._hops["nsm_to_ce"].record(now - trace["nsm_emit"])

    def nsm_consume(self, nqe: Nqe) -> None:
        trace = nqe.trace
        if trace is None or "ce_out" not in trace:
            return
        now = self.sim.now
        trace["nsm_consume"] = now
        self._hops["ce_to_nsm"].record(now - trace["ce_out"])
        if nqe.op in ONE_WAY_OPS:
            request = self._inflight.pop(nqe.token, None)
            if request is not None:
                self.registry.histogram(
                    f"nqe.oneway.{nqe.op.name}", vm=nqe.vm_id,
                ).record(now - request["guest_enqueue"])

    def nsm_emit(self, nqe: Nqe) -> None:
        now = self.sim.now
        nqe.trace = {"op": nqe.op, "vm_id": nqe.vm_id, "nsm_emit": now}
        request = self._inflight.get(nqe.token)
        if request is not None and "nsm_consume" in request:
            self._hops["nsm_service"].record(now - request["nsm_consume"])

    def guest_deliver(self, nqe: Nqe) -> None:
        trace = nqe.trace
        if trace is None or "ce_back" not in trace:
            return
        now = self.sim.now
        trace["guest_deliver"] = now
        self._hops["ce_to_guest"].record(now - trace["ce_back"])
        request = self._inflight.pop(nqe.token, None)
        if request is not None:
            # Token-matched response: full request→response round trip,
            # keyed by the *request* op (SOCKET, CONNECT, CLOSE, ...).
            self.registry.histogram(
                f"nqe.e2e.{request['op'].name}", vm=nqe.vm_id,
            ).record(now - request["guest_enqueue"])
        else:
            # Unsolicited event (DATA_ARRIVED, ACCEPT_EVENT, ...): one-way
            # NSM→guest delivery latency.
            self.registry.histogram(
                f"nqe.event.{nqe.op.name}", vm=nqe.vm_id,
            ).record(now - trace["nsm_emit"])

    # -- reporting -----------------------------------------------------------

    def hop_snapshot(self) -> list:
        """Per-hop histogram snapshots in datapath order."""
        return [dict(self._hops[stage].snapshot(), stage=stage)
                for stage in HOP_STAGES]
