"""Periodic samplers: ring occupancy, hugepage watermarks, token buckets.

A sampler is a simulation process that snapshots resource levels into
gauges at a fixed interval.  Sampling reads state but never mutates the
workload, so enabling it cannot change what the simulation computes —
only *when* the observer looks.
"""

from __future__ import annotations


class PeriodicSampler:
    """Runs ``fn()`` every ``interval`` seconds of sim time."""

    def __init__(self, sim, interval: float, fn):
        if interval <= 0:
            raise ValueError(f"sample interval must be positive: {interval}")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.samples = 0
        self._proc = sim.process(self._run())

    def _run(self):
        while True:
            self.fn()
            self.samples += 1
            yield self.sim.timeout(self.interval)


def sample_host(registry, host) -> None:
    """One snapshot of a NetKernelHost's queues, memory, and buckets."""
    now = host.sim.now

    def sample_device(owner: str, device) -> None:
        for ring_id, depths in device.ring_depths().items():
            labels = {"owner": owner, "ring": ring_id}
            registry.gauge("ring.depth", **labels).set(
                depths["depth"], now)
            registry.gauge("ring.peak_depth", **labels).set(
                depths["peak"], now)

    seen_regions = {}
    for name, vm in host.vms.items():
        device = vm.guestlib.device
        sample_device(name, device)
        seen_regions[device.hugepages.name] = device.hugepages
    for name, nsm in host.nsms.items():
        sample_device(name, nsm.servicelib.device)

    for region_name, region in seen_regions.items():
        marks = region.watermarks()
        for key in ("allocated", "free", "peak_allocated", "live_buffers"):
            registry.gauge(f"hugepages.{key}", region=region_name).set(
                marks[key], now)

    for vm_id, buckets in host.coreengine.isolation_state().items():
        for kind, state in buckets.items():
            labels = {"vm": vm_id, "kind": kind}
            registry.gauge("token_bucket.tokens", **labels).set(
                state["tokens"], now)
            registry.gauge("token_bucket.burst", **labels).set(
                state["burst"], now)
            registry.gauge("token_bucket.rate", **labels).set(
                state["rate"], now)
