"""Simulation-aware metric primitives: counters, gauges, histograms.

Everything here is plain bookkeeping on simulated quantities — recording a
value never touches the event loop, charges no cycles, and therefore never
perturbs the simulated timeline.  That property is what lets the same run
be executed with observability on or off and produce identical results
(asserted by tests/test_obs.py).

Histograms use fixed geometric buckets so that recording is O(log n) and
percentiles are O(buckets); the reported percentile is the upper edge of
the bucket the rank falls in, i.e. accurate to one bucket width.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterator, List, Optional, Tuple

LabelItems = Tuple[Tuple[str, object], ...]


def _label_key(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted(labels.items()))


def geometric_bounds(lower: float, upper: float, count: int) -> List[float]:
    """``count`` bucket upper-edges spaced geometrically in [lower, upper]."""
    if lower <= 0 or upper <= lower or count < 2:
        raise ValueError(f"bad histogram bounds: [{lower}, {upper}] x{count}")
    ratio = (upper / lower) ** (1.0 / (count - 1))
    return [lower * ratio ** i for i in range(count)]


#: Default latency buckets: 100 ns .. 1 s, 64 geometric buckets (~30%
#: resolution per bucket — plenty for p50/p95/p99 of µs-scale datapaths).
DEFAULT_LATENCY_BOUNDS = geometric_bounds(1e-7, 1.0, 64)


class Counter:
    """A monotonically increasing count (events, bytes, drops...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, object]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value}


class Gauge:
    """A point-in-time level (ring depth, tokens, bytes allocated...)."""

    __slots__ = ("name", "labels", "value", "updated_at")

    def __init__(self, name: str, labels: Dict[str, object]):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.updated_at: Optional[float] = None

    def set(self, value: float, now: Optional[float] = None) -> None:
        self.value = value
        self.updated_at = now

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value, "updated_at": self.updated_at}


class Histogram:
    """Fixed-bucket histogram with percentile estimation."""

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total",
                 "min_value", "max_value", "overflow")

    def __init__(self, name: str, labels: Dict[str, object],
                 bounds: Optional[List[float]] = None):
        self.name = name
        self.labels = labels
        self.bounds = bounds if bounds is not None else DEFAULT_LATENCY_BOUNDS
        self.counts = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf
        self.overflow = 0  # values above the top bucket edge

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        index = bisect.bisect_left(self.bounds, value)
        if index >= len(self.counts):
            self.overflow += 1
        else:
            self.counts[index] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.overflow += other.overflow
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def percentile(self, p: float) -> float:
        """The upper edge of the bucket holding the p-th percentile
        (0 < p <= 1); exact max for ranks landing past the top bucket."""
        if self.count == 0:
            return 0.0
        rank = p * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= rank:
                # Clamp to the observed extremes: the bucket edge can
                # overshoot the true max (or undershoot the min) by up to
                # one bucket width.
                return min(max(self.bounds[i], self.min_value),
                           self.max_value)
        return self.max_value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self.max_value if self.count else 0.0,
            "min": self.min_value if self.count else 0.0,
        }


class MetricsRegistry:
    """Get-or-create store of metrics keyed by (name, labels)."""

    def __init__(self):
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, labels)
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, labels)
        return metric

    def histogram(self, name: str, bounds: Optional[List[float]] = None,
                  **labels) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(name, labels, bounds)
        return metric

    def histograms_named(self, prefix: str) -> Iterator[Histogram]:
        """All histograms whose name starts with ``prefix``."""
        for (name, _), metric in sorted(self._histograms.items()):
            if name.startswith(prefix):
                yield metric

    def counters_named(self, prefix: str) -> Iterator[Counter]:
        """All counters whose name starts with ``prefix``."""
        for (name, _), metric in sorted(self._counters.items()):
            if name.startswith(prefix):
                yield metric

    def gauges_named(self, prefix: str) -> Iterator[Gauge]:
        """All gauges whose name starts with ``prefix``."""
        for (name, _), metric in sorted(self._gauges.items()):
            if name.startswith(prefix):
                yield metric

    def snapshot(self) -> dict:
        """Everything, as plain JSON-serializable dicts."""
        return {
            "counters": [m.snapshot()
                         for _, m in sorted(self._counters.items())],
            "gauges": [m.snapshot()
                       for _, m in sorted(self._gauges.items())],
            "histograms": [m.snapshot()
                           for _, m in sorted(self._histograms.items())],
        }
