"""repro.obs: the datapath observability layer.

One :class:`Observability` instance owns a :class:`MetricsRegistry`, an
:class:`NqeTracer`, a :class:`CpuAccountant`, and (optionally) a periodic
:class:`PeriodicSampler`.  Components hold an ``obs`` attribute that is
``None`` by default; every hook site is guarded by ``if obs is not None``
so a run without observability pays nothing beyond that attribute check.

Enable it on a host before (or after — late components are wired too)
building VMs and NSMs::

    host = NetKernelHost(sim, network)
    obs = host.enable_observability(sample_interval=1e-3)
    ...
    sim.run(until=1.0)
    report = obs.report()     # stages, ops, rings, buckets, cycles

Hooks never yield, never charge cycles, and never create simulation
events (the sampler is a separate process reading state), so the
simulated timeline of the workload is identical with observability on or
off — asserted by tests/test_obs.py.
"""

from __future__ import annotations

from typing import Optional

from repro.cpu.accounting import CpuAccountant
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               geometric_bounds)
from repro.obs.samplers import PeriodicSampler, sample_host
from repro.obs.trace import HOP_STAGES, NqeTracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NqeTracer",
    "Observability", "PeriodicSampler", "geometric_bounds", "HOP_STAGES",
]

#: Which cycle ledger (group, component) backs each latency stage in the
#: combined report.  ce.switch serves both directions of the switch.
STAGE_CYCLE_SOURCES = {
    "guest_to_ce": ("vms", "guestlib.prep"),
    "ce_to_nsm": ("ce", "ce.switch"),
    "nsm_service": ("nsms", "servicelib.dispatch"),
    "nsm_to_ce": ("ce", "ce.switch"),
    "ce_to_guest": ("vms", "guestlib.dispatch"),
}


class Observability:
    """Facade wiring tracer + metrics + samplers into a NetKernelHost."""

    def __init__(self, sim):
        self.sim = sim
        self.registry = MetricsRegistry()
        self.tracer = NqeTracer(sim, self.registry)
        self.accountant = CpuAccountant()
        self.sampler: Optional[PeriodicSampler] = None
        self._host = None

    # -- component hooks (hot path; must stay cheap and side-effect free) --

    def on_guest_enqueue(self, nqe) -> None:
        self.tracer.guest_enqueue(nqe)

    def on_ce_switch(self, nqe, source_role: str) -> None:
        self.tracer.ce_switch(nqe, source_role)

    def on_nsm_consume(self, nqe) -> None:
        self.tracer.nsm_consume(nqe)

    def on_nsm_emit(self, nqe) -> None:
        self.tracer.nsm_emit(nqe)

    def on_guest_deliver(self, nqe) -> None:
        self.tracer.guest_deliver(nqe)

    # -- failure/recovery hooks (§8) --------------------------------------

    def on_nsm_quarantined(self, nsm_id: int, reason: str,
                           vms_moved: int) -> None:
        self.registry.counter("failover.quarantines").inc()
        self.registry.counter("failover.vms_moved").inc(vms_moved)

    def on_migration(self, vm_id: int, source_nsm: int, target_nsm: int,
                     blackout_sec: float, sockets_moved: int,
                     parked_ops: int) -> None:
        """A live migration completed: record its blackout and volume."""
        self.registry.counter("migration.completed").inc()
        self.registry.counter("migration.sockets_moved").inc(sockets_moved)
        self.registry.counter("migration.parked_ops").inc(parked_ops)
        self.registry.histogram("migration.blackout_sec").record(blackout_sec)

    def on_autoscale(self, action: str, detail: str = "") -> None:
        """An autoscaler job completed (spawn / retire / migrate)."""
        self.registry.counter(f"autoscale.{action}").inc()

    def on_op_timeout(self, op) -> None:
        self.registry.counter("guestlib.op_timeouts",
                              op=getattr(op, "name", str(op))).inc()

    def on_op_retry(self, op) -> None:
        self.registry.counter("guestlib.op_retries",
                              op=getattr(op, "name", str(op))).inc()

    # -- overload hooks ----------------------------------------------------

    def on_overload_level(self, engine, old_level: int, new_level: int,
                          occupancy: float, latency_ewma: float) -> None:
        """A governor changed pressure level (reads only; no events)."""
        self.registry.counter("overload.level_transitions").inc()
        self.registry.gauge("overload.level").set(new_level)
        self.registry.gauge("overload.occupancy").set(occupancy)
        self.registry.gauge("overload.latency_ewma").set(latency_ewma)

    def on_op_shed(self, op) -> None:
        """A guest op failed fast with EAGAIN (admission control)."""
        self.registry.counter("guestlib.op_sheds",
                              op=getattr(op, "name", str(op))).inc()

    # -- wiring ------------------------------------------------------------

    def attach_host(self, host,
                    sample_interval: Optional[float] = None) -> "Observability":
        """Install hooks on a host's CoreEngine and all current (and
        future — see NetKernelHost.add_vm/add_nsm) VMs and NSMs."""
        self._host = host
        host.obs = self
        host.coreengine.obs = self
        self.accountant.register("ce", getattr(host, "ce_cores", None)
                                 or [host.ce_core])
        for vm in host.vms.values():
            self.attach_vm(vm)
        for nsm in host.nsms.values():
            self.attach_nsm(nsm)
        if sample_interval is not None:
            self.sampler = PeriodicSampler(self.sim, sample_interval,
                                           self.sample_now)
        return self

    def attach_vm(self, vm) -> None:
        vm.guestlib.obs = self
        self.accountant.register("vms", vm.cores)

    def attach_nsm(self, nsm) -> None:
        nsm.servicelib.obs = self
        self.accountant.register("nsms", nsm.cores)

    def sample_now(self) -> None:
        """Snapshot rings/hugepages/token-buckets into gauges right now."""
        if self._host is not None:
            sample_host(self.registry, self._host)

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict:
        """The combined per-stage latency + cycles report (JSON-ready)."""
        self.sample_now()
        component_cycles = {
            group: self.accountant.by_component(group)
            for group in self.accountant.groups()
        }
        stages = []
        for snap in self.tracer.hop_snapshot():
            group, component = STAGE_CYCLE_SOURCES[snap["stage"]]
            stages.append({
                "stage": snap["stage"],
                "count": snap["count"],
                "p50_us": snap["p50"] * 1e6,
                "p95_us": snap["p95"] * 1e6,
                "p99_us": snap["p99"] * 1e6,
                "max_us": snap["max"] * 1e6,
                "mean_us": snap["mean"] * 1e6,
                "cycles": component_cycles.get(group, {}).get(component, 0.0),
            })
        ops = []
        for prefix in ("nqe.e2e.", "nqe.oneway.", "nqe.event."):
            for hist in self.registry.histograms_named(prefix):
                snap = hist.snapshot()
                ops.append({
                    "op": hist.name.split(".", 2)[2],
                    "kind": hist.name.split(".", 2)[1],
                    "vm": hist.labels.get("vm"),
                    "count": snap["count"],
                    "p50_us": snap["p50"] * 1e6,
                    "p95_us": snap["p95"] * 1e6,
                    "p99_us": snap["p99"] * 1e6,
                    "max_us": snap["max"] * 1e6,
                })
        rings = {}
        for gauge in self.registry.gauges_named("ring."):
            owner = gauge.labels["owner"]
            ring = gauge.labels["ring"]
            field = gauge.name.split(".", 1)[1]
            rings.setdefault(f"{owner}.{ring}", {})[field] = gauge.value
        hugepages = {}
        for gauge in self.registry.gauges_named("hugepages."):
            region = gauge.labels["region"]
            field = gauge.name.split(".", 1)[1]
            hugepages.setdefault(region, {})[field] = gauge.value
        token_buckets = (self._host.coreengine.isolation_state()
                         if self._host is not None else {})
        report = {
            "stages": stages,
            "ops": ops,
            "rings": rings,
            "hugepages": hugepages,
            "token_buckets": {str(vm): state
                              for vm, state in token_buckets.items()},
            "cycles": component_cycles,
            "counters": {m.name: m.value
                         for m in (self.tracer.traced,
                                   self.tracer.dropped_records)},
        }
        failover = {}
        for prefix in ("failover.", "guestlib.op_"):
            for counter in self.registry.counters_named(prefix):
                key = counter.name
                op = counter.labels.get("op")
                if op:
                    key = f"{key}.{op}"
                failover[key] = failover.get(key, 0) + counter.value
        if failover:
            report["failover"] = failover
        migration = {}
        for counter in self.registry.counters_named("migration."):
            migration[counter.name] = counter.value
        for hist in self.registry.histograms_named("migration."):
            snap = hist.snapshot()
            migration[hist.name] = {
                "count": snap["count"],
                "p50": snap["p50"],
                "p99": snap["p99"],
                "max": snap["max"],
                "mean": snap["mean"],
            }
        if migration:
            report["migration"] = migration
        autoscale = {}
        for counter in self.registry.counters_named("autoscale."):
            autoscale[counter.name] = counter.value
        if autoscale:
            report["autoscale"] = autoscale
        if self._host is not None:
            engine = self._host.coreengine
            report["coreengine"] = engine.stats()
            per_vm_drops = getattr(engine, "per_vm_drops", None)
            if per_vm_drops is not None:
                drops = per_vm_drops()
                if drops:
                    report["per_vm_drops"] = {str(vm): d
                                              for vm, d in drops.items()}
            governor = getattr(engine, "overload", None)
            if governor is not None:
                report["overload"] = governor.stats()
        return report
