"""BSD socket facade over an in-guest stack (the status quo).

Same :class:`~repro.core.sockets.SocketApi` surface as NetKernel's facade,
so identical application coroutines run on both architectures — the
property the paper's evaluation relies on.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.guestlib import EPOLLIN, EPOLLOUT, EpollInstance
from repro.core.sockets import SocketApi
from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import (
    BadFileDescriptorError,
    InvalidSocketStateError,
    NotConnectedError,
    SocketError,
)
from repro.stack.base import NetworkStack


class BaselineSocket:
    """Wraps a stack-level connection with readiness + waiter state."""

    def __init__(self, api: "BaselineSocketApi", fd: int, conn):
        self.api = api
        self.fd = fd
        self.conn = conn
        self.state = "created"
        self.errno: Optional[str] = None
        self.accept_q: Deque["BaselineSocket"] = deque()
        self._readable_waiters: List = []
        self._writable_waiters: List = []
        self._connect_waiters: List = []
        self.watchers: Set[EpollInstance] = set()
        self.bytes_sent = 0
        self.bytes_received = 0
        self._install_callbacks()

    def _install_callbacks(self) -> None:
        conn = self.conn
        conn.on_readable = lambda _c: self._wake_readable()
        conn.on_writable = lambda _c: self._wake_writable()
        conn.on_accept_ready = lambda _c: self._on_accept_ready()
        conn.on_connected = lambda _c: self._on_connected()
        conn.on_error = lambda _c, errno: self._on_error(errno)

    # -- readiness (mirrors NetKernelSocket's surface for EpollInstance) ----

    @property
    def readable(self) -> bool:
        if self.state == "listening":
            return bool(self.accept_q)
        return (self.conn.readable_bytes > 0 or self.conn.eof
                or bool(self.errno))

    @property
    def writable(self) -> bool:
        return (self.state == "connected"
                and self.conn.send_buf.free_space > 0)

    @property
    def eof(self) -> bool:
        return self.conn.eof

    # -- callback plumbing ---------------------------------------------------

    def _wake(self, waiters: List) -> None:
        pending, waiters[:] = list(waiters), []
        for event in pending:
            if not event.triggered:
                event.succeed()

    def _notify_epolls(self) -> None:
        for epoll in list(self.watchers):
            epoll.notify(self)

    def _wake_readable(self) -> None:
        self._wake(self._readable_waiters)
        self._notify_epolls()

    def _wake_writable(self) -> None:
        self._wake(self._writable_waiters)
        self._notify_epolls()

    def _on_accept_ready(self) -> None:
        # Materialize accepted connections eagerly so readiness is visible.
        while True:
            child_conn = self.api.stack.accept(self.conn)
            if child_conn is None:
                break
            child = self.api._wrap(child_conn)
            child.state = "connected"
            self.accept_q.append(child)
        self._wake_readable()

    def _on_connected(self) -> None:
        self.state = "connected"
        self._wake(self._connect_waiters)
        self._notify_epolls()

    def _on_error(self, errno: str) -> None:
        self.errno = errno
        self._wake(self._connect_waiters)
        self._wake(self._readable_waiters)
        self._wake(self._writable_waiters)
        self._notify_epolls()


class BaselineDgramSocket:
    """Wrapper over a stack-level UDP socket (datagram baseline path)."""

    def __init__(self, api: "BaselineSocketApi", fd: int, usock):
        self.api = api
        self.fd = fd
        self.usock = usock
        self.kind = "dgram"
        self.state = "created"
        self.errno = None
        self._readable_waiters: List = []
        self.watchers: Set[EpollInstance] = set()
        usock.on_readable = lambda _s: self._wake_readable()

    @property
    def readable(self) -> bool:
        return bool(self.usock.rx)

    @property
    def writable(self) -> bool:
        return True

    def _wake_readable(self) -> None:
        pending, self._readable_waiters[:] = list(self._readable_waiters), []
        for event in pending:
            if not event.triggered:
                event.succeed()
        for epoll in list(self.watchers):
            epoll.notify(self)


class BaselineSocketApi(SocketApi):
    """The in-guest stack behind classic syscalls."""

    def __init__(self, sim, stack: NetworkStack, cores: List[Core],
                 cost_model: CostModel = DEFAULT_COST_MODEL):
        self.sim = sim
        self.stack = stack
        self.cores = cores
        self.cost = cost_model
        self.fd_table: Dict[int, BaselineSocket] = {}
        self._next_fd = 3

    # -- helpers ----------------------------------------------------------------

    def _core(self, vcpu: int) -> Core:
        return self.cores[vcpu % len(self.cores)]

    def _wrap(self, conn) -> BaselineSocket:
        fd = self._next_fd
        self._next_fd += 1
        sock = BaselineSocket(self, fd, conn)
        self.fd_table[fd] = sock
        return sock

    def _raise_errno(self, sock: BaselineSocket) -> None:
        if sock.errno:
            error = SocketError(sock.errno)
            error.errno_name = sock.errno
            raise error

    # -- API ----------------------------------------------------------------------

    def socket(self, vcpu: int = 0, sock_type: str = "stream"):
        yield self._core(vcpu).execute(
            self.cost.baseline_syscall_fixed * 0.3, "syscall.socket")
        if sock_type == "dgram":
            fd = self._next_fd
            self._next_fd += 1
            sock = BaselineDgramSocket(self, fd, self.stack.udp_socket())
            self.fd_table[fd] = sock
            return sock
        return self._wrap(self.stack.socket())

    def bind(self, sock, port: int, vcpu: int = 0):
        if getattr(sock, "kind", "stream") == "dgram":
            self.stack.udp_bind(sock.usock, port)
        else:
            self.stack.bind(sock.conn, port)
        sock.state = "bound"
        return 0
        yield  # pragma: no cover

    def listen(self, sock: BaselineSocket, backlog: int = 128, vcpu: int = 0):
        self.stack.listen(sock.conn, backlog)
        sock.state = "listening"
        return 0
        yield  # pragma: no cover

    def connect(self, sock: BaselineSocket, remote: Tuple[str, int],
                vcpu: int = 0):
        yield self._core(vcpu).execute(
            self.cost.baseline_syscall_fixed * 0.5, "syscall.connect")
        sock.state = "connecting"
        event = self.sim.event()
        sock._connect_waiters.append(event)
        self.stack.connect(sock.conn, remote)
        yield event
        if sock.errno:
            sock.state = "created"
            self._raise_errno(sock)
        sock.state = "connected"
        return 0

    def accept(self, listener: BaselineSocket, vcpu: int = 0):
        if listener.state != "listening":
            raise InvalidSocketStateError("accept() on a non-listener")
        while not listener.accept_q:
            event = self.sim.event()
            listener._readable_waiters.append(event)
            yield event
        return listener.accept_q.popleft()

    def accept_nonblocking(self, listener: BaselineSocket):
        if listener.state != "listening":
            raise InvalidSocketStateError("accept() on a non-listener")
        if listener.accept_q:
            return listener.accept_q.popleft()
        return None

    def send(self, sock: BaselineSocket, data: bytes, vcpu: int = 0):
        """Blocking send: one syscall + user→skb copy per chunk accepted."""
        if sock.state != "connected":
            raise NotConnectedError(f"send on {sock.state} socket")
        core = self._core(vcpu)
        total = 0
        while total < len(data):
            self._raise_errno(sock)
            accepted = self.stack.send(sock.conn, data[total:])
            if accepted:
                cycles = (self.cost.baseline_syscall_fixed
                          + accepted * self.cost.baseline_copy_per_byte)
                yield core.execute(cycles, "syscall.send")
                total += accepted
                sock.bytes_sent += accepted
            else:
                event = self.sim.event()
                sock._writable_waiters.append(event)
                yield event
        return total

    def recv(self, sock: BaselineSocket, max_bytes: int, vcpu: int = 0):
        core = self._core(vcpu)
        while True:
            self._raise_errno(sock)
            data = self.stack.recv(sock.conn, max_bytes)
            if data:
                cycles = (self.cost.baseline_syscall_fixed
                          + len(data) * self.cost.baseline_copy_per_byte)
                yield core.execute(cycles, "syscall.recv")
                sock.bytes_received += len(data)
                return data
            if sock.conn.eof:
                return b""
            if sock.state not in ("connected", "write_closed"):
                raise NotConnectedError(f"recv on {sock.state} socket")
            event = self.sim.event()
            sock._readable_waiters.append(event)
            yield event

    def recv_nonblocking(self, sock: BaselineSocket, max_bytes: int):
        data = self.stack.recv(sock.conn, max_bytes)
        if data:
            cycles = (self.cost.baseline_syscall_fixed
                      + len(data) * self.cost.baseline_copy_per_byte)
            yield self._core(0).execute(cycles, "syscall.recv")
            sock.bytes_received += len(data)
        return data

    def close(self, sock, vcpu: int = 0):
        if sock.state == "closed":
            return 0
        sock.state = "closed"
        self.fd_table.pop(sock.fd, None)
        for epoll in list(sock.watchers):
            epoll.unwatch(sock)
        if getattr(sock, "kind", "stream") == "dgram":
            self.stack.udp_close(sock.usock)
        else:
            self.stack.close(sock.conn)
        return 0
        yield  # pragma: no cover

    def sendto(self, sock: BaselineDgramSocket, data: bytes,
               dest: Tuple[str, int], vcpu: int = 0):
        cycles = (self.cost.baseline_syscall_fixed
                  + len(data) * self.cost.baseline_copy_per_byte)
        yield self._core(vcpu).execute(cycles, "syscall.sendto")
        return self.stack.udp_sendto(sock.usock, data, dest)

    def recvfrom(self, sock: BaselineDgramSocket, max_bytes: int,
                 vcpu: int = 0):
        core = self._core(vcpu)
        while True:
            item = self.stack.udp_recvfrom(sock.usock, max_bytes)
            if item is not None:
                data, source = item
                cycles = (self.cost.baseline_syscall_fixed
                          + len(data) * self.cost.baseline_copy_per_byte)
                yield core.execute(cycles, "syscall.recvfrom")
                return data, source
            event = self.sim.event()
            sock._readable_waiters.append(event)
            yield event

    def setsockopt(self, sock: BaselineSocket, option: str, value: int,
                   vcpu: int = 0):
        return 0
        yield  # pragma: no cover

    def shutdown(self, sock: BaselineSocket, vcpu: int = 0):
        """shutdown(SHUT_WR): FIN the write side, keep receiving."""
        self.stack.close(sock.conn)  # FIN after buffered data drains
        sock.state = "write_closed"
        return 0
        yield  # pragma: no cover

    # -- epoll (reuses the level-triggered emulation) -----------------------------

    def epoll_create(self) -> EpollInstance:
        epoll = EpollInstance(self, self._next_fd)
        self._next_fd += 1
        return epoll

    def epoll_ctl(self, epoll: EpollInstance, sock: BaselineSocket,
                  mask: int) -> None:
        if mask == 0:
            epoll.unwatch(sock)
        else:
            epoll.watch(sock, mask)

    def epoll_wait(self, epoll: EpollInstance, max_events: int = 64,
                   timeout: Optional[float] = None, vcpu: int = 0):
        deadline = None if timeout is None else self.sim.now + timeout
        while True:
            events = epoll.poll_ready(max_events)
            if events:
                return events
            if deadline is not None:
                # Guard against float rounding: now + (deadline - now) can
                # land a hair below deadline and would re-arm forever.
                remaining = deadline - self.sim.now
                if remaining <= 1e-12:
                    return []
            waiter = self.sim.event()
            epoll._waiters.append(waiter)
            if deadline is None:
                yield waiter
            else:
                yield self.sim.any_of(
                    [waiter, self.sim.timeout(remaining)])
