"""The baseline architecture the paper compares against: each VM runs its
own network stack behind a vNIC (Fig. 1a)."""

from repro.baseline.host import BaselineHost, BaselineVM
from repro.baseline.sockets import BaselineSocketApi

__all__ = ["BaselineHost", "BaselineVM", "BaselineSocketApi"]
