"""BaselineHost: today's architecture — every VM carries its own stack.

Each VM's stack registers directly on the fabric under the VM's name (its
vNIC), and applications use :class:`BaselineSocketApi`.  Stack work and
application work share the same vCPUs, which is exactly the coupling
NetKernel removes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.baseline.sockets import BaselineSocketApi
from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import ConfigurationError
from repro.net.fabric import Network
from repro.net.link import Link
from repro.stack.kernel_stack import KernelStack
from repro.stack.mtcp_stack import MtcpStack


class BaselineVM:
    """A VM with its network stack inside the guest (Fig. 1a)."""

    def __init__(self, sim, name: str, vcpus: int, user: str,
                 cost_model: CostModel):
        if vcpus < 1:
            raise ConfigurationError(f"VM needs >=1 vCPU, got {vcpus}")
        self.sim = sim
        self.name = name
        self.user = user
        self.cores: List[Core] = [
            Core(sim, name=f"{name}.cpu{i}", hz=cost_model.core_hz)
            for i in range(vcpus)
        ]
        self.cost = cost_model
        self.stack = None  # installed by BaselineHost.add_vm
        self._apps = []

    @property
    def vcpus(self) -> int:
        return len(self.cores)

    def spawn(self, app_generator) -> object:
        process = self.sim.process(app_generator)
        self._apps.append(process)
        return process

    def total_cycles(self) -> float:
        return sum(core.busy_cycles for core in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BaselineVM {self.name} vcpus={self.vcpus}>"


class BaselineHost:
    """One physical host running the current architecture."""

    def __init__(self, sim, network: Optional[Network] = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 name: str = "host"):
        self.sim = sim
        self.name = name
        self.cost = cost_model
        self.network = network if network is not None else Network(sim)
        self.vms: Dict[str, BaselineVM] = {}

    def add_vm(self, name: str, vcpus: int = 1, stack: str = "kernel",
               user: str = "tenant", cc_factory: Optional[Callable] = None,
               nic_rate_bps: Optional[float] = None,
               stack_kwargs: Optional[dict] = None) -> BaselineVM:
        """Boot a VM whose guest kernel runs the chosen stack."""
        if name in self.vms:
            raise ConfigurationError(f"VM {name} already exists")
        vm = BaselineVM(self.sim, name, vcpus, user, self.cost)
        kwargs = dict(stack_kwargs or {})
        uplink = downlink = None
        if nic_rate_bps is not None:
            uplink = Link(self.sim, nic_rate_bps,
                          self.network.default_delay_sec, name=f"{name}.up")
            downlink = Link(self.sim, nic_rate_bps,
                            self.network.default_delay_sec, name=f"{name}.down")

        network = self.network

        class _Fabric:
            def add_endpoint(self, host_id, handler):
                network.add_endpoint(host_id, handler,
                                     uplink=uplink, downlink=downlink)

            def send(self, packet):
                return network.send(packet)

        stack_cls = {"kernel": KernelStack, "mtcp": MtcpStack}.get(stack)
        if stack_cls is None:
            raise ConfigurationError(f"unknown baseline stack {stack!r}")
        vm.stack = stack_cls(self.sim, _Fabric(), name, vm.cores, self.cost,
                             cc_factory=cc_factory, **kwargs)
        self.vms[name] = vm
        return vm

    def socket_api(self, vm: BaselineVM) -> BaselineSocketApi:
        return BaselineSocketApi(self.sim, vm.stack, vm.cores, self.cost)

    def cycles_by_role(self) -> Dict[str, float]:
        return {
            "vms": sum(vm.total_cycles() for vm in self.vms.values()),
            "nsms": 0.0,
            "coreengine": 0.0,
        }
