"""The shared-memory NSM (use case 4, §6.4).

When two VMs of the same user are colocated, NetKernel can detect the
internal socket pair and copy message chunks directly between their
hugepage regions, bypassing TCP entirely.  This stack implements that: a
channel registry replaces the handshake, and "transmission" is a memory
copy paced by the host's DRAM bandwidth cap.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import (
    ConfigurationError,
    ConnectionRefusedError_,
    InvalidSocketStateError,
    NotConnectedError,
)

Address = Tuple[str, int]


class ShmChannel:
    """One endpoint of a shared-memory byte channel (StackSocket duck type)."""

    def __init__(self, stack: "SharedMemoryStack"):
        self.stack = stack
        self.state = "closed"
        self.local: Optional[Address] = None
        self.remote: Optional[Address] = None
        self.peer: Optional["ShmChannel"] = None
        self.backlog = 0
        self.accept_queue: List["ShmChannel"] = []
        self._recv = bytearray()
        self.recv_capacity = 4 * 1024 * 1024
        self.peer_closed = False
        # Callbacks (same surface as TcpConnection).
        self.on_readable: Optional[Callable[["ShmChannel"], None]] = None
        self.on_writable: Optional[Callable[["ShmChannel"], None]] = None
        self.on_accept_ready: Optional[Callable[["ShmChannel"], None]] = None
        self.on_connected: Optional[Callable[["ShmChannel"], None]] = None
        self.on_error: Optional[Callable[["ShmChannel", str], None]] = None
        self.on_closed: Optional[Callable[["ShmChannel"], None]] = None
        # Statistics.
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def established(self) -> bool:
        return self.state == "connected"

    @property
    def readable_bytes(self) -> int:
        return len(self._recv)

    @property
    def eof(self) -> bool:
        return self.peer_closed and not self._recv

    @property
    def recv_free(self) -> int:
        return self.recv_capacity - len(self._recv)


class SharedMemoryStack:
    """Moves bytes between colocated VMs with memory copies only."""

    name = "shm"

    def __init__(self, sim, cores: Sequence[Core],
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 host_id: str = "shm"):
        if not cores:
            raise ConfigurationError("shm stack needs >=1 core")
        self.sim = sim
        self.host_id = host_id
        self.cores: List[Core] = list(cores)
        self.cost = cost_model
        self._rr = 0
        self._listeners: Dict[Address, ShmChannel] = {}
        #: Memory-bandwidth pacing: time at which the copy engine frees up.
        self._mem_busy_until = 0.0
        self.bytes_copied = 0

    # -- socket API -------------------------------------------------------------

    def socket(self) -> ShmChannel:
        return ShmChannel(self)

    def bind(self, sock: ShmChannel, port: int) -> None:
        addr = (self.host_id, port)
        if sock.local is not None:
            raise InvalidSocketStateError("shm channel already bound")
        if addr in self._listeners:
            raise InvalidSocketStateError(f"shm address {addr} in use")
        sock.local = addr

    def listen(self, sock: ShmChannel, backlog: int = 128) -> None:
        if sock.local is None:
            raise InvalidSocketStateError("listen() before bind()")
        sock.state = "listen"
        sock.backlog = max(1, backlog)
        self._listeners[sock.local] = sock

    def connect(self, sock: ShmChannel, remote: Address) -> None:
        listener = self._listeners.get(remote)
        if listener is None or len(listener.accept_queue) >= listener.backlog:
            raise ConnectionRefusedError_(f"no shm listener at {remote}")
        child = self.socket()
        child.local = remote
        child.remote = sock.local or ("anon", 0)
        child.state = "connected"
        sock.remote = remote
        sock.state = "connected"
        sock.peer = child
        child.peer = sock
        listener.accept_queue.append(child)

        def notify() -> None:
            if listener.on_accept_ready:
                listener.on_accept_ready(listener)
            if sock.on_connected:
                sock.on_connected(sock)

        # Setup costs one control hop, not a network round trip.
        self.sim.call_later(2e-6, notify)

    def accept(self, listener: ShmChannel) -> Optional[ShmChannel]:
        if listener.state != "listen":
            raise InvalidSocketStateError("accept() on a non-listener")
        if listener.accept_queue:
            return listener.accept_queue.pop(0)
        return None

    def send(self, sock: ShmChannel, data: bytes) -> int:
        """Copy ``data`` toward the peer; returns bytes accepted now."""
        if sock.state != "connected" or sock.peer is None:
            raise NotConnectedError("shm send on unconnected channel")
        peer = sock.peer
        take = min(len(data), peer.recv_free)
        if take <= 0:
            return 0
        chunk = bytes(data[:take])

        # CPU cost of the copy (both directions handled by the NSM).
        cycles = self.cost.shm_nsm_fixed + take * self.cost.shm_nsm_per_byte
        core = self.cores[self._rr % len(self.cores)]
        self._rr += 1
        core.charge(cycles, "shm.copy")

        # DRAM bandwidth pacing: copies serialize on the memory system.
        copy_time = take * 8.0 / self.cost.mem_bw_cap_bps
        start = max(self.sim.now, self._mem_busy_until)
        self._mem_busy_until = start + copy_time
        done = self._mem_busy_until
        self.bytes_copied += take
        sock.bytes_sent += take

        def deliver() -> None:
            peer._recv.extend(chunk)
            peer.bytes_received += len(chunk)
            if peer.on_readable:
                peer.on_readable(peer)

        self.sim.call_at(done, deliver)
        return take

    def recv(self, sock: ShmChannel, max_bytes: int) -> bytes:
        take = min(max_bytes, len(sock._recv))
        data = bytes(sock._recv[:take])
        del sock._recv[:take]
        if take and sock.peer is not None and sock.peer.on_writable:
            sock.peer.on_writable(sock.peer)
        return data

    def close(self, sock: ShmChannel) -> None:
        if sock.state == "listen":
            self._listeners.pop(sock.local, None)
        elif sock.peer is not None:
            peer = sock.peer
            # The close notification must not overtake data still in the
            # copy pipeline — deliver it after the memory engine drains.
            when = max(self.sim.now + 1e-6, self._mem_busy_until + 1e-9)

            def notify_closed() -> None:
                peer.peer_closed = True
                if peer.on_readable:
                    peer.on_readable(peer)

            self.sim.call_at(when, notify_closed)
        sock.state = "closed"
        if sock.on_closed:
            sock.on_closed(sock)

    def abort(self, sock: ShmChannel) -> None:
        self.close(sock)
