"""VM-level congestion control (use case 2, §6.2).

The paper's proof of concept: one VM maintains a *global* congestion
window shared among all its connections; each flow's ACKs advance the
shared window, and no flow may keep more than 1/n of it in flight (n =
active flows).  This yields Seawall-style VM-level fairness: a selfish VM
opening more flows gains nothing.

:class:`VmSharedWindow` is the per-VM shared state an NSM keeps;
:class:`VmCC` is the per-flow adapter the TCP engine plugs in.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.stack.cc.base import CongestionControl, INITIAL_WINDOW_MSS


class VmSharedWindow:
    """The shared AIMD window for every flow of one VM."""

    def __init__(self, mss: int = 1448):
        if mss < 1:
            raise ValueError(f"mss must be positive: {mss}")
        self.mss = mss
        self.cwnd: float = float(INITIAL_WINDOW_MSS * mss)
        self.ssthresh: float = float("inf")
        self._flows: Set["VmCC"] = set()

    @property
    def active_flows(self) -> int:
        return max(1, len(self._flows))

    def register(self, flow: "VmCC") -> None:
        self._flows.add(flow)

    def unregister(self, flow: "VmCC") -> None:
        self._flows.discard(flow)

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_bytes: int) -> None:
        """Any flow's ACK advances the shared window."""
        if acked_bytes <= 0:
            return
        if self.in_slow_start:
            self.cwnd += acked_bytes
        else:
            self.cwnd += self.mss * acked_bytes / self.cwnd

    def on_loss(self, timeout: bool = False) -> None:
        """Any flow's loss halves (or resets) the shared window.

        The floors are deliberately independent of the flow count: the
        shared window is the congestion-control entity, and a VM must not
        regain bandwidth simply by opening more flows (the selfish-VM
        attack Fig. 9 defends against).
        """
        self.ssthresh = max(2.0 * self.mss, self.cwnd / 2.0)
        if timeout:
            self.cwnd = float(self.mss)
        else:
            self.cwnd = self.ssthresh

    def per_flow_window(self) -> float:
        """Each flow may keep at most 1/n of the shared window in flight."""
        return self.cwnd / self.active_flows


class VmCC(CongestionControl):
    """Per-flow view over a :class:`VmSharedWindow`."""

    name = "vmcc"

    def __init__(self, mss: int = 1448,
                 shared: Optional[VmSharedWindow] = None):
        super().__init__(mss)
        if shared is None:
            raise ValueError("VmCC requires the VM's VmSharedWindow")
        if shared.mss != mss:
            raise ValueError(
                f"flow mss {mss} differs from shared window mss {shared.mss}"
            )
        self.shared = shared
        shared.register(self)

    @property
    def window_bytes(self) -> int:
        # No per-flow MSS floor: with many flows each slice may be
        # sub-MSS (the engine then sends small segments), so the VM's
        # aggregate inflight stays bounded by the one shared window.
        return max(self.mss // 8, int(self.shared.per_flow_window()))

    def on_ack(self, acked_bytes: int, rtt: Optional[float] = None,
               ecn_echo: bool = False) -> None:
        self.shared.on_ack(acked_bytes)

    def on_fast_retransmit(self) -> None:
        self.shared.on_loss(timeout=False)

    def on_timeout(self) -> None:
        self.shared.on_loss(timeout=True)

    def on_connection_close(self) -> None:
        self.shared.unregister(self)
