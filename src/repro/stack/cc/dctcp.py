"""DCTCP: ECN-fraction-proportional window reduction.

The paper motivates NetKernel partly by how hard DCTCP is to deploy in
public clouds (§1); with NetKernel it is just another NSM.  Our links mark
ECN above a queue threshold and the engine echoes marks on ACKs.
"""

from __future__ import annotations

from typing import Optional

from repro.stack.cc.base import CongestionControl

#: EWMA gain for the mark fraction estimate (RFC 8257's g).
DCTCP_G = 1.0 / 16.0


class DctcpCC(CongestionControl):
    """Slow start + additive increase, with cwnd scaled by the smoothed
    fraction of ECN-marked bytes once per window."""

    name = "dctcp"

    def __init__(self, mss: int = 1448):
        super().__init__(mss)
        self.ssthresh: float = float("inf")
        self.alpha: float = 0.0
        self._acked_total = 0
        self._acked_marked = 0
        self._window_acked = 0.0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_bytes: int, rtt: Optional[float] = None,
               ecn_echo: bool = False) -> None:
        if acked_bytes <= 0:
            return
        self._acked_total += acked_bytes
        if ecn_echo:
            self._acked_marked += acked_bytes
        self._window_acked += acked_bytes

        if ecn_echo and self.in_slow_start:
            self.ssthresh = self.cwnd

        if self.in_slow_start:
            self.cwnd += acked_bytes
        else:
            self.cwnd += self.mss * acked_bytes / self.cwnd

        # Once per window: update alpha and apply the DCTCP cut.
        if self._window_acked >= self.cwnd:
            fraction = (self._acked_marked / self._acked_total
                        if self._acked_total else 0.0)
            self.alpha = (1 - DCTCP_G) * self.alpha + DCTCP_G * fraction
            if self._acked_marked:
                self.cwnd = max(self.mss * 2.0,
                                self.cwnd * (1 - self.alpha / 2.0))
            self._acked_total = 0
            self._acked_marked = 0
            self._window_acked = 0.0

    def on_fast_retransmit(self) -> None:
        self.ssthresh = max(2.0 * self.mss, self.cwnd / 2.0)
        self.cwnd = self.ssthresh

    def on_timeout(self) -> None:
        self.ssthresh = max(2.0 * self.mss, self.cwnd / 2.0)
        self.cwnd = float(self.mss)
