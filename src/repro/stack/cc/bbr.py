"""A simplified BBR (Bottleneck Bandwidth and RTT) congestion control.

The paper cites BBR [19] among the stack improvements an operator could
roll out as an NSM without tenant involvement.  This model keeps BBR's
essential behaviour — estimate delivery rate and min-RTT, pace inflight
to ~2x the bandwidth-delay product, ignore isolated losses — without the
full state machine (no ProbeRTT clamp scheduling subtleties).
"""

from __future__ import annotations

from typing import Optional

from repro.stack.cc.base import CongestionControl

#: Gain applied to the estimated BDP (BBR's cwnd_gain).
CWND_GAIN = 2.0
#: Window for the max-bandwidth filter, in samples.
BW_FILTER_LEN = 10


class BbrCC(CongestionControl):
    """Rate-estimating congestion control; loss-tolerant by design."""

    name = "bbr"
    wants_ecn = False

    def __init__(self, mss: int = 1448,
                 clock=None):
        super().__init__(mss)
        self._clock = clock or (lambda: 0.0)
        self.min_rtt: Optional[float] = None
        self._bw_samples = []
        self._last_ack_time: Optional[float] = None
        self._delivered_since = 0

    @property
    def bandwidth_estimate(self) -> float:
        """Max-filtered delivery rate, bytes/second."""
        return max(self._bw_samples) if self._bw_samples else 0.0

    def on_ack(self, acked_bytes: int, rtt: Optional[float] = None,
               ecn_echo: bool = False) -> None:
        if acked_bytes <= 0:
            return
        now = self._clock()
        if rtt is not None and rtt > 0:
            self.min_rtt = rtt if self.min_rtt is None else min(
                self.min_rtt, rtt)
        # Delivery-rate sample: bytes acked per wall-clock interval.
        if self._last_ack_time is not None:
            interval = now - self._last_ack_time
            self._delivered_since += acked_bytes
            if interval > 1e-6:
                self._bw_samples.append(self._delivered_since / interval)
                if len(self._bw_samples) > BW_FILTER_LEN:
                    self._bw_samples.pop(0)
                self._delivered_since = 0
                self._last_ack_time = now
        else:
            self._last_ack_time = now

        if self.min_rtt is not None and self.bandwidth_estimate > 0:
            bdp = self.bandwidth_estimate * self.min_rtt
            self.cwnd = max(4.0 * self.mss, CWND_GAIN * bdp)
        else:
            self.cwnd += acked_bytes  # startup: exponential growth

    def on_fast_retransmit(self) -> None:
        # BBR does not react to isolated loss; the rate model governs.
        pass

    def on_timeout(self) -> None:
        # A full RTO means the model is stale: restart conservatively.
        self._bw_samples.clear()
        self._last_ack_time = None
        self._delivered_since = 0
        self.cwnd = 4.0 * self.mss
