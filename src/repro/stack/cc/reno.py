"""TCP New Reno congestion control: slow start + AIMD."""

from __future__ import annotations

from typing import Optional

from repro.stack.cc.base import CongestionControl


class RenoCC(CongestionControl):
    """Classic slow-start / congestion-avoidance with multiplicative
    decrease of 1/2 on fast retransmit and window reset on timeout."""

    name = "reno"

    def __init__(self, mss: int = 1448):
        super().__init__(mss)
        self.ssthresh: float = float("inf")

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_bytes: int, rtt: Optional[float] = None,
               ecn_echo: bool = False) -> None:
        if acked_bytes <= 0:
            return
        if self.in_slow_start:
            self.cwnd += acked_bytes
        else:
            # Additive increase: one MSS per window's worth of ACKs.
            self.cwnd += self.mss * acked_bytes / self.cwnd

    def on_fast_retransmit(self) -> None:
        self.ssthresh = max(2.0 * self.mss, self.cwnd / 2.0)
        self.cwnd = self.ssthresh

    def on_timeout(self) -> None:
        self.ssthresh = max(2.0 * self.mss, self.cwnd / 2.0)
        self.cwnd = float(self.mss)
