"""Congestion-control interface.

The engine tells the algorithm about ACKs (with RTT samples and ECN
echoes), fast retransmits, and timeouts; the algorithm exposes a
congestion window in bytes.  Window units are bytes throughout, with the
MSS used for increment granularity, matching how the Linux implementations
behave when expressed in bytes.
"""

from __future__ import annotations

from typing import Optional

#: Conventional initial window (10 MSS, RFC 6928).
INITIAL_WINDOW_MSS = 10


class CongestionControl:
    """Base class: fixed window (no reaction) — useful for tests."""

    name = "fixed"

    def __init__(self, mss: int = 1448):
        if mss < 1:
            raise ValueError(f"mss must be positive: {mss}")
        self.mss = mss
        self.cwnd: float = float(INITIAL_WINDOW_MSS * mss)

    def on_ack(self, acked_bytes: int, rtt: Optional[float] = None,
               ecn_echo: bool = False) -> None:
        """New data was cumulatively acknowledged."""

    def on_fast_retransmit(self) -> None:
        """Triple-duplicate-ACK loss was detected."""

    def on_timeout(self) -> None:
        """An RTO fired."""

    def on_connection_close(self) -> None:
        """The owning flow finished (used by shared-state algorithms)."""

    @property
    def window_bytes(self) -> int:
        """Current congestion window, floored to at least one MSS."""
        return max(self.mss, int(self.cwnd))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} cwnd={self.cwnd:.0f}B>"
