"""CUBIC congestion control (the Linux default, used by the paper's
Baseline and kernel-stack NSM)."""

from __future__ import annotations

from typing import Callable, Optional

from repro.stack.cc.base import CongestionControl

#: CUBIC's scaling constant (RFC 8312).
C_CUBIC = 0.4
#: Multiplicative decrease factor.
BETA_CUBIC = 0.7


class CubicCC(CongestionControl):
    """Window growth is a cubic function of time since the last loss.

    ``clock`` supplies the current simulated time; growth is computed on
    each ACK, which at simulation packet rates is an accurate
    approximation of the kernel's HZ-driven update.
    """

    name = "cubic"

    #: HyStart-style delay threshold: exit slow start once the RTT has
    #: inflated this much over the minimum (queue build-up detected).
    HYSTART_RTT_FACTOR = 1.5

    def __init__(self, mss: int = 1448,
                 clock: Optional[Callable[[], float]] = None):
        super().__init__(mss)
        self._clock = clock or (lambda: 0.0)
        self.ssthresh: float = float("inf")
        self._w_max: float = self.cwnd
        self._epoch_start: Optional[float] = None
        self._k: float = 0.0
        self._min_rtt: Optional[float] = None

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def _enter_epoch(self, now: float) -> None:
        self._epoch_start = now
        w_max_seg = self._w_max / self.mss
        cwnd_seg = self.cwnd / self.mss
        delta = max(0.0, w_max_seg - cwnd_seg)
        self._k = (delta / C_CUBIC) ** (1.0 / 3.0)

    def on_ack(self, acked_bytes: int, rtt: Optional[float] = None,
               ecn_echo: bool = False) -> None:
        if acked_bytes <= 0:
            return
        if rtt is not None and rtt > 0:
            self._min_rtt = rtt if self._min_rtt is None else min(
                self._min_rtt, rtt)
        if self.in_slow_start:
            # HyStart: leave slow start on delay inflation instead of
            # overshooting into a deep loss burst (Linux's behaviour;
            # without SACK, recovering such a burst is very slow).
            if (rtt is not None and self._min_rtt is not None
                    and self.cwnd > 16 * self.mss
                    and rtt > self._min_rtt * self.HYSTART_RTT_FACTOR):
                self.ssthresh = self.cwnd
            else:
                self.cwnd += acked_bytes
                return
        now = self._clock()
        if self._epoch_start is None:
            self._enter_epoch(now)
        t = now - self._epoch_start
        target_seg = (C_CUBIC * (t - self._k) ** 3 + self._w_max / self.mss)
        target = target_seg * self.mss
        if target > self.cwnd:
            # Converge toward the cubic target within roughly one RTT.
            self.cwnd += (target - self.cwnd) * min(
                1.0, acked_bytes / max(self.cwnd, 1.0))
        else:
            # TCP-friendly region: grow at least like Reno.
            self.cwnd += self.mss * acked_bytes / self.cwnd

    def _on_loss(self) -> None:
        self._w_max = self.cwnd
        self.ssthresh = max(2.0 * self.mss, self.cwnd * BETA_CUBIC)
        self._epoch_start = None

    def on_fast_retransmit(self) -> None:
        self._on_loss()
        self.cwnd = self.ssthresh

    def on_timeout(self) -> None:
        self._on_loss()
        self.cwnd = float(self.mss)
