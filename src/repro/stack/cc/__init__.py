"""Congestion control algorithms, pluggable into the TCP engine."""

from repro.stack.cc.base import CongestionControl
from repro.stack.cc.reno import RenoCC
from repro.stack.cc.cubic import CubicCC
from repro.stack.cc.dctcp import DctcpCC
from repro.stack.cc.bbr import BbrCC
from repro.stack.cc.vmcc import VmSharedWindow, VmCC

__all__ = [
    "CongestionControl",
    "RenoCC",
    "CubicCC",
    "DctcpCC",
    "BbrCC",
    "VmSharedWindow",
    "VmCC",
]
