"""UDP: the datagram half of the stack (SOCK_DGRAM in Table 1).

GuestLib rewrites UDP sockets exactly like TCP ones (§4.1 lists both
SOCK_STREAM and SOCK_DGRAM); the stack side is this thin connectionless
layer sharing the TCP engine's fabric endpoint.  Datagrams are unreliable
and unordered end to end: a full receive buffer *drops*, nothing
retransmits.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import (
    AddressInUseError,
    BadFileDescriptorError,
    InvalidSocketStateError,
    MessageTooLargeError,
)
from repro.net.packet import Packet

Address = Tuple[str, int]

#: Classic UDP maximum payload.
MAX_DATAGRAM = 65_507
#: Ephemeral port range for unbound senders (distinct from TCP's).
UDP_EPHEMERAL_BASE = 40_000

# Per-datagram CPU costs (cycles); UDP skips connection state and most of
# TCP's bookkeeping, so both directions are far cheaper than TCP's.
UDP_TX_FIXED = 380.0
UDP_TX_PER_BYTE = 0.28
UDP_RX_FIXED = 900.0
UDP_RX_PER_BYTE = 0.55


class UdpDatagram:
    """Wire payload distinguishing UDP packets from TCP segments."""

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = data

    def __len__(self) -> int:
        return len(self.data)


class UdpSocket:
    """One datagram endpoint."""

    _ids = itertools.count(1)

    def __init__(self, layer: "UdpLayer"):
        self.layer = layer
        self.sock_id = next(self._ids)
        self.port: Optional[int] = None
        self.closed = False
        #: Received (payload, source address) pairs, FIFO.
        self.rx: Deque[Tuple[bytes, Address]] = deque()
        self.rx_bytes = 0
        self.rx_capacity = 256 * 1024
        self.on_readable: Optional[Callable[["UdpSocket"], None]] = None
        # Statistics.
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.datagrams_dropped = 0

    @property
    def readable_bytes(self) -> int:
        return self.rx_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UdpSocket port={self.port}>"


class UdpLayer:
    """Connectionless datagram service sharing a host's fabric endpoint.

    Attach to a :class:`~repro.stack.tcp.engine.TcpEngine`; the engine
    hands packets whose payload is a :class:`UdpDatagram` to
    :meth:`handle_packet`.
    """

    def __init__(self, engine):
        self.engine = engine
        self.sim = engine.sim
        self.host_id = engine.host_id
        self._by_port: Dict[int, UdpSocket] = {}
        self._next_port = UDP_EPHEMERAL_BASE
        engine.udp = self
        # Statistics.
        self.datagrams_out = 0
        self.datagrams_in = 0
        self.unroutable = 0

    # -- socket API ---------------------------------------------------------

    def socket(self) -> UdpSocket:
        return UdpSocket(self)

    def bind(self, sock: UdpSocket, port: int) -> None:
        if sock.port is not None:
            raise InvalidSocketStateError("UDP socket already bound")
        if port in self._by_port:
            raise AddressInUseError(f"UDP port {port} in use")
        sock.port = port
        self._by_port[port] = sock

    def _autobind(self, sock: UdpSocket) -> None:
        while self._next_port in self._by_port:
            self._next_port += 1
        self.bind(sock, self._next_port)
        self._next_port += 1

    def sendto(self, sock: UdpSocket, data: bytes, dest: Address) -> int:
        """Fire one datagram at ``dest``; returns len(data)."""
        if sock.closed:
            raise BadFileDescriptorError("sendto on closed UDP socket")
        if len(data) > MAX_DATAGRAM:
            raise MessageTooLargeError(
                f"datagram of {len(data)} B exceeds {MAX_DATAGRAM}")
        if sock.port is None:
            self._autobind(sock)
        self.engine._charge(UDP_TX_FIXED + len(data) * UDP_TX_PER_BYTE,
                            "udp_tx")
        packet = Packet(src=(self.host_id, sock.port), dst=dest,
                        payload_bytes=len(data),
                        segment=UdpDatagram(bytes(data)))
        sock.datagrams_sent += 1
        self.datagrams_out += 1
        self.engine.network.send(packet)
        return len(data)

    def recvfrom(self, sock: UdpSocket,
                 max_bytes: int) -> Optional[Tuple[bytes, Address]]:
        """Pop one datagram (truncated to ``max_bytes``), or None."""
        if not sock.rx:
            return None
        data, src = sock.rx.popleft()
        sock.rx_bytes -= len(data)
        return data[:max_bytes], src

    def close(self, sock: UdpSocket) -> None:
        if sock.port is not None:
            self._by_port.pop(sock.port, None)
        sock.closed = True
        sock.rx.clear()
        sock.rx_bytes = 0

    # -- ingress ---------------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        datagram: UdpDatagram = packet.segment
        self.engine._charge(
            UDP_RX_FIXED + len(datagram) * UDP_RX_PER_BYTE, "udp_rx")
        sock = self._by_port.get(packet.dst[1])
        if sock is None or sock.closed:
            self.unroutable += 1  # UDP: silently dropped (no ICMP model)
            return
        if sock.rx_bytes + len(datagram) > sock.rx_capacity:
            sock.datagrams_dropped += 1  # buffer full: drop, never block
            return
        sock.rx.append((datagram.data, packet.src))
        sock.rx_bytes += len(datagram)
        sock.datagrams_received += 1
        self.datagrams_in += 1
        if sock.on_readable:
            sock.on_readable(sock)
