"""The Linux-kernel-flavoured stack.

Cost shape (calibrated in :mod:`repro.cpu.cost_model`): cheap TX, expensive
interrupt-driven RX, a heavy per-connection setup/teardown path, and
accept-queue contention across cores unless SO_REUSEPORT-style partitioning
is in effect.
"""

from __future__ import annotations

from repro.stack.base import NetworkStack


class KernelStack(NetworkStack):
    """Models the in-kernel TCP stack (the paper's default NSM and the
    Baseline guest stack)."""

    name = "kernel"

    def _segment_tx_cycles(self, payload_bytes: int) -> float:
        cost = self.cost
        if payload_bytes == 0:
            return cost.ktcp_tx_fixed * 0.3  # pure ACK
        return cost.ktcp_tx_fixed + payload_bytes * cost.ktcp_tx_per_byte

    def _segment_rx_cycles(self, payload_bytes: int) -> float:
        cost = self.cost
        if payload_bytes == 0:
            return cost.ktcp_rx_fixed * 0.1  # pure ACK processed in softirq
        return cost.ktcp_rx_fixed + payload_bytes * cost.ktcp_rx_per_byte

    def _conn_setup_cycles(self) -> float:
        # Roughly a third of the full short-connection cost is socket
        # allocation + handshake bookkeeping; segments carry the rest.
        return self.cost.ktcp_request_cycles * 0.35

    def _conn_teardown_cycles(self) -> float:
        return self.cost.ktcp_request_cycles * 0.25

    def request_rate_per_core(self) -> float:
        return self.cost.core_hz / self.cost.ktcp_request_cycles
