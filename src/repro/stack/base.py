"""The network-stack interface NSMs and the baseline host program against.

A :class:`NetworkStack` owns a TCP engine (or another transport), a set of
cores it charges work to, and exposes the socket operations ServiceLib
translates NQEs into.  :class:`StackSocket` documents the duck type all
stack-level sockets satisfy (``TcpConnection`` does natively; the
shared-memory stack provides its own channel type).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import ConfigurationError
from repro.stack.tcp.engine import CcFactory, TcpConnection, TcpEngine
from repro.stack.tcp.tcb import Address, tcb_manifest
from repro.stack.udp import UdpLayer, UdpSocket


class StackSocket:
    """Documentation type: the attributes stack sockets expose.

    ``TcpConnection`` satisfies this protocol; so does ``ShmChannel``.
    Callbacks: on_readable, on_writable, on_accept_ready, on_connected,
    on_error, on_closed.  Properties: established, readable_bytes, eof.
    """


class NetworkStack:
    """Base class wiring a TCP engine to cores and a cost model."""

    name = "generic"

    def __init__(self, sim, network, host_id: str,
                 cores: Sequence[Core],
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 cc_factory: Optional[CcFactory] = None,
                 mss: int = 1448, **engine_kwargs):
        if not cores:
            raise ConfigurationError(f"stack {self.name} needs >=1 core")
        self.sim = sim
        self.host_id = host_id
        self.cores: List[Core] = list(cores)
        self.cost = cost_model
        self._rr = 0
        self.engine = TcpEngine(
            sim, network, host_id, mss=mss, cc_factory=cc_factory,
            on_cpu=self._charge,
            tx_cycles_fn=self._segment_tx_cycles,
            rx_cycles_fn=self._segment_rx_cycles,
            conn_setup_cycles=self._conn_setup_cycles(),
            conn_teardown_cycles=self._conn_teardown_cycles(),
            **engine_kwargs)
        self.udp = UdpLayer(self.engine)

    # -- CPU charging ---------------------------------------------------------

    def _charge(self, cycles: float, component: str) -> None:
        """Occupy core time with stack work, round-robin over cores.

        Using :meth:`Core.execute` (not just the ledger) means stack work
        delays whatever shares the core — ServiceLib's pollers under
        NetKernel, the application's syscalls in the baseline — so
        CPU-limited capacity and queueing-driven latency tails emerge in
        the functional simulation.
        """
        core = self.cores[self._rr % len(self.cores)]
        self._rr += 1
        core.execute_nowait(cycles, f"{self.name}.{component}")

    def _segment_tx_cycles(self, payload_bytes: int) -> float:
        return 0.0

    def _segment_rx_cycles(self, payload_bytes: int) -> float:
        return 0.0

    def _conn_setup_cycles(self) -> float:
        return 0.0

    def _conn_teardown_cycles(self) -> float:
        return 0.0

    # -- socket API (ServiceLib's target) --------------------------------------

    def socket(self) -> TcpConnection:
        return self.engine.socket()

    def bind(self, sock: TcpConnection, port: int) -> None:
        self.engine.bind(sock, port)

    def listen(self, sock: TcpConnection, backlog: int = 128) -> None:
        self.engine.listen(sock, backlog)

    def connect(self, sock: TcpConnection, remote: Address) -> None:
        self.engine.connect(sock, remote)

    def accept(self, listener: TcpConnection) -> Optional[TcpConnection]:
        return self.engine.accept(listener)

    def send(self, sock: TcpConnection, data: bytes) -> int:
        return self.engine.send(sock, data)

    def recv(self, sock: TcpConnection, max_bytes: int) -> bytes:
        return self.engine.recv(sock, max_bytes)

    def close(self, sock: TcpConnection) -> None:
        self.engine.close(sock)

    def abort(self, sock: TcpConnection) -> None:
        self.engine.abort(sock)

    # -- live migration ----------------------------------------------------------

    def supports_migration(self) -> bool:
        """Engine-backed stacks can export/import live TCBs."""
        return isinstance(getattr(self, "engine", None), TcpEngine)

    def migrate_socket(self, sock: TcpConnection, target_stack) -> dict:
        """Move one live socket to ``target_stack``'s engine.

        Returns the socket's TCB manifest (the serialized view of what
        travelled) for observability and verification.
        """
        manifest = tcb_manifest(sock)
        self.engine.migrate_connection(sock, target_stack.engine)
        return manifest

    # -- UDP (SOCK_DGRAM, Table 1) -----------------------------------------------

    def udp_socket(self) -> UdpSocket:
        return self.udp.socket()

    def udp_bind(self, sock: UdpSocket, port: int) -> None:
        self.udp.bind(sock, port)

    def udp_sendto(self, sock: UdpSocket, data: bytes, dest: Address) -> int:
        return self.udp.sendto(sock, data, dest)

    def udp_recvfrom(self, sock: UdpSocket, max_bytes: int):
        return self.udp.recvfrom(sock, max_bytes)

    def udp_close(self, sock: UdpSocket) -> None:
        self.udp.close(sock)

    # -- capacity hints (used by multiplexing / provisioning logic) -------------

    def request_rate_per_core(self) -> float:
        """Sustainable requests/second on one core (small messages)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} host={self.host_id} cores={len(self.cores)}>"
