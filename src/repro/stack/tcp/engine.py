"""The functional TCP engine.

Implements enough of TCP to reproduce the paper's transport-level
behaviour: three-way handshake with listener backlog, MSS segmentation,
cumulative ACKs with out-of-order reassembly, flow control with zero-window
probing, RTT estimation (Jacobson) with exponential-backoff RTO, fast
retransmit on three duplicate ACKs, pluggable congestion control (Reno,
CUBIC, DCTCP, VM-level), ECN echo, and FIN/RST teardown.

Deliberate simplifications (documented in DESIGN.md): no SACK, no delayed
ACKs, no Nagle, timestamps modelled as a float echo rather than an option
encoding.  None of these change who wins in the paper's experiments.
"""

from __future__ import annotations

import itertools
from typing import Callable, Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.errors import (
    AddressInUseError,
    ConfigurationError,
    InvalidSocketStateError,
    NotConnectedError,
)
from repro.net.packet import Packet
from repro.stack.cc.base import CongestionControl
from repro.stack.cc.cubic import CubicCC
from repro.stack.tcp.buffers import (VECTORIZED_DEFAULT, ReceiveBuffer,
                                     SendBuffer)
from repro.stack.tcp.tcb import Address, Segment, TcpState

CcFactory = Callable[[int], CongestionControl]

#: First ephemeral port handed out by an engine.
EPHEMERAL_BASE = 20000

_conn_ids = itertools.count(1)


class TcpConnection:
    """One TCP endpoint (a stack-level socket)."""

    def __init__(self, engine: "TcpEngine"):
        self.engine = engine
        self.conn_id = next(_conn_ids)
        self.state = TcpState.CLOSED
        self.local_port: Optional[int] = None
        #: Fabric address this endpoint answers to.  Stays None (meaning
        #: "the owning engine's host id") until live migration pins it, so
        #: a migrated connection keeps emitting from its original address.
        self.local_host: Optional[str] = None
        self.remote: Optional[Address] = None

        # Engines still holding a live-migration forward that points at
        # this endpoint (back-references, so every forward is reclaimed
        # when the endpoint dies and collapsed when it moves again).
        self._forwarders: List["TcpEngine"] = []
        self._port_forwarders: List["TcpEngine"] = []

        self.send_buf = SendBuffer(engine.send_buf_bytes,
                                   vectorized=engine.vectorized)
        self.recv_buf = ReceiveBuffer(engine.recv_buf_bytes,
                                      vectorized=engine.vectorized)

        # Sequence space (absolute; SYN and FIN each occupy one number).
        self.iss = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self.irs = 0

        self.cc: CongestionControl = engine.cc_factory(engine.mss)
        self.rwnd = 65535
        self.dup_acks = 0
        self.recovery_point: Optional[int] = None

        # RTT estimation / retransmission state.
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = engine.rto_initial
        self.retries = 0
        self._rtx_generation = 0
        self._persist_armed = False

        # FIN bookkeeping.
        self.fin_pending = False
        self.fin_seq: Optional[int] = None
        self.peer_fin_received = False

        # Listener state.
        self.backlog = 0
        self.accept_queue: Deque["TcpConnection"] = deque()

        # Callbacks (installed by ServiceLib / baseline socket layer).
        self.on_readable: Optional[Callable[["TcpConnection"], None]] = None
        self.on_writable: Optional[Callable[["TcpConnection"], None]] = None
        self.on_accept_ready: Optional[Callable[["TcpConnection"], None]] = None
        self.on_connected: Optional[Callable[["TcpConnection"], None]] = None
        self.on_error: Optional[Callable[["TcpConnection", str], None]] = None
        self.on_closed: Optional[Callable[["TcpConnection"], None]] = None

        # Statistics.
        self.bytes_sent = 0
        self.bytes_acked = 0
        self.bytes_received = 0
        self.retransmissions = 0

    # -- convenience -----------------------------------------------------------

    @property
    def local_addr(self) -> Address:
        return (self.local_host or self.engine.host_id, self.local_port or 0)

    @property
    def established(self) -> bool:
        return self.state == TcpState.ESTABLISHED

    @property
    def readable_bytes(self) -> int:
        return len(self.recv_buf)

    @property
    def eof(self) -> bool:
        """Peer closed and everything it sent has been read."""
        return self.peer_fin_received and len(self.recv_buf) == 0

    @property
    def inflight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def send_window(self) -> int:
        return min(self.cc.window_bytes, self.rwnd)

    @property
    def data_start_seq(self) -> int:
        return self.iss + 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TcpConnection #{self.conn_id} {self.state.value} "
                f"{self.local_addr}->{self.remote}>")


class TcpEngine:
    """A TCP/IP stack instance attached to one fabric endpoint."""

    def __init__(self, sim, network, host_id: str, mss: int = 1448,
                 cc_factory: Optional[CcFactory] = None,
                 send_buf_bytes: int = 4 * 1024 * 1024,
                 recv_buf_bytes: int = 4 * 1024 * 1024,
                 rto_initial: float = 0.2, rto_min: float = 0.01,
                 rto_max: float = 60.0, max_retries: int = 8,
                 time_wait_sec: float = 0.005,
                 on_cpu: Optional[Callable[[float, str], None]] = None,
                 tx_cycles_fn: Optional[Callable[[int], float]] = None,
                 rx_cycles_fn: Optional[Callable[[int], float]] = None,
                 conn_setup_cycles: float = 0.0,
                 conn_teardown_cycles: float = 0.0,
                 register_endpoint: bool = True,
                 vectorized: Optional[bool] = None):
        if mss < 64:
            raise ConfigurationError(f"mss too small: {mss}")
        self.sim = sim
        self.network = network
        self.host_id = host_id
        self.mss = mss
        #: Slab-backed buffers + zero-copy payload views (see buffers.py).
        #: ``False`` selects the scalar pre-vectorization layout for A/B
        #: benchmarking; both produce identical packet timelines.
        self.vectorized = VECTORIZED_DEFAULT if vectorized is None else vectorized
        self.cc_factory = cc_factory or (
            lambda m: CubicCC(m, clock=lambda: sim.now))
        self.send_buf_bytes = send_buf_bytes
        self.recv_buf_bytes = recv_buf_bytes
        self.rto_initial = rto_initial
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.max_retries = max_retries
        self.time_wait_sec = time_wait_sec
        self.on_cpu = on_cpu
        self._tx_cycles_fn = tx_cycles_fn
        self._rx_cycles_fn = rx_cycles_fn
        self.conn_setup_cycles = conn_setup_cycles
        self.conn_teardown_cycles = conn_teardown_cycles

        self._conns: Dict[Tuple[int, Address], TcpConnection] = {}
        self._listeners: Dict[int, TcpConnection] = {}
        self._next_port = EPHEMERAL_BASE
        self._isn = 1000  # deterministic initial sequence numbers

        # Live-migration forwarding: packets for a connection (or listener
        # port) that moved to another engine are handed to that engine, so
        # the fabric address stays valid across the move (no RST storms).
        self._forwards: Dict[Tuple[int, Address], "TcpEngine"] = {}
        self._port_forwards: Dict[int, "TcpEngine"] = {}

        # Statistics.
        self.segments_sent = 0
        self.segments_received = 0
        self.segments_forwarded = 0
        self.resets_sent = 0

        if register_endpoint:
            network.add_endpoint(host_id, self.handle_packet)

    # ------------------------------------------------------------------ API --

    def socket(self) -> TcpConnection:
        """A fresh CLOSED connection object."""
        return TcpConnection(self)

    def bind(self, conn: TcpConnection, port: int) -> None:
        """Bind to an explicit local port."""
        if port in self._listeners:
            raise AddressInUseError(f"port {port} already listening")
        if conn.local_port is not None:
            raise InvalidSocketStateError("socket already bound")
        conn.local_port = port

    def listen(self, conn: TcpConnection, backlog: int = 128) -> None:
        """Turn a bound socket into a listener."""
        if conn.local_port is None:
            raise InvalidSocketStateError("listen() before bind()")
        if conn.state != TcpState.CLOSED:
            raise InvalidSocketStateError(f"listen() in state {conn.state}")
        if conn.local_port in self._listeners:
            raise AddressInUseError(f"port {conn.local_port} already listening")
        conn.state = TcpState.LISTEN
        conn.backlog = max(1, backlog)
        self._listeners[conn.local_port] = conn

    def connect(self, conn: TcpConnection, remote: Address) -> None:
        """Begin the three-way handshake toward ``remote``."""
        if conn.state != TcpState.CLOSED:
            raise InvalidSocketStateError(f"connect() in state {conn.state}")
        if conn.local_port is None:
            conn.local_port = self._alloc_port()
        conn.remote = remote
        key = (conn.local_port, remote)
        if key in self._conns:
            raise AddressInUseError(f"4-tuple in use: {key}")
        self._conns[key] = conn

        conn.iss = self._next_isn()
        conn.snd_una = conn.iss
        conn.snd_nxt = conn.iss + 1
        conn.state = TcpState.SYN_SENT
        self._charge(self.conn_setup_cycles, "tcp_conn_setup")
        self._emit(conn, Segment(seq=conn.iss, syn=True,
                                 window=conn.recv_buf.window))
        self._arm_rtx(conn)

    def accept(self, listener: TcpConnection) -> Optional[TcpConnection]:
        """Pop one established connection, or None if the queue is empty."""
        if listener.state != TcpState.LISTEN:
            raise InvalidSocketStateError("accept() on a non-listener")
        if listener.accept_queue:
            return listener.accept_queue.popleft()
        return None

    def send(self, conn: TcpConnection, data: bytes) -> int:
        """Buffer outbound bytes; returns how many were accepted."""
        if conn.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise NotConnectedError(f"send() in state {conn.state}")
        if conn.fin_pending:
            raise InvalidSocketStateError("send() after close()")
        accepted = conn.send_buf.write(data)
        if accepted:
            self._pump(conn)
        return accepted

    def recv(self, conn: TcpConnection, max_bytes: int) -> bytes:
        """Read up to ``max_bytes`` of in-order received data."""
        window_was_zero = conn.recv_buf.window == 0
        data = conn.recv_buf.read(max_bytes)
        if data and window_was_zero and conn.recv_buf.window > 0:
            # Reopen the window so the sender's zero-window probe succeeds.
            if conn.state in (TcpState.ESTABLISHED, TcpState.FIN_WAIT,
                              TcpState.CLOSE_WAIT):
                self._send_ack(conn)
        return data

    def close(self, conn: TcpConnection) -> None:
        """Graceful close: FIN once the send buffer drains."""
        if conn.state == TcpState.LISTEN:
            del self._listeners[conn.local_port]
            # The listener is gone everywhere: engines that forwarded its
            # port here must stop, or they would forward toward a port
            # that now answers with RSTs (and leak the entry forever).
            for engine in conn._port_forwarders:
                engine._port_forwards.pop(conn.local_port, None)
            conn._port_forwarders.clear()
            conn.state = TcpState.CLOSED
            self._notify_closed(conn)
            return
        if conn.state == TcpState.CLOSED:
            return
        if conn.state == TcpState.SYN_SENT:
            self._destroy(conn)
            return
        if conn.fin_pending or conn.fin_seq is not None:
            return  # already closing
        conn.fin_pending = True
        self._pump(conn)

    def abort(self, conn: TcpConnection) -> None:
        """Hard close: RST to the peer, drop all state."""
        if conn.state in (TcpState.CLOSED, TcpState.LISTEN):
            self.close(conn)
            return
        self._emit(conn, Segment(seq=conn.snd_nxt, rst=True))
        self.resets_sent += 1
        self._destroy(conn)

    # --------------------------------------------------------------- ingress --

    def handle_packet(self, packet: Packet) -> None:
        """Entry point installed as the fabric endpoint RX handler."""
        segment = packet.segment
        if segment is None:
            return
        if not isinstance(segment, Segment):
            # Datagram traffic: hand to the UDP layer if one is attached.
            udp = getattr(self, "udp", None)
            if udp is not None:
                udp.handle_packet(packet)
            return
        self.segments_received += 1
        self._charge(self._rx_cycles(len(segment.payload)), "tcp_rx")

        local_port = packet.dst[1]
        key = (local_port, packet.src)
        conn = self._conns.get(key)
        if conn is not None:
            self._handle_for_conn(conn, packet, segment)
            return

        target = self._forwards.get(key)
        if target is not None:
            self.segments_forwarded += 1
            target.handle_packet(packet)
            return

        listener = self._listeners.get(local_port)
        if listener is not None and segment.syn and not segment.is_ack:
            self._handle_syn(listener, packet, segment)
            return

        target = self._port_forwards.get(local_port)
        if target is not None:
            self.segments_forwarded += 1
            target.handle_packet(packet)
            return

        # No socket: refuse politely (RST) unless this is itself an RST.
        if not segment.rst:
            self._send_raw_rst(packet)

    # -- handshake --------------------------------------------------------------

    def _handle_syn(self, listener: TcpConnection, packet: Packet,
                    segment: Segment) -> None:
        pending = sum(1 for c in self._conns.values()
                      if c.state == TcpState.SYN_RCVD)
        if len(listener.accept_queue) + pending >= listener.backlog:
            return  # backlog full: drop the SYN; client will retry on RTO
        child = self.socket()
        child.local_port = listener.local_port
        child.local_host = listener.local_host
        child.remote = packet.src
        key = (child.local_port, child.remote)
        if key in self._conns:
            return  # duplicate SYN for an in-progress handshake
        self._conns[key] = child
        child.irs = segment.seq
        child.recv_buf.rcv_nxt = segment.seq + 1
        child.rwnd = segment.window
        child.iss = self._next_isn()
        child.snd_una = child.iss
        child.snd_nxt = child.iss + 1
        child.state = TcpState.SYN_RCVD
        child._listener = listener  # type: ignore[attr-defined]
        self._charge(self.conn_setup_cycles, "tcp_conn_setup")
        self._emit(child, Segment(seq=child.iss, ack=child.recv_buf.rcv_nxt,
                                  syn=True, is_ack=True,
                                  window=child.recv_buf.window,
                                  ts_echo=segment.ts))
        self._arm_rtx(child)

    def _handle_for_conn(self, conn: TcpConnection, packet: Packet,
                         segment: Segment) -> None:
        if segment.rst:
            self._on_reset(conn)
            return

        if conn.state == TcpState.SYN_SENT:
            if segment.syn and segment.is_ack and segment.ack == conn.snd_nxt:
                conn.irs = segment.seq
                conn.recv_buf.rcv_nxt = segment.seq + 1
                conn.rwnd = segment.window
                conn.snd_una = segment.ack
                conn.state = TcpState.ESTABLISHED
                conn.retries = 0
                self._sample_rtt(conn, segment)
                self._cancel_rtx(conn)
                self._send_ack(conn, ts_echo=segment.ts)
                if conn.on_connected:
                    conn.on_connected(conn)
                self._pump(conn)
            return

        if conn.state == TcpState.SYN_RCVD:
            if segment.is_ack and segment.ack == conn.snd_nxt:
                conn.snd_una = segment.ack
                conn.rwnd = segment.window
                conn.state = TcpState.ESTABLISHED
                conn.retries = 0
                self._sample_rtt(conn, segment)
                self._cancel_rtx(conn)
                listener = getattr(conn, "_listener", None)
                if listener is not None and listener.state == TcpState.LISTEN:
                    listener.accept_queue.append(conn)
                    if listener.on_accept_ready:
                        listener.on_accept_ready(listener)
            # Data may ride on the final ACK; fall through.
            if not segment.payload and not segment.fin:
                return

        self._process_ack(conn, segment)
        if segment.payload:
            self._process_data(conn, packet, segment)
        if segment.fin:
            self._process_fin(conn, segment)

    # -- ACK processing -----------------------------------------------------------

    def _process_ack(self, conn: TcpConnection, segment: Segment) -> None:
        if not segment.is_ack:
            return
        conn.rwnd = segment.window
        ack = segment.ack

        if ack > conn.snd_nxt:
            return  # acks data we never sent; ignore

        if ack > conn.snd_una:
            delta = ack - conn.snd_una
            data_acked = self._account_ack(conn, ack, delta)
            conn.snd_una = ack
            conn.dup_acks = 0
            conn.retries = 0
            conn.bytes_acked += data_acked
            self._sample_rtt(conn, segment)
            conn.cc.on_ack(data_acked if data_acked else delta,
                           rtt=conn.srtt, ecn_echo=segment.ecn_echo)

            if conn.recovery_point is not None:
                if ack >= conn.recovery_point:
                    conn.recovery_point = None
                else:
                    self._retransmit_one(conn)  # NewReno partial ack

            if conn.inflight == 0:
                self._cancel_rtx(conn)
                self._check_fin_acked(conn)
            else:
                self._arm_rtx(conn, reset_timer=True)

            if conn.on_writable and conn.send_buf.free_space > 0:
                conn.on_writable(conn)
        elif (ack == conn.snd_una and conn.inflight > 0
              and not segment.payload and not segment.syn and not segment.fin):
            conn.dup_acks += 1
            if conn.dup_acks == 3 and conn.recovery_point is None:
                conn.recovery_point = conn.snd_nxt
                conn.cc.on_fast_retransmit()
                self._retransmit_one(conn)

        self._pump(conn)

    def _account_ack(self, conn: TcpConnection, ack: int, delta: int) -> int:
        """Split an ACK advance into SYN/FIN/data parts; trims send_buf."""
        data_acked = delta
        if conn.snd_una == conn.iss:
            data_acked -= 1  # our SYN
        if conn.fin_seq is not None and ack > conn.fin_seq:
            data_acked -= 1  # our FIN
        if data_acked > 0:
            conn.send_buf.advance(data_acked)
        return max(0, data_acked)

    def _check_fin_acked(self, conn: TcpConnection) -> None:
        fin_acked = (conn.fin_seq is not None
                     and conn.snd_una > conn.fin_seq)
        if not fin_acked:
            return
        if conn.state == TcpState.FIN_WAIT and conn.peer_fin_received:
            self._enter_time_wait(conn)
        elif conn.state == TcpState.LAST_ACK:
            self._destroy(conn)

    # -- data & FIN -----------------------------------------------------------------

    def _process_data(self, conn: TcpConnection, packet: Packet,
                      segment: Segment) -> None:
        if conn.state not in (TcpState.ESTABLISHED, TcpState.FIN_WAIT):
            # Peer keeps sending after our close: still ACK to be correct.
            self._send_ack(conn, ts_echo=None)
            return
        ready = conn.recv_buf.deliver(segment.seq, segment.payload)
        conn.bytes_received += ready
        ecn_echo = packet.ecn_marked
        self._send_ack(conn, ts_echo=segment.ts, ecn_echo=ecn_echo)
        if ready and conn.on_readable:
            conn.on_readable(conn)

    def _process_fin(self, conn: TcpConnection, segment: Segment) -> None:
        fin_seq = segment.seq + len(segment.payload)
        if fin_seq != conn.recv_buf.rcv_nxt or conn.peer_fin_received:
            # Out-of-order FIN: ack what we have; peer retransmits.
            self._send_ack(conn)
            return
        conn.recv_buf.rcv_nxt += 1
        conn.peer_fin_received = True
        self._send_ack(conn, ts_echo=segment.ts)

        if conn.state == TcpState.ESTABLISHED:
            conn.state = TcpState.CLOSE_WAIT
        elif conn.state == TcpState.FIN_WAIT:
            fin_acked = (conn.fin_seq is not None
                         and conn.snd_una > conn.fin_seq)
            if fin_acked:
                self._enter_time_wait(conn)
        if conn.on_readable:
            conn.on_readable(conn)  # EOF is a readable event

    # -- egress ------------------------------------------------------------------------

    def _data_inflight(self, conn: TcpConnection) -> int:
        """Unacked *data* bytes (in-flight sequence space minus the FIN).

        The send buffer's front is the first unacked data byte, so this is
        also the buffer offset of the first unsent byte.
        """
        return conn.inflight - self._fin_adjust(conn)

    def _pump(self, conn: TcpConnection) -> None:
        """Transmit whatever the congestion/flow windows currently allow."""
        if conn.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT,
                              TcpState.FIN_WAIT, TcpState.LAST_ACK):
            return
        sent_any = False
        while conn.fin_seq is None:  # no data may follow the FIN
            offset = self._data_inflight(conn)
            available = len(conn.send_buf) - offset
            window_room = conn.send_window - conn.inflight
            chunk = min(self.mss, available, window_room)
            if chunk <= 0:
                break
            payload = conn.send_buf.peek(offset, chunk)
            self._emit(conn, Segment(
                seq=conn.snd_nxt, ack=conn.recv_buf.rcv_nxt, is_ack=True,
                window=conn.recv_buf.window, payload=payload))
            conn.snd_nxt += chunk
            conn.bytes_sent += chunk
            sent_any = True

        if self._should_send_fin(conn):
            conn.fin_seq = conn.snd_nxt
            self._emit(conn, Segment(
                seq=conn.snd_nxt, ack=conn.recv_buf.rcv_nxt, is_ack=True,
                fin=True, window=conn.recv_buf.window))
            conn.snd_nxt += 1
            conn.fin_pending = False
            if conn.state in (TcpState.ESTABLISHED,):
                conn.state = TcpState.FIN_WAIT
            elif conn.state == TcpState.CLOSE_WAIT:
                conn.state = TcpState.LAST_ACK
            sent_any = True

        if sent_any:
            self._arm_rtx(conn)
        elif (conn.rwnd == 0 and conn.inflight == 0
              and len(conn.send_buf) > 0 and not conn._persist_armed):
            self._arm_persist(conn)

    def _fin_adjust(self, conn: TcpConnection) -> int:
        """snd_nxt includes the FIN's sequence slot once sent."""
        return 1 if (conn.fin_seq is not None
                     and conn.snd_nxt > conn.fin_seq) else 0

    def _should_send_fin(self, conn: TcpConnection) -> bool:
        """FIN goes out once every buffered byte has been transmitted."""
        if not conn.fin_pending or conn.fin_seq is not None:
            return False
        return self._data_inflight(conn) >= len(conn.send_buf)

    # -- retransmission ----------------------------------------------------------------

    def _retransmit_one(self, conn: TcpConnection) -> None:
        """Retransmit the segment starting at SND.UNA."""
        conn.retransmissions += 1
        if conn.snd_una == conn.iss:
            flags = Segment(seq=conn.iss, syn=True,
                            window=conn.recv_buf.window)
            if conn.state == TcpState.SYN_RCVD:
                flags.is_ack = True
                flags.ack = conn.recv_buf.rcv_nxt
            self._emit(conn, flags)
            return
        if conn.fin_seq is not None and conn.snd_una == conn.fin_seq:
            self._emit(conn, Segment(
                seq=conn.fin_seq, ack=conn.recv_buf.rcv_nxt, is_ack=True,
                fin=True, window=conn.recv_buf.window))
            return
        # The buffer's front is SND.UNA's data byte: retransmit from offset 0.
        length = min(self.mss, self._data_inflight(conn), len(conn.send_buf))
        if length <= 0:
            return
        payload = conn.send_buf.peek(0, length)
        self._emit(conn, Segment(
            seq=conn.snd_una, ack=conn.recv_buf.rcv_nxt, is_ack=True,
            window=conn.recv_buf.window, payload=payload))

    def _arm_rtx(self, conn: TcpConnection, reset_timer: bool = False) -> None:
        if conn.inflight == 0 and not reset_timer:
            return
        conn._rtx_generation += 1
        generation = conn._rtx_generation
        self.sim.call_later(conn.rto,
                            lambda: self._on_rtx_timer(conn, generation))

    def _cancel_rtx(self, conn: TcpConnection) -> None:
        conn._rtx_generation += 1

    def _on_rtx_timer(self, conn: TcpConnection, generation: int) -> None:
        if generation != conn._rtx_generation:
            return  # superseded
        if conn.inflight == 0:
            return
        conn.retries += 1
        if conn.retries > self.max_retries:
            self._on_timeout_giveup(conn)
            return
        conn.cc.on_timeout()
        conn.dup_acks = 0
        conn.recovery_point = None
        conn.rto = min(self.rto_max, conn.rto * 2)
        self._retransmit_one(conn)
        self._arm_rtx(conn, reset_timer=True)

    def _on_timeout_giveup(self, conn: TcpConnection) -> None:
        if conn.on_error:
            conn.on_error(conn, "ETIMEDOUT")
        self._destroy(conn)

    def _arm_persist(self, conn: TcpConnection) -> None:
        conn._persist_armed = True

        def probe() -> None:
            if conn.engine is not self:
                return  # conn migrated away; the new engine owns the timer
            conn._persist_armed = False
            if (conn.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)
                    and conn.rwnd == 0 and len(conn.send_buf) > 0):
                # One-byte window probe.
                offset = self._data_inflight(conn)
                if offset < len(conn.send_buf):
                    payload = conn.send_buf.peek(offset, 1)
                    self._emit(conn, Segment(
                        seq=conn.snd_nxt, ack=conn.recv_buf.rcv_nxt,
                        is_ack=True, window=conn.recv_buf.window,
                        payload=payload))
                    conn.snd_nxt += 1
                    conn.bytes_sent += 1
                    self._arm_rtx(conn)
                else:
                    self._arm_persist(conn)

        self.sim.call_later(max(conn.rto, 0.05), probe)

    # -- RTT -----------------------------------------------------------------------------

    def _sample_rtt(self, conn: TcpConnection, segment: Segment) -> None:
        if segment.ts_echo is None:
            return
        sample = self.sim.now - segment.ts_echo
        if sample < 0:
            return
        if conn.srtt is None:
            conn.srtt = sample
            conn.rttvar = sample / 2
        else:
            conn.rttvar = 0.75 * conn.rttvar + 0.25 * abs(conn.srtt - sample)
            conn.srtt = 0.875 * conn.srtt + 0.125 * sample
        conn.rto = min(self.rto_max,
                       max(self.rto_min, conn.srtt + 4 * conn.rttvar))

    # -- teardown ----------------------------------------------------------------------

    def _enter_time_wait(self, conn: TcpConnection) -> None:
        conn.state = TcpState.TIME_WAIT
        self.sim.call_later(self.time_wait_sec, lambda: self._destroy(conn))

    def _on_reset(self, conn: TcpConnection) -> None:
        if conn.on_error:
            errno = ("ECONNREFUSED" if conn.state == TcpState.SYN_SENT
                     else "ECONNRESET")
            conn.on_error(conn, errno)
        self._destroy(conn)

    def _destroy(self, conn: TcpConnection) -> None:
        if conn.engine is not self:
            # A timer armed before migration fired on the old engine
            # (e.g. TIME_WAIT's 2MSL destroy): tear down where it lives.
            conn.engine._destroy(conn)
            return
        if conn.state == TcpState.CLOSED:
            return
        conn.state = TcpState.CLOSED
        conn.cc.on_connection_close()
        self._charge(self.conn_teardown_cycles, "tcp_conn_teardown")
        self._cancel_rtx(conn)
        if conn.local_port is not None and conn.remote is not None:
            key = (conn.local_port, conn.remote)
            self._conns.pop(key, None)
            # Reclaim every forward left behind by migrations: the
            # 4-tuple is dead, and a stale entry would hijack a future
            # connection that reuses it (and leak one dict slot per
            # migrate/close cycle forever).
            for engine in conn._forwarders:
                engine._forwards.pop(key, None)
            conn._forwarders.clear()
        self._notify_closed(conn)

    def _notify_closed(self, conn: TcpConnection) -> None:
        if conn.on_closed:
            conn.on_closed(conn)

    # -- helpers -----------------------------------------------------------------------

    def _send_ack(self, conn: TcpConnection, ts_echo: Optional[float] = None,
                  ecn_echo: bool = False) -> None:
        self._emit(conn, Segment(
            seq=conn.snd_nxt, ack=conn.recv_buf.rcv_nxt, is_ack=True,
            window=conn.recv_buf.window, ecn_echo=ecn_echo,
            ts_echo=ts_echo))

    def _emit(self, conn: TcpConnection, segment: Segment) -> None:
        if conn.remote is None:
            raise NotConnectedError("emit without remote")
        segment.ts = self.sim.now
        wants_ecn = getattr(conn.cc, "wants_ecn", conn.cc.name == "dctcp")
        packet = Packet(src=(conn.local_host or self.host_id,
                             conn.local_port or 0),
                        dst=conn.remote, payload_bytes=len(segment.payload),
                        segment=segment, ecn_capable=wants_ecn)
        self.segments_sent += 1
        self._charge(self._tx_cycles(len(segment.payload)), "tcp_tx")
        self.network.send(packet)

    def _send_raw_rst(self, packet: Packet) -> None:
        segment: Segment = packet.segment
        rst = Segment(seq=segment.ack, ack=segment.seq + segment.seq_space,
                      rst=True, is_ack=True)
        self.resets_sent += 1
        self.network.send(Packet(src=packet.dst, dst=packet.src,
                                 payload_bytes=0, segment=rst))

    def _alloc_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    def _next_isn(self) -> int:
        self._isn += 64000
        return self._isn

    def _charge(self, cycles: float, component: str) -> None:
        if self.on_cpu is not None:
            self.on_cpu(cycles, component)

    def _tx_cycles(self, payload: int) -> float:
        return self._tx_cycles_fn(payload) if self._tx_cycles_fn else 0.0

    def _rx_cycles(self, payload: int) -> float:
        return self._rx_cycles_fn(payload) if self._rx_cycles_fn else 0.0

    # -- live migration -----------------------------------------------------------------

    def migrate_connection(self, conn: TcpConnection,
                           target: "TcpEngine") -> None:
        """Move one endpoint (and, for a listener, its whole port) to
        ``target``, leaving a forward behind so in-flight packets and
        future SYNs still reach it.

        The connection object itself travels — sequence space, congestion
        window, RTT estimate, buffered bytes all move untouched.  Timers
        armed on this engine are cancelled and re-armed on the target.
        """
        if target is self:
            raise ConfigurationError("cannot migrate a connection onto "
                                     "its own engine")
        if conn.local_host is None:
            # Pin the fabric address before the move so peers keep a
            # stable destination regardless of which engine owns us.
            conn.local_host = self.host_id

        if conn.state == TcpState.LISTEN:
            port = conn.local_port
            if self._listeners.get(port) is not conn:
                raise ConfigurationError(
                    f"listener on port {port} is not owned by this engine")
            if port in target._listeners:
                raise AddressInUseError(
                    f"target engine already listens on port {port}")
            del self._listeners[port]
            target._listeners[port] = conn
            conn.engine = target
            # Collapse the forwarding chain: every engine that ever
            # hosted this listener forwards straight to the new owner
            # (one hop max); the new owner's own stale entry — the
            # A→B→A round trip — is reclaimed, not left to shadow it.
            self._port_forwards[port] = target
            if self not in conn._port_forwarders:
                conn._port_forwarders.append(self)
            for engine in conn._port_forwarders:
                engine._port_forwards[port] = target
            if target in conn._port_forwarders:
                conn._port_forwarders.remove(target)
                target._port_forwards.pop(port, None)
            # Children (established, handshaking, accept-queued) share the
            # listener's port; move every one of them with it.
            for key, child in sorted(self._conns.items()):
                if key[0] == port:
                    self._move_conn(child, target)
            return

        self._move_conn(conn, target)

    def _move_conn(self, conn: TcpConnection, target: "TcpEngine") -> None:
        key = (conn.local_port, conn.remote)
        if target._conns.get(key) is conn:
            return  # already moved (listener bulk-move got here first)
        if conn.state == TcpState.CLOSED:
            # Destroyed while quiesced (peer RST / timeout): nothing lives
            # in the connection maps, just hand over object ownership.
            conn.engine = target
            return
        if self._conns.get(key) is not conn:
            raise ConfigurationError(f"connection {key} is not owned by "
                                     "this engine")
        if key in target._conns:
            raise AddressInUseError(f"4-tuple in use on target: {key}")
        if conn.local_host is None:
            conn.local_host = self.host_id
        persist_was_armed = conn._persist_armed
        conn._persist_armed = False
        self._cancel_rtx(conn)
        del self._conns[key]
        conn.engine = target
        target._conns[key] = conn
        # Collapse the forwarding chain (see the listener branch above):
        # all previous hosts point at the new owner, and the new owner's
        # own stale entry from an earlier hop is reclaimed.
        self._forwards[key] = target
        if self not in conn._forwarders:
            conn._forwarders.append(self)
        for engine in conn._forwarders:
            engine._forwards[key] = target
        if target in conn._forwarders:
            conn._forwarders.remove(target)
            target._forwards.pop(key, None)
        # Keep the target's ephemeral allocator clear of imported ports.
        if (conn.local_port is not None
                and conn.local_port >= target._next_port):
            target._next_port = conn.local_port + 1
        if conn.inflight > 0 and conn.state not in (TcpState.CLOSED,
                                                    TcpState.TIME_WAIT):
            target._arm_rtx(conn, reset_timer=True)
        elif persist_was_armed:
            target._arm_persist(conn)

    # -- introspection ------------------------------------------------------------------

    @property
    def active_connections(self) -> int:
        return len(self._conns)

    def connections(self) -> List[TcpConnection]:
        """All live (non-listener) connections."""
        return list(self._conns.values())
