"""TCP connection states and the wire segment."""

from __future__ import annotations

import enum
from typing import Optional, Tuple

Address = Tuple[str, int]


class TcpState(enum.Enum):
    """The subset of RFC 793 states the simplified engine uses."""

    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn_sent"
    SYN_RCVD = "syn_rcvd"
    ESTABLISHED = "established"
    FIN_WAIT = "fin_wait"      # we sent FIN, awaiting its ACK / peer FIN
    CLOSE_WAIT = "close_wait"  # peer sent FIN, we have not closed yet
    LAST_ACK = "last_ack"      # peer FIN'd, we sent our FIN, awaiting ACK
    TIME_WAIT = "time_wait"


def tcb_manifest(conn) -> dict:
    """The migratable transmission-control-block state of a connection.

    Live migration moves the connection *objects* between engines; this
    manifest is the serialized view of what travels — the §4 TCB fields an
    operator (or a verifying test) can inspect to confirm that congestion,
    RTT, and sequence state survived the move intact.
    """
    return {
        "state": conn.state.value,
        "local_port": conn.local_port,
        "remote": list(conn.remote) if conn.remote else None,
        "iss": conn.iss,
        "irs": conn.irs,
        "snd_una": conn.snd_una,
        "snd_nxt": conn.snd_nxt,
        "rcv_nxt": conn.recv_buf.rcv_nxt,
        "srtt": conn.srtt,
        "rttvar": conn.rttvar,
        "rto": conn.rto,
        "cwnd_bytes": conn.cc.window_bytes,
        "peer_window": conn.rwnd,
        "send_buf_bytes": len(conn.send_buf),
        "recv_buf_bytes": len(conn.recv_buf),
        "fin_pending": conn.fin_pending,
        "peer_fin_received": conn.peer_fin_received,
    }


class Segment:
    """A TCP segment: flags, sequence space, window, and real payload."""

    __slots__ = ("seq", "ack", "syn", "fin", "rst", "is_ack", "window",
                 "payload", "ecn_echo", "ts", "ts_echo")

    def __init__(self, seq: int = 0, ack: int = 0, syn: bool = False,
                 fin: bool = False, rst: bool = False, is_ack: bool = False,
                 window: int = 65535, payload: bytes = b"",
                 ecn_echo: bool = False, ts: Optional[float] = None,
                 ts_echo: Optional[float] = None):
        self.seq = seq
        self.ack = ack
        self.syn = syn
        self.fin = fin
        self.rst = rst
        self.is_ack = is_ack
        self.window = window
        self.payload = payload
        self.ecn_echo = ecn_echo
        #: Send timestamp (the timestamp option's TSval).
        self.ts = ts
        #: Echoed peer timestamp (TSecr), used for RTT sampling.
        self.ts_echo = ts_echo

    def __len__(self) -> int:
        return len(self.payload)

    @property
    def seq_space(self) -> int:
        """Sequence numbers this segment occupies (payload + SYN/FIN)."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    def flags_str(self) -> str:
        flags = []
        if self.syn:
            flags.append("SYN")
        if self.fin:
            flags.append("FIN")
        if self.rst:
            flags.append("RST")
        if self.is_ack:
            flags.append("ACK")
        return "|".join(flags) or "DATA"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Seg {self.flags_str()} seq={self.seq} ack={self.ack} "
                f"len={len(self.payload)}>")
