"""Functional TCP: control blocks, stream buffers, and the engine."""

from repro.stack.tcp.tcb import TcpState, Segment
from repro.stack.tcp.buffers import SendBuffer, ReceiveBuffer
from repro.stack.tcp.engine import TcpEngine, TcpConnection

__all__ = [
    "TcpState",
    "Segment",
    "SendBuffer",
    "ReceiveBuffer",
    "TcpEngine",
    "TcpConnection",
]
