"""Send and receive stream buffers.

Both carry real bytes so data integrity can be asserted end to end.  The
send buffer holds everything written-but-unacked; the receive buffer
reassembles out-of-order segments and exposes the advertised window.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ResourceError


class SendBuffer:
    """Unacked + unsent outbound bytes, addressed relative to SND.UNA."""

    def __init__(self, capacity: int = 4 * 1024 * 1024):
        if capacity < 1:
            raise ResourceError(f"send buffer capacity must be >=1: {capacity}")
        self.capacity = capacity
        self._data = bytearray()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def free_space(self) -> int:
        return self.capacity - len(self._data)

    def write(self, data: bytes) -> int:
        """Append up to ``free_space`` bytes; returns how many were taken."""
        take = min(len(data), self.free_space)
        if take:
            self._data.extend(data[:take])
        return take

    def peek(self, offset: int, length: int) -> bytes:
        """Bytes at ``offset`` from SND.UNA (for (re)transmission)."""
        if offset < 0:
            raise ResourceError(f"negative peek offset: {offset}")
        return bytes(self._data[offset:offset + length])

    def advance(self, acked: int) -> None:
        """Drop ``acked`` bytes from the front (cumulative ACK)."""
        if acked < 0:
            raise ResourceError(f"negative ack advance: {acked}")
        if acked > len(self._data):
            raise ResourceError(
                f"ack advances past buffered data: {acked} > {len(self._data)}"
            )
        del self._data[:acked]


class ReceiveBuffer:
    """In-order delivery queue plus out-of-order reassembly."""

    def __init__(self, capacity: int = 4 * 1024 * 1024, initial_seq: int = 0):
        if capacity < 1:
            raise ResourceError(f"recv buffer capacity must be >=1: {capacity}")
        self.capacity = capacity
        self.rcv_nxt = initial_seq
        self._ready = bytearray()
        self._out_of_order: Dict[int, bytes] = {}

    def __len__(self) -> int:
        return len(self._ready)

    @property
    def window(self) -> int:
        """Advertised receive window (free space for in-order data)."""
        pending = len(self._ready) + sum(
            len(chunk) for chunk in self._out_of_order.values())
        return max(0, self.capacity - pending)

    def deliver(self, seq: int, data: bytes) -> int:
        """Accept a data segment; returns bytes newly made ready.

        Segments beyond the window are dropped (the sender respects the
        advertised window, so overflow indicates loss-recovery overlap and
        is trimmed, not fatal).  Duplicate and overlapping prefixes are
        trimmed against ``rcv_nxt``.
        """
        if not data:
            return 0
        end = seq + len(data)
        if end <= self.rcv_nxt:
            return 0  # entirely duplicate
        if seq < self.rcv_nxt:
            data = data[self.rcv_nxt - seq:]
            seq = self.rcv_nxt

        if seq > self.rcv_nxt:
            # Out of order: stash (bounded by window; beyond it, drop).
            if len(data) <= self.window and seq not in self._out_of_order:
                self._out_of_order[seq] = data
            return 0

        # In order: take what fits the window.
        take = min(len(data), self.window)
        if take <= 0:
            return 0
        self._ready.extend(data[:take])
        self.rcv_nxt += take
        made_ready = take
        made_ready += self._drain_out_of_order()
        return made_ready

    def _drain_out_of_order(self) -> int:
        drained = 0
        progress = True
        while progress:
            progress = False
            self._purge_stale_out_of_order()
            if self.rcv_nxt not in self._out_of_order:
                break
            chunk = self._out_of_order.pop(self.rcv_nxt)
            take = min(len(chunk), self.capacity - len(self._ready))
            if take <= 0:
                # Window closed mid-drain; put the chunk back.
                self._out_of_order[self.rcv_nxt] = chunk
                break
            self._ready.extend(chunk[:take])
            self.rcv_nxt += take
            drained += take
            progress = True
            if take < len(chunk):
                self._out_of_order[self.rcv_nxt] = chunk[take:]
                break
        return drained

    def _purge_stale_out_of_order(self) -> None:
        """Drop or trim stashed segments the cursor has passed.

        Retransmissions at offsets different from the stashed copies can
        leave chunks whose range is partly or fully below ``rcv_nxt``;
        without purging they would count against the advertised window
        forever (a permanent zero-window in long transfers with loss).
        """
        for seq in sorted(self._out_of_order):
            if seq >= self.rcv_nxt:
                break
            chunk = self._out_of_order.pop(seq)
            if seq + len(chunk) > self.rcv_nxt:
                trimmed = chunk[self.rcv_nxt - seq:]
                existing = self._out_of_order.get(self.rcv_nxt)
                if existing is None or len(existing) < len(trimmed):
                    self._out_of_order[self.rcv_nxt] = trimmed

    def read(self, max_bytes: int) -> bytes:
        """Consume up to ``max_bytes`` of in-order data."""
        if max_bytes < 0:
            raise ResourceError(f"negative read: {max_bytes}")
        take = min(max_bytes, len(self._ready))
        data = bytes(self._ready[:take])
        del self._ready[:take]
        return data
