"""Send and receive stream buffers.

Both carry real bytes so data integrity can be asserted end to end.  The
send buffer holds everything written-but-unacked; the receive buffer
reassembles out-of-order segments and exposes the advertised window.

Two storage strategies live side by side, selected by ``vectorized``
(default True, the slab-backed fast path; ``False`` is the pre-existing
scalar layout kept as the A/B baseline for benchmarking).  Both produce
byte-identical streams and identical window arithmetic — the vectorized
path only changes *how many times payload bytes are copied*:

* ``SendBuffer`` (vectorized) is a fixed ring over one preallocated
  ``bytearray`` slab.  ``write`` copies bytes in once; ``peek`` returns a
  zero-copy ``memoryview`` of the slab for the contiguous common case
  (so every transmission and retransmission reads the slab in place);
  ``advance`` is O(1) index arithmetic instead of an O(n) front-delete
  memmove per ACK.  Views handed out by ``peek`` stay valid exactly as
  long as the bytes are unacked — the ring cannot recycle a region
  before ``advance`` passes it, and receivers copy on delivery (below)
  before the ACK that would free it can exist.

* ``ReceiveBuffer`` (vectorized) stores ready data as a deque of bytes
  chunks: ``deliver`` materializes each accepted payload slice exactly
  once (``bytes(view)`` — the single per-direction copy), ``read`` hands
  the head chunk back zero-copy when it satisfies the read, and the
  advertised window comes from maintained counters instead of summing
  chunk lengths.  Out-of-order purging keeps a sorted key list updated
  by bisect, so the no-stale-chunks common case costs O(1) per drain
  iteration instead of re-sorting every stashed key.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Dict, Iterable, List, Tuple, Union

from repro.errors import ResourceError

Payload = Union[bytes, bytearray, memoryview]

#: Module default for the slab/zero-copy fast path; engines inherit it
#: unless constructed with an explicit ``vectorized=`` override.
VECTORIZED_DEFAULT = True


class SendBuffer:
    """Unacked + unsent outbound bytes, addressed relative to SND.UNA."""

    def __init__(self, capacity: int = 4 * 1024 * 1024,
                 vectorized: bool = VECTORIZED_DEFAULT):
        if capacity < 1:
            raise ResourceError(f"send buffer capacity must be >=1: {capacity}")
        self.capacity = capacity
        self.vectorized = vectorized
        if vectorized:
            # Ring over one preallocated slab; _start/_len replace the
            # legacy grow-and-memmove bytearray.
            self._slab = bytearray(capacity)
            self._mv = memoryview(self._slab)
            self._start = 0
            self._len = 0
        else:
            self._data = bytearray()

    def __len__(self) -> int:
        return self._len if self.vectorized else len(self._data)

    @property
    def free_space(self) -> int:
        return self.capacity - len(self)

    def write(self, data: Payload) -> int:
        """Append up to ``free_space`` bytes; returns how many were taken."""
        if not self.vectorized:
            take = min(len(data), self.free_space)
            if take:
                self._data.extend(data[:take])
            return take
        take = min(len(data), self.capacity - self._len)
        if not take:
            return 0
        src = data if type(data) is memoryview else memoryview(data)
        pos = self._start + self._len
        if pos >= self.capacity:
            pos -= self.capacity
        first = min(take, self.capacity - pos)
        self._mv[pos:pos + first] = src[:first]
        if first < take:
            self._mv[:take - first] = src[first:take]
        self._len += take
        return take

    def peek(self, offset: int, length: int) -> Payload:
        """Bytes at ``offset`` from SND.UNA (for (re)transmission).

        Vectorized mode returns a zero-copy ``memoryview`` of the slab
        when the range is contiguous (the overwhelmingly common case);
        a range that wraps the ring boundary is joined into fresh bytes.
        The view is guaranteed stable until ``advance`` passes its last
        byte — i.e. for as long as the bytes are unacked.
        """
        if offset < 0:
            raise ResourceError(f"negative peek offset: {offset}")
        if not self.vectorized:
            return bytes(self._data[offset:offset + length])
        take = min(length, self._len - offset)
        if take <= 0:
            return b""
        pos = self._start + offset
        if pos >= self.capacity:
            pos -= self.capacity
        first = self.capacity - pos
        if take <= first:
            return self._mv[pos:pos + take]
        return bytes(self._mv[pos:]) + bytes(self._mv[:take - first])

    def advance(self, acked: int) -> None:
        """Drop ``acked`` bytes from the front (cumulative ACK)."""
        if acked < 0:
            raise ResourceError(f"negative ack advance: {acked}")
        if acked > len(self):
            raise ResourceError(
                f"ack advances past buffered data: {acked} > {len(self)}"
            )
        if not self.vectorized:
            del self._data[:acked]
            return
        start = self._start + acked
        if start >= self.capacity:
            start -= self.capacity
        self._start = start
        self._len -= acked


class ReceiveBuffer:
    """In-order delivery queue plus out-of-order reassembly."""

    def __init__(self, capacity: int = 4 * 1024 * 1024, initial_seq: int = 0,
                 vectorized: bool = VECTORIZED_DEFAULT):
        if capacity < 1:
            raise ResourceError(f"recv buffer capacity must be >=1: {capacity}")
        self.capacity = capacity
        self.rcv_nxt = initial_seq
        self.vectorized = vectorized
        self._out_of_order: Dict[int, bytes] = {}
        if vectorized:
            self._chunks: deque = deque()
            self._ready_len = 0
            self._read_pos = 0  # consumed prefix of _chunks[0]
            self._ooo_keys: List[int] = []  # sorted view of _out_of_order
            self._ooo_bytes = 0
        else:
            self._ready = bytearray()

    def __len__(self) -> int:
        return self._ready_len if self.vectorized else len(self._ready)

    @property
    def window(self) -> int:
        """Advertised receive window (free space for in-order data)."""
        if self.vectorized:
            pending = self._ready_len + self._ooo_bytes
        else:
            pending = len(self._ready) + sum(
                len(chunk) for chunk in self._out_of_order.values())
        return max(0, self.capacity - pending)

    def deliver(self, seq: int, data: Payload) -> int:
        """Accept a data segment; returns bytes newly made ready.

        Segments beyond the window are dropped (the sender respects the
        advertised window, so overflow indicates loss-recovery overlap and
        is trimmed, not fatal).  Duplicate and overlapping prefixes are
        trimmed against ``rcv_nxt``.

        ``data`` may be a ``memoryview`` over the sender's slab; this is
        the one point where payload bytes are copied on the receive side
        (``bytes(view)``), and it happens *before* the ACK covering them
        can be emitted, so the viewed region cannot have been recycled.
        """
        if not self.vectorized:
            return self._deliver_scalar(seq, data)
        length = len(data)
        if not length:
            return 0
        end = seq + length
        nxt = self.rcv_nxt
        if end <= nxt:
            return 0  # entirely duplicate
        off = 0
        if seq < nxt:
            off = nxt - seq
            seq = nxt
            length -= off

        if seq > nxt:
            # Out of order: stash a copy (bounded by window; beyond it,
            # drop).  Copying here keeps stashed bytes independent of the
            # sender's slab, whose region may be recycled after later ACKs.
            if length <= self.window and seq not in self._out_of_order:
                self._out_of_order[seq] = bytes(data[off:])
                insort(self._ooo_keys, seq)
                self._ooo_bytes += length
            return 0

        # In order: take what fits the window.
        take = min(length, self.window)
        if take <= 0:
            return 0
        if off == 0 and take == length and type(data) is bytes:
            chunk = data  # already immutable: adopt without copying
        else:
            chunk = bytes(data[off:off + take])
        self._chunks.append(chunk)
        self._ready_len += take
        self.rcv_nxt = seq + take
        return take + self._drain_out_of_order()

    def deliver_batch(self, segments: Iterable[Tuple[int, Payload]]) -> int:
        """Deliver several segments in one call; returns total newly ready.

        Exactly equivalent to summing :meth:`deliver` over ``segments`` in
        order (the equivalence is asserted by tests under overlap and
        out-of-order patterns).  The fast path — consecutive in-order
        segments with an empty reassembly stash — appends chunks directly
        without re-running the stash purge/drain machinery per segment.
        """
        if not self.vectorized:
            made = 0
            for seq, data in segments:
                made += self._deliver_scalar(seq, data)
            return made
        made = 0
        chunks = self._chunks
        for seq, data in segments:
            if not self._out_of_order and seq == self.rcv_nxt and data:
                length = len(data)
                take = min(length, self.capacity - self._ready_len)
                if take <= 0:
                    continue  # window closed: deliver() would drop it too
                if take == length and type(data) is bytes:
                    chunk = data
                else:
                    chunk = bytes(data[:take])
                chunks.append(chunk)
                self._ready_len += take
                self.rcv_nxt += take
                made += take
                continue
            made += self.deliver(seq, data)
        return made

    # -- scalar (pre-vectorization) delivery path --------------------------

    def _deliver_scalar(self, seq: int, data: Payload) -> int:
        if not data:
            return 0
        end = seq + len(data)
        if end <= self.rcv_nxt:
            return 0  # entirely duplicate
        if seq < self.rcv_nxt:
            data = data[self.rcv_nxt - seq:]
            seq = self.rcv_nxt

        if seq > self.rcv_nxt:
            # Out of order: stash (bounded by window; beyond it, drop).
            if len(data) <= self.window and seq not in self._out_of_order:
                self._out_of_order[seq] = bytes(data)
            return 0

        # In order: take what fits the window.
        take = min(len(data), self.window)
        if take <= 0:
            return 0
        self._ready.extend(data[:take])
        self.rcv_nxt += take
        made_ready = take
        made_ready += self._drain_out_of_order()
        return made_ready

    def _drain_out_of_order(self) -> int:
        if not self.vectorized:
            return self._drain_out_of_order_scalar()
        drained = 0
        ooo = self._out_of_order
        keys = self._ooo_keys
        while True:
            self._purge_stale_out_of_order()
            nxt = self.rcv_nxt
            if not keys or keys[0] != nxt:
                break
            chunk = ooo.pop(nxt)
            del keys[0]
            clen = len(chunk)
            self._ooo_bytes -= clen
            take = min(clen, self.capacity - self._ready_len)
            if take <= 0:
                # Window closed mid-drain; put the chunk back.
                ooo[nxt] = chunk
                keys.insert(0, nxt)
                self._ooo_bytes += clen
                break
            if take < clen:
                self._chunks.append(chunk[:take])
                self._ready_len += take
                self.rcv_nxt = nxt + take
                drained += take
                rest = chunk[take:]
                ooo[self.rcv_nxt] = rest
                keys.insert(0, self.rcv_nxt)
                self._ooo_bytes += len(rest)
                break
            self._chunks.append(chunk)
            self._ready_len += take
            self.rcv_nxt = nxt + take
            drained += take
        return drained

    def _drain_out_of_order_scalar(self) -> int:
        drained = 0
        progress = True
        while progress:
            progress = False
            self._purge_stale_out_of_order()
            if self.rcv_nxt not in self._out_of_order:
                break
            chunk = self._out_of_order.pop(self.rcv_nxt)
            take = min(len(chunk), self.capacity - len(self._ready))
            if take <= 0:
                # Window closed mid-drain; put the chunk back.
                self._out_of_order[self.rcv_nxt] = chunk
                break
            self._ready.extend(chunk[:take])
            self.rcv_nxt += take
            drained += take
            progress = True
            if take < len(chunk):
                self._out_of_order[self.rcv_nxt] = chunk[take:]
                break
        return drained

    def _purge_stale_out_of_order(self) -> None:
        """Drop or trim stashed segments the cursor has passed.

        Retransmissions at offsets different from the stashed copies can
        leave chunks whose range is partly or fully below ``rcv_nxt``;
        without purging they would count against the advertised window
        forever (a permanent zero-window in long transfers with loss).

        The vectorized path walks ``_ooo_keys`` (kept sorted by bisect on
        insert) from the front, so the common no-stale-chunks case is a
        single comparison instead of the scalar path's full re-sort of
        every stashed key per drain iteration.
        """
        if not self.vectorized:
            for seq in sorted(self._out_of_order):
                if seq >= self.rcv_nxt:
                    break
                chunk = self._out_of_order.pop(seq)
                if seq + len(chunk) > self.rcv_nxt:
                    trimmed = chunk[self.rcv_nxt - seq:]
                    existing = self._out_of_order.get(self.rcv_nxt)
                    if existing is None or len(existing) < len(trimmed):
                        self._out_of_order[self.rcv_nxt] = trimmed
            return
        keys = self._ooo_keys
        ooo = self._out_of_order
        nxt = self.rcv_nxt
        while keys and keys[0] < nxt:
            seq = keys.pop(0)
            chunk = ooo.pop(seq)
            self._ooo_bytes -= len(chunk)
            if seq + len(chunk) > nxt:
                trimmed = chunk[nxt - seq:]
                existing = ooo.get(nxt)
                if existing is None or len(existing) < len(trimmed):
                    if existing is None:
                        # nxt sorts before every surviving key (all >= nxt).
                        keys.insert(0, nxt)
                    else:
                        self._ooo_bytes -= len(existing)
                    ooo[nxt] = trimmed
                    self._ooo_bytes += len(trimmed)

    def read(self, max_bytes: int) -> bytes:
        """Consume up to ``max_bytes`` of in-order data.

        Vectorized mode returns the ready head chunk itself (zero-copy)
        when it exactly satisfies the read; otherwise a single slice or
        join.  The scalar path's slice-then-delete double copy is gone.
        """
        if max_bytes < 0:
            raise ResourceError(f"negative read: {max_bytes}")
        if not self.vectorized:
            take = min(max_bytes, len(self._ready))
            data = bytes(self._ready[:take])
            del self._ready[:take]
            return data
        take = min(max_bytes, self._ready_len)
        if take <= 0:
            return b""
        chunks = self._chunks
        pos = self._read_pos
        head = chunks[0]
        head_avail = len(head) - pos
        if head_avail >= take:
            if pos == 0 and head_avail == take:
                chunks.popleft()
                self._ready_len -= take
                return head  # whole chunk: hand it back without copying
            data = head[pos:pos + take]
            if head_avail == take:
                chunks.popleft()
                self._read_pos = 0
            else:
                self._read_pos = pos + take
            self._ready_len -= take
            return data
        # Read spans chunks: gather with one join.
        parts = []
        need = take
        while need:
            head = chunks[0]
            avail = len(head) - pos
            if avail <= need:
                parts.append(head[pos:] if pos else head)
                chunks.popleft()
                pos = 0
                need -= avail
            else:
                parts.append(head[pos:pos + need])
                pos += need
                need = 0
        self._read_pos = pos
        self._ready_len -= take
        return b"".join(parts)
