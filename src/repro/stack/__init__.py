"""Network stacks.

The functional TCP engine lives in :mod:`repro.stack.tcp`; congestion
control algorithms in :mod:`repro.stack.cc`.  The kernel- and mTCP-
flavoured stacks wrap the engine with their respective cost models, and
the shared-memory stack implements use case 4 (colocated-VM networking
without TCP processing).
"""

from repro.stack.base import NetworkStack, StackSocket
from repro.stack.kernel_stack import KernelStack
from repro.stack.mtcp_stack import MtcpStack
from repro.stack.shared_memory_stack import SharedMemoryStack

__all__ = [
    "NetworkStack",
    "StackSocket",
    "KernelStack",
    "MtcpStack",
    "SharedMemoryStack",
]
