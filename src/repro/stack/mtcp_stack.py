"""The mTCP-flavoured userspace stack (§6.3, Fig. 20).

mTCP's defining properties, reflected here:

* kernel-bypass packet I/O — much lower fixed per-packet/per-request cost;
* per-core partitioning (two-thread model, per-core accept queues) — near
  linear multicore scaling with no shared accept-queue contention;
* non-blocking batched event loop — ServiceLib buffers send operations per
  core and polls ``mtcp_epoll_wait`` with a 1 ms timeout (§5), which shows
  up as tight, low-variance latency (Table 5).
"""

from __future__ import annotations

from repro.stack.base import NetworkStack


class MtcpStack(NetworkStack):
    """Models mTCP over DPDK as ported in the paper's implementation."""

    name = "mtcp"

    #: The paper could only run mTCP stably at 1, 2, 4, or 8 vCPUs
    #: ("Using other numbers of vCPUs for mTCP causes stability problems",
    #: §7.4 fn. 4); we enforce the same envelope for fidelity.
    SUPPORTED_CORE_COUNTS = (1, 2, 4, 8)

    def __init__(self, *args, strict_core_counts: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        if strict_core_counts and len(self.cores) not in self.SUPPORTED_CORE_COUNTS:
            raise ValueError(
                f"mTCP NSM supports {self.SUPPORTED_CORE_COUNTS} vCPUs, "
                f"got {len(self.cores)} (pass strict_core_counts=False to "
                "override)")

    def _segment_tx_cycles(self, payload_bytes: int) -> float:
        cost = self.cost
        if payload_bytes == 0:
            return 60.0  # batched pure ACK
        return 200.0 + payload_bytes * cost.mtcp_tx_per_byte

    def _segment_rx_cycles(self, payload_bytes: int) -> float:
        cost = self.cost
        if payload_bytes == 0:
            return 60.0
        return 300.0 + payload_bytes * cost.mtcp_rx_per_byte

    def _conn_setup_cycles(self) -> float:
        return self.cost.mtcp_request_cycles * 0.35

    def _conn_teardown_cycles(self) -> float:
        return self.cost.mtcp_request_cycles * 0.25

    def request_rate_per_core(self) -> float:
        return self.cost.core_hz / self.cost.mtcp_request_cycles
