"""Units and conversion helpers used throughout the reproduction.

Conventions
-----------
* Time is measured in **seconds** (float) of simulated time.
* Data sizes are **bytes** (int).
* Rates are **bits per second** (float) unless a name says otherwise.
* CPU work is measured in **cycles** (float); cores have a clock in Hz.

The helpers exist so that experiment code reads like the paper:
``gbps(100)``, ``KiB(8)``, ``usec(20)``.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data sizes (bytes)
# ---------------------------------------------------------------------------

KB = 1000
MB = 1000 ** 2
GB = 1000 ** 3

KIB = 1024
MIB = 1024 ** 2
GIB = 1024 ** 3


def KiB(n: float) -> int:
    """n kibibytes, in bytes."""
    return int(n * KIB)


def MiB(n: float) -> int:
    """n mebibytes, in bytes."""
    return int(n * MIB)


# ---------------------------------------------------------------------------
# Rates (bits per second)
# ---------------------------------------------------------------------------


def kbps(n: float) -> float:
    """n kilobits per second, in bits per second."""
    return n * 1e3


def mbps(n: float) -> float:
    """n megabits per second, in bits per second."""
    return n * 1e6


def gbps(n: float) -> float:
    """n gigabits per second, in bits per second."""
    return n * 1e9


def to_gbps(bits_per_sec: float) -> float:
    """Express a bits-per-second rate in Gbps."""
    return bits_per_sec / 1e9


def bytes_per_sec(bits_per_sec: float) -> float:
    """Convert a bit rate to a byte rate."""
    return bits_per_sec / 8.0


def bits(num_bytes: float) -> float:
    """Convert bytes to bits."""
    return num_bytes * 8.0


# ---------------------------------------------------------------------------
# Time (seconds)
# ---------------------------------------------------------------------------


def nsec(n: float) -> float:
    """n nanoseconds, in seconds."""
    return n * 1e-9


def usec(n: float) -> float:
    """n microseconds, in seconds."""
    return n * 1e-6


def msec(n: float) -> float:
    """n milliseconds, in seconds."""
    return n * 1e-3


def to_usec(seconds: float) -> float:
    """Express seconds in microseconds."""
    return seconds * 1e6


def to_msec(seconds: float) -> float:
    """Express seconds in milliseconds."""
    return seconds * 1e3


# ---------------------------------------------------------------------------
# CPU cycles
# ---------------------------------------------------------------------------

#: Clock rate of the paper's testbed cores (Xeon E5-2698 v3, 2.3 GHz).
PAPER_CORE_HZ = 2.3e9


def cycles_to_seconds(cycles: float, core_hz: float = PAPER_CORE_HZ) -> float:
    """Time taken to spend ``cycles`` on a core clocked at ``core_hz``."""
    return cycles / core_hz


def seconds_to_cycles(seconds: float, core_hz: float = PAPER_CORE_HZ) -> float:
    """Cycles available in ``seconds`` on a core clocked at ``core_hz``."""
    return seconds * core_hz
