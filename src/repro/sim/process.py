"""Generator-based processes.

A process is a generator that yields :class:`Event` objects; the process
resumes when the yielded event triggers, receiving the event's value (or
having its exception raised inside the generator).  A :class:`Process` is
itself an event that triggers with the generator's return value, so
processes can wait for each other by yielding them.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.event import Event, PENDING, PROCESSED

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Interrupt(Exception):
    """Raised inside a process that has been interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Wraps a generator and drives it through the event loop."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError("process target must be a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off on the next simulator step at the current time.
        start = sim.event()
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None and not target.triggered:
            # Detach from the event we were waiting on.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        throw = self.sim.event()
        throw.callbacks.append(
            lambda _evt: self._step(Interrupt(cause), is_exception=True)
        )
        throw.succeed()

    # -- internals -----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self._state != PENDING:  # `triggered` property, inlined (hot)
            return
        self._waiting_on = None
        if event._exception is not None:
            self._step(event._exception, is_exception=True)
        else:
            self._step(event._value, is_exception=False)

    def _step(self, value: Any, is_exception: bool) -> None:
        try:
            if is_exception:
                yielded = self._generator.throw(value)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly.
            self.succeed(None)
            return
        except BaseException as exc:
            self.fail(exc)
            return

        if not isinstance(yielded, Event):
            self._generator.close()
            self.fail(SimulationError(f"process yielded non-event: {yielded!r}"))
            return

        self._waiting_on = yielded
        if yielded._state == PROCESSED:  # `processed` property, inlined (hot)
            # Already done: resume on the next loop turn with its value.
            resume = self.sim.event()
            resume.callbacks.append(self._resume)
            if yielded._exception is not None:
                resume.fail(yielded._exception)
            else:
                resume.succeed(yielded._value)
        else:
            yielded.callbacks.append(self._resume)
