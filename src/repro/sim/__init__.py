"""Discrete-event simulation substrate.

A small, dependency-free engine in the style of SimPy: a :class:`Simulator`
owns the clock and an event heap; :class:`Process` wraps a generator that
yields :class:`Event` objects to wait on.  Everything else in the
reproduction (cores, rings, stacks, NetKernel) is built on these types.
"""

from repro.sim.event import Event, Timeout, AnyOf, AllOf
from repro.sim.engine import Simulator
from repro.sim.process import Process, Interrupt
from repro.sim.resources import Resource, Store

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Simulator",
    "Process",
    "Interrupt",
    "Resource",
    "Store",
]
