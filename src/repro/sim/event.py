"""Events: the unit of synchronization in the simulator.

An :class:`Event` starts *pending*, is *triggered* with a value (or failed
with an exception), and then runs its callbacks exactly once.  Processes
wait on events by yielding them.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class Event:
    """A one-shot occurrence in simulated time.

    Callbacks are callables taking the event itself; they run when the
    simulator processes the event after it has been triggered.

    Events are the simulator's highest-volume allocation, so the whole
    hierarchy uses ``__slots__``; attach per-use payloads via the event
    value, not ad-hoc attributes.
    """

    __slots__ = ("sim", "callbacks", "_state", "_value", "_exception")

    #: Class-level default; only :class:`Timeout` instances ever set the
    #: per-instance slot (lazy heap deletion, see Simulator.step()).
    _cancelled = False

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._state = PENDING
        self._value: Any = None
        self._exception: Optional[BaseException] = None

    # -- inspection --------------------------------------------------------

    @property
    def pending(self) -> bool:
        return self._state == PENDING

    @property
    def triggered(self) -> bool:
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def completed(self) -> bool:
        """True once the event's occurrence is in the past.

        For ordinary events this is :attr:`triggered`; :class:`Timeout`
        overrides it, because a timeout is *armed* (triggered) at
        creation but only occurs when the clock reaches its due time.
        Composite conditions must use this, not ``triggered``.
        """
        return self.triggered

    @property
    def ok(self) -> bool:
        """True once triggered successfully (no exception)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:  # `triggered` property, inlined (hot)
            raise SimulationError("event triggered twice")
        self._state = TRIGGERED
        self._value = value
        self.sim._queue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will re-raise it."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._state = TRIGGERED
        self._exception = exception
        self.sim._queue_event(self)
        return self

    def _process(self) -> None:
        """Run callbacks; called by the simulator loop.

        A *failed* event nobody is waiting on re-raises its exception out
        of the simulation loop — silent process death would otherwise
        hide real bugs (the SimPy convention).
        """
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)
        elif self._exception is not None:
            raise self._exception

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} state={self._state}>"


class Timeout(Event):
    """An event that triggers automatically ``delay`` seconds from now."""

    __slots__ = ("delay", "_cancelled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Event.__init__ inlined: timeouts are the highest-volume event
        # type and are born triggered, so the PENDING store is skipped.
        self.sim = sim
        self.callbacks = []
        self._state = TRIGGERED
        self._value = value
        self._exception = None
        self.delay = delay
        self._cancelled = False
        sim._queue_event(self, delay=delay)

    @property
    def completed(self) -> bool:
        return self.processed

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Disarm a pending timeout (lazy heap deletion).

        The heap entry stays queued — removing from the middle of a heap
        is O(n) — but the simulator skips it without running callbacks.
        Callbacks are dropped immediately so composite conditions and
        their waiters can be collected before the due time.  Cancelling
        an already-processed timeout is an error: it has fired.
        """
        if self.processed:
            raise SimulationError("cannot cancel a processed timeout")
        self._cancelled = True
        self.callbacks = []


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.completed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self, done: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._done += 1
        if self._satisfied(self._done, len(self.events)):
            self.succeed(self._results())

    def _results(self) -> dict:
        return {
            event: event._value
            for event in self.events
            if event.completed and event._exception is None
        }


class AnyOf(_Condition):
    """Triggers when any constituent event triggers."""

    __slots__ = ()

    def _satisfied(self, done: int, total: int) -> bool:
        return done >= 1


class AllOf(_Condition):
    """Triggers when all constituent events have triggered."""

    __slots__ = ()

    def _satisfied(self, done: int, total: int) -> bool:
        return done >= total
