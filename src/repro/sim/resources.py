"""Shared resources for processes: counted resources and object stores."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple, TYPE_CHECKING

from repro.errors import ResourceError
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Resource:
    """A counted resource with FIFO waiters (e.g. a lock with capacity N).

    Usage from a process::

        yield resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        """Event that triggers when a unit of the resource is granted."""
        event = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; hands it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise ResourceError("release() without matching acquire()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self.in_use -= 1


class Store:
    """An unbounded-or-bounded FIFO of objects with blocking get/put."""

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        # (event, item) pairs: Event has __slots__, so the blocked item
        # travels alongside the event instead of as a dynamic attribute.
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Event that triggers once ``item`` has been stored."""
        event = self.sim.event()
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif not self.full:
            self.items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Event that triggers with the oldest stored item."""
        event = self.sim.event()
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._admit_putter()
        return item

    def _admit_putter(self) -> None:
        if self._putters and not self.full:
            putter, item = self._putters.popleft()
            self.items.append(item)
            putter.succeed()
