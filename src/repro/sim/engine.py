"""The simulator: clock, event heap, and run loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.event import AllOf, AnyOf, Event, Timeout


class Simulator:
    """Owns simulated time and processes events in timestamp order.

    Ties are broken by insertion order so the simulation is deterministic.
    """

    def __init__(self):
        self._now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        # Lifetime counters (the perf harness reads these).
        self.events_processed = 0
        self.events_cancelled = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event creation ----------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events) -> AnyOf:
        """Composite event: fires when any of ``events`` fires."""
        return AnyOf(self, list(events))

    def all_of(self, events) -> AllOf:
        """Composite event: fires when all of ``events`` have fired."""
        return AllOf(self, list(events))

    def process(self, generator: Generator) -> "Process":
        """Start a new process running ``generator`` now."""
        from repro.sim.process import Process

        return Process(self, generator)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"call_at({when}) is in the past (now={self._now})"
            )
        event = self.timeout(when - self._now)
        event.callbacks.append(lambda _evt: fn())
        return event

    def call_later(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` seconds of simulated time."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _evt: fn())
        return event

    def every(self, interval: float, fn: Callable[[], None],
              start_delay: float = 0.0) -> "Process":
        """Run ``fn`` periodically, every ``interval`` seconds, starting
        ``start_delay`` from now.  ``fn`` returning ``False`` stops the
        series (any other return value continues it).  Returns the
        driving process, whose generator ends when the series stops."""
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval}")

        def ticker():
            if start_delay > 0:
                yield self.timeout(start_delay)
            while True:
                if fn() is False:
                    return
                yield self.timeout(interval)

        return self.process(ticker())

    # -- scheduling internals -----------------------------------------------

    def _queue_event(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    # -- run loop ------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event.

        Cancelled timeouts (lazy heap deletion, see Timeout.cancel) are
        popped and discarded without running callbacks; the clock still
        advances to their due time, exactly as if they had fired as
        no-ops, so cancellation never perturbs the simulated timeline.
        """
        if not self._heap:
            raise SimulationError("step() with no scheduled events")
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        if event._cancelled:
            self.events_cancelled += 1
            return
        self.events_processed += 1
        event._process()

    def peek(self) -> Optional[float]:
        """Timestamp of the next event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so periodic measurement code
        sees a full window.
        """
        if until is None:
            # Drain-the-heap fast path: step() inlined (one pop per
            # event, no peek).  Identical pop order, so the simulated
            # timeline is bit-identical to the step() loop.
            heap = self._heap
            pop = heapq.heappop
            while heap:
                when, _seq, event = pop(heap)
                self._now = when
                if event._cancelled:
                    self.events_cancelled += 1
                    continue
                self.events_processed += 1
                event._process()
            return
        if until < self._now:
            raise SimulationError(f"run(until={until}) is in the past")
        while self._heap:
            when = self._heap[0][0]
            if when > until:
                break
            self.step()
        if self._now < until:
            self._now = until

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` has been processed; return its value.

        ``limit`` bounds the simulated time to protect against deadlock in
        tests; exceeding it raises :class:`SimulationError`.
        """
        while not event.processed:
            if not self._heap:
                raise SimulationError("deadlock: event can never trigger")
            if self._now > limit:
                raise SimulationError(f"run_until_event exceeded limit {limit}")
            self.step()
        return event.value
