"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper table/figure, prints the rows next
to the paper's values (run with ``-s`` to see them inline; they are also
attached to the benchmark's extra_info), and asserts the qualitative
shape the paper reports.
"""

import pytest


def run_and_report(benchmark, exp_id, **kwargs):
    """Run one experiment exactly once under pytest-benchmark."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(exp_id, **kwargs), rounds=1, iterations=1)
    text = result.table_str()
    print("\n" + text)
    benchmark.extra_info["table"] = text
    return result
