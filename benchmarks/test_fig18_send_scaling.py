"""Fig. 18: send throughput scaling with vCPUs (line rate by 3-4)."""

from benchmarks.conftest import run_and_report


def test_fig18_send_scaling(benchmark):
    result = run_and_report(benchmark, "fig18")
    rows = {row[0]: row for row in result.rows}
    # Paper: both systems reach line rate with 3 vCPUs (we allow 4).
    assert rows[4][1] >= 99.0
    assert rows[4][2] >= 99.0
    assert rows[1][1] < 60.0  # far from line rate on one core
