"""Ablation: per-vCPU lockless queue sets vs one shared locked queue (§3)."""

import pytest

from repro.errors import ResourceError
from repro.experiments.ablations import run_queue_sharing
from repro.mem.ring import SpscRing


def test_ablation_queue_sharing(benchmark):
    result = benchmark.pedantic(run_queue_sharing, rounds=1, iterations=1)
    print("\n" + result.table_str())
    rows = {row[0]: (row[1], row[2]) for row in result.rows}
    # Lockless scales linearly; the shared queue barely scales at all.
    assert rows[8][0] == pytest.approx(8 * rows[1][0], rel=0.01)
    assert rows[8][1] < 1.2 * rows[1][1]
    assert rows[8][0] > 4 * rows[8][1]


def test_spsc_discipline_is_enforced():
    """The 'lockless' claim is honest: a second producer is an error,
    not a race."""
    ring = SpscRing(16)
    ring.push("x", owner="producer-1")
    with pytest.raises(ResourceError):
        ring.push("y", owner="producer-2")
