"""Fig. 19: receive throughput scaling with vCPUs (91G at 8)."""

import pytest

from benchmarks.conftest import run_and_report


def test_fig19_recv_scaling(benchmark):
    result = run_and_report(benchmark, "fig19")
    rows = {row[0]: row for row in result.rows}
    assert rows[8][1] == pytest.approx(91.0, rel=0.05)
    assert rows[8][2] == pytest.approx(91.0, rel=0.05)
    series = [row[2] for row in result.rows]
    assert series == sorted(series)  # monotone scaling
