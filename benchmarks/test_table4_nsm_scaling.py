"""Table 4: scaling one VM across multiple 2-vCPU NSMs."""

import pytest

from benchmarks.conftest import run_and_report


def test_table4_nsm_scaling(benchmark):
    result = run_and_report(benchmark, "table4")
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}
    # Send saturates at the VM ceiling; recv & RPS scale with NSMs.
    assert rows[1]["send_gbps"] == pytest.approx(85.1, rel=0.1)
    assert rows[4]["send_gbps"] == pytest.approx(94.2, rel=0.05)
    assert rows[4]["recv_gbps"] == pytest.approx(91.0, rel=0.05)
    assert rows[2]["krps"] == pytest.approx(2 * rows[1]["krps"], rel=0.05)
