"""Fig. 7: the synthetic most-utilized-AG traces."""

from benchmarks.conftest import run_and_report


def test_fig07_ag_trace(benchmark):
    result = run_and_report(benchmark, "fig7")
    for name in ("AG1", "AG2", "AG3"):
        series = result.column(name)
        peak, mean = max(series), sum(series) / len(series)
        assert peak > 70, "bursts must approach provisioned capacity"
        assert mean < 0.25 * peak, "average utilization must be low"
