"""Fig. 17: short-connection RPS and goodput vs message size."""

import pytest

from benchmarks.conftest import run_and_report


def test_fig17_short_conn(benchmark):
    result = run_and_report(benchmark, "fig17")
    rows = result.row_dicts()
    small = rows[0]
    # ~70K rps at 64B for both systems.
    assert small["baseline_krps"] == pytest.approx(70, rel=0.1)
    assert small["netkernel_krps"] == pytest.approx(
        small["baseline_krps"], rel=0.1)
    # RPS declines mildly with size; goodput grows.
    assert rows[-1]["netkernel_krps"] < small["netkernel_krps"]
    assert rows[-1]["netkernel_gbps"] > small["netkernel_gbps"]
