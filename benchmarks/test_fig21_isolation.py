"""Fig. 21: per-VM rate caps while sharing one NSM (functional DES)."""

from benchmarks.conftest import run_and_report


def test_fig21_isolation(benchmark):
    result = run_and_report(benchmark, "fig21")
    rows = result.row_dicts()
    window = [r for r in rows if 12 <= r["t_sec"] <= 19]
    vm1 = sum(r["vm1"] for r in window) / len(window)
    vm2 = sum(r["vm2"] for r in window) / len(window)
    vm3 = sum(r["vm3"] for r in window) / len(window)
    assert vm1 <= 1.3            # cap 1 Gbps (paper scale)
    assert vm2 <= 0.75           # cap 500 Mbps
    assert vm3 > 2.0             # uncapped VM takes the remainder
    # After VM1 and VM2 leave, VM3 gets (nearly) the whole NSM.
    tail = [r for r in rows if 26 <= r["t_sec"] <= 29]
    vm3_alone = sum(r["vm3"] for r in tail) / max(1, len(tail))
    assert vm3_alone >= vm3  # work conservation once the others leave
