"""Ablation: CoreEngine batch size (the design choice behind Fig. 11)."""

from repro.experiments.ablations import run_batching


def test_ablation_ce_batching(benchmark):
    result = benchmark.pedantic(run_batching, rounds=1, iterations=1)
    print("\n" + result.table_str())
    cycles = dict(result.rows)
    # Full batches amortize the fixed cost dramatically.
    assert cycles[1] > 280
    assert cycles[4] < 0.35 * cycles[1]
    assert cycles[64] < cycles[16] < cycles[4]
    # The live-load observation is recorded honestly in the notes.
    assert "observed batch" in result.notes
