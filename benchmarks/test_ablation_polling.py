"""Ablation: interrupt-driven polling vs pure interrupts (§4.6)."""

from repro.experiments.ablations import run_polling


def test_ablation_polling_window(benchmark):
    result = benchmark.pedantic(run_polling, rounds=1, iterations=1)
    print("\n" + result.table_str())
    rows = {row[0]: (row[1], row[2]) for row in result.rows}
    # A zero window cannot classify wakeups as polled.
    assert rows["no_polling"][0] == 0
    # A longer window absorbs at least as many wakeups as a shorter one.
    assert rows["long_200us"][0] >= rows["paper_20us"][0] >= 0
    # And wakeups did occur under the bursty load.
    assert sum(rows["paper_20us"]) > 0
