"""Table 2: AGs per 32-core machine, baseline vs NetKernel."""

from benchmarks.conftest import run_and_report


def test_table2_packing(benchmark):
    result = run_and_report(benchmark, "table2")
    rows = {row[0]: row for row in result.rows}
    baseline_ags, nk_ags = rows["# AGs"][1], rows["# AGs"][2]
    assert baseline_ags == 16                   # paper's 32/2
    assert nk_ags >= 1.5 * baseline_ags         # paper: 16 -> 29
