"""Table 7: CPU overhead vs request rate (flat and mild)."""

from benchmarks.conftest import run_and_report


def test_table7_overhead_rps(benchmark):
    result = run_and_report(benchmark, "table7")
    measured = result.column("measured")
    assert all(1.0 < m < 1.2 for m in measured)   # paper: 1.05-1.09
    assert max(measured) - min(measured) < 0.02   # flat in offered load
