"""Fig. 10: shared-memory NSM vs baseline TCP for colocated VMs."""

from benchmarks.conftest import run_and_report


def test_fig10_shm(benchmark):
    result = run_and_report(benchmark, "fig10")
    rows = result.row_dicts()
    top = rows[-1]
    assert top["netkernel_shm_gbps"] >= 95       # ~100G at 8KB
    assert top["speedup"] >= 1.6                 # ~2x baseline
    speedups = result.column("speedup")
    assert speedups[-1] > speedups[0]            # win grows with size
