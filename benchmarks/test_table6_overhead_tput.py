"""Table 6: CPU overhead vs throughput (rising with load)."""

from benchmarks.conftest import run_and_report


def test_table6_overhead_tput(benchmark):
    result = run_and_report(benchmark, "table6")
    measured = result.column("measured")
    assert measured == sorted(measured)       # monotone ramp
    assert measured[0] < measured[-1] - 0.2   # a real ramp
    assert all(1.0 < m < 2.2 for m in measured)
