"""Fig. 20: RPS scaling with vCPUs for kernel and mTCP NSMs."""

import pytest

from benchmarks.conftest import run_and_report


def test_fig20_rps_scaling(benchmark):
    result = run_and_report(benchmark, "fig20")
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}
    # Kernel: ~70K -> ~400K (5.7x) over 8 vCPUs.
    assert rows[1]["nk_kernel_krps"] == pytest.approx(70, rel=0.1)
    assert rows[8]["nk_kernel_krps"] == pytest.approx(400, rel=0.1)
    # mTCP: 190K -> 1.1M, preserving mTCP's scalability.
    assert rows[1]["nk_mtcp_krps"] == pytest.approx(190, rel=0.1)
    assert rows[8]["nk_mtcp_krps"] == pytest.approx(1100, rel=0.1)
    # NetKernel == Baseline for the kernel stack at every core count.
    for n in (1, 2, 4, 8):
        assert rows[n]["nk_kernel_krps"] == pytest.approx(
            rows[n]["baseline_krps"], rel=0.1)
