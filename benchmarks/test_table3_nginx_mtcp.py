"""Table 3: unmodified nginx over kernel vs mTCP NSMs."""

import pytest

from benchmarks.conftest import run_and_report


def test_table3_nginx_mtcp(benchmark):
    result = run_and_report(benchmark, "table3")
    for row in result.row_dicts():
        assert 1.25 <= row["mtcp_speedup"] <= 2.0  # paper: 1.4x-1.9x
    first = result.row_dicts()[0]
    assert first["kernel_krps"] == pytest.approx(71.9, rel=0.1)
    assert first["mtcp_krps"] == pytest.approx(98.1, rel=0.1)
