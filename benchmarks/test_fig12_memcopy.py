"""Fig. 12: hugepage message-copy throughput."""

from benchmarks.conftest import run_and_report
from repro.model.throughput import PAPER


def test_fig12_memcopy(benchmark):
    result = run_and_report(benchmark, "fig12")
    for row in result.row_dicts():
        paper = PAPER["fig12_memcopy_gbps"][row["msg_size"]]
        assert abs(row["model_gbps"] - paper) / paper < 0.35
    # The paper's conclusion: >100G for >=4KB messages.
    by_size = {r["msg_size"]: r for r in result.row_dicts()}
    assert by_size[4096]["model_gbps"] > 100
    assert by_size[8192]["model_gbps"] > 140
