"""Ablation: NetKernel vs the "stack on the hypervisor" alternative (§2.2)."""

from repro.experiments.ablations import run_double_stack


def test_ablation_double_stack(benchmark):
    result = benchmark.pedantic(run_double_stack, rounds=1, iterations=1)
    print("\n" + result.table_str())
    for row in result.row_dicts():
        # Processing every byte by two stacks is strictly worse than
        # both the current architecture and NetKernel.
        assert row["double_stack"] < row["baseline"]
        assert row["double_stack"] < row["netkernel"]
