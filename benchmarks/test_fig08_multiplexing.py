"""Fig. 8: per-core RPS with AGs multiplexed onto one NSM."""

from benchmarks.conftest import run_and_report


def test_fig08_multiplexing(benchmark):
    result = run_and_report(benchmark, "fig8")
    baseline = result.column("baseline_rps_per_core")
    netkernel = result.column("netkernel_rps_per_core")
    # Paper: 12 -> 9 cores, per-core RPS improves ~33%.
    improvement = sum(netkernel) / max(1.0, sum(baseline))
    assert improvement > 1.2
    assert "NSM" in result.notes
