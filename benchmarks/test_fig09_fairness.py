"""Fig. 9: VM-level fair sharing under a selfish VM (packet-level DES)."""

from benchmarks.conftest import run_and_report


def test_fig09_fairness(benchmark):
    result = run_and_report(benchmark, "fig9", duration=1.0)
    rows = result.row_dicts()
    by_ratio = {row["flows_ratio"]: row for row in rows}
    # Baseline degrades toward flow-count proportionality...
    assert by_ratio["3:1"]["baseline_vmA_share_pct"] < 35
    # ...while the VMCC NSM holds VM A near half at every ratio.
    for row in rows:
        assert 38 <= row["netkernel_vmA_share_pct"] <= 68
    # And NetKernel always treats VM A better than baseline at 2:1+.
    assert (by_ratio["3:1"]["netkernel_vmA_share_pct"]
            > by_ratio["3:1"]["baseline_vmA_share_pct"])
