"""Figs. 13-16: bulk stream throughput vs message size, Baseline vs
NetKernel, single- and 8-stream, send and receive."""

import pytest

from benchmarks.conftest import run_and_report

PAPER_TOPS = {"fig13": 30.9, "fig14": 13.6, "fig15": 55.2, "fig16": 17.4}


@pytest.mark.parametrize("exp_id", ["fig13", "fig14", "fig15", "fig16"])
def test_stream_figure(benchmark, exp_id):
    result = run_and_report(benchmark, exp_id)
    rows = result.row_dicts()
    top = rows[-1]
    paper = PAPER_TOPS[exp_id]
    # Absolute top within 15% of the paper's testbed number.
    assert abs(top["baseline_gbps"] - paper) / paper < 0.15
    # NetKernel on par with Baseline at every size (the headline claim).
    for row in rows:
        assert row["netkernel_gbps"] == pytest.approx(
            row["baseline_gbps"], rel=0.25)
