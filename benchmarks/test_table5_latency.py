"""Table 5: response-time distributions (full functional DES)."""

from benchmarks.conftest import run_and_report


def test_table5_latency(benchmark):
    result = run_and_report(benchmark, "table5", requests=2000,
                            concurrency=150)
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}
    kernel = rows["NetKernel"]
    baseline = rows["Baseline"]
    mtcp = rows["NetKernel, mTCP NSM"]
    # NetKernel indistinguishable from Baseline.
    assert abs(kernel["mean"] - baseline["mean"]) <= max(
        1.0, 0.5 * baseline["mean"])
    # mTCP NSM: faster and dramatically tighter.
    assert mtcp["mean"] <= kernel["mean"]
    assert mtcp["stddev"] <= kernel["stddev"]
    assert mtcp["max"] <= kernel["max"]
