"""Fig. 11: CoreEngine NQE switching throughput vs batch size."""

from benchmarks.conftest import run_and_report
from repro.model.throughput import PAPER


def test_fig11_nqe_switching(benchmark):
    result = run_and_report(benchmark, "fig11")
    rows = result.row_dicts()
    by_batch = {row["batch"]: row for row in rows}
    # Calibrated endpoints match the paper tightly.
    assert abs(by_batch[1]["model_M"] - 8.0) / 8.0 < 0.05
    assert abs(by_batch[256]["model_M"] - 198.5) / 198.5 < 0.05
    # Monotone rise, like the paper's curve.
    series = [row["model_M"] for row in rows]
    assert series == sorted(series)


def test_ring_switch_wallclock(benchmark):
    """Real-wallclock microbenchmark of the ring+pack hot path."""
    from repro.experiments.fig11_nqe_switching import functional_switch_rate

    rate = benchmark(functional_switch_rate, 4, 2048)
    assert rate > 1e6  # simulated NQEs/s; sanity only
