"""Ablation: pipelined vs synchronous send() (§4.6), over the shm NSM
so the NQE hand-off — not TCP — is the bottleneck being ablated."""

from repro.experiments.ablations import run_pipelining


def test_ablation_pipelining(benchmark):
    result = benchmark.pedantic(run_pipelining, rounds=1, iterations=1)
    print("\n" + result.table_str())
    rows = dict(result.rows)
    # Pipelining must win clearly — this is why §4.6 does it.
    assert rows["pipelined"] > 1.25 * rows["synchronous"]
