"""Tests for the 32-byte NQE wire format and queue sets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.nqe import NQE_SIZE, Nqe, NqeOp
from repro.core.queues import QueueSet


class TestNqeFormat:
    def test_packed_size_is_32_bytes(self):
        nqe = Nqe(NqeOp.SOCKET, vm_id=1, queue_set_id=0, socket_id=7)
        assert len(nqe.pack()) == NQE_SIZE == 32

    def test_pack_unpack_roundtrip(self):
        nqe = Nqe(NqeOp.SEND, vm_id=3, queue_set_id=2, socket_id=99,
                  op_data=123456789, data_ptr=42, size=8192)
        decoded = Nqe.unpack(nqe.pack())
        assert decoded.op == NqeOp.SEND
        assert decoded.vm_id == 3
        assert decoded.queue_set_id == 2
        assert decoded.socket_id == 99
        assert decoded.op_data == 123456789
        assert decoded.data_ptr == 42
        assert decoded.size == 8192

    def test_negative_op_data_roundtrip(self):
        nqe = Nqe(NqeOp.OP_RESULT, 1, 0, 5, op_data=-111)
        assert Nqe.unpack(nqe.pack()).op_data == -111

    def test_unpack_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            Nqe.unpack(b"short")

    def test_vm_tuple(self):
        nqe = Nqe(NqeOp.BIND, vm_id=4, queue_set_id=1, socket_id=10)
        assert nqe.vm_tuple == (4, 1, 10)

    def test_response_preserves_vm_tuple_and_token(self):
        request = Nqe(NqeOp.CONNECT, 2, 1, 33)
        response = request.response(NqeOp.OP_RESULT, op_data=0)
        assert response.vm_tuple == request.vm_tuple
        assert response.token == request.token
        assert response.op == NqeOp.OP_RESULT

    def test_unpack_draws_fresh_token(self):
        """Regression: unpack used to hardcode token=0, which is not a
        reserved value — a decoded element could shadow a live request in
        any correlation map keyed by token.  Decoded elements must draw
        fresh, distinct tokens like any other new NQE."""
        nqe = Nqe(NqeOp.SEND, 1, 0, 5)
        raw = nqe.pack()
        a = Nqe.unpack(raw)
        b = Nqe.unpack(raw)
        assert a.token != 0 and b.token != 0
        assert a.token != b.token
        assert a.token != nqe.token and b.token != nqe.token

    def test_tokens_unique_per_nqe(self):
        tokens = {Nqe(NqeOp.SOCKET, 1, 0, 1).token for _ in range(100)}
        assert len(tokens) == 100

    @given(op=st.sampled_from(list(NqeOp)),
           vm_id=st.integers(0, 255),
           qset=st.integers(0, 255),
           sock=st.integers(-2**31, 2**31 - 1),
           op_data=st.integers(-2**63, 2**63 - 1),
           data_ptr=st.integers(-2**63, 2**63 - 1),
           size=st.integers(-2**31, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, op, vm_id, qset, sock, op_data,
                                data_ptr, size):
        nqe = Nqe(op, vm_id, qset, sock, op_data, data_ptr, size)
        decoded = Nqe.unpack(nqe.pack())
        assert (decoded.op, decoded.vm_id, decoded.queue_set_id,
                decoded.socket_id, decoded.op_data, decoded.data_ptr,
                decoded.size) == (op, vm_id, qset, sock, op_data,
                                  data_ptr, size)


class TestQueueSet:
    def test_four_rings(self):
        qs = QueueSet("vm1", 0)
        assert qs.job is not qs.completion
        assert qs.send is not qs.receive
        assert {len(r) for r in (qs.job, qs.completion, qs.send,
                                 qs.receive)} == {0}

    def test_depth_helpers(self):
        qs = QueueSet("vm1", 0)
        qs.job.push(Nqe(NqeOp.SOCKET, 1, 0, 1))
        qs.send.push(Nqe(NqeOp.SEND, 1, 0, 1))
        qs.receive.push(Nqe(NqeOp.DATA_ARRIVED, 1, 0, 1))
        assert qs.outbound_depth() == 2
        assert qs.inbound_depth() == 1

    def test_stats_structure(self):
        qs = QueueSet("vm9", 3)
        stats = qs.stats()
        assert "vm9.qs3.job" in stats
        assert stats["vm9.qs3.job"]["produced"] == 0
