"""Tests for the epoll emulation (nk_poll path, Fig. 5) on both
architectures."""

import pytest

from repro.baseline.host import BaselineHost
from repro.core.host import NetKernelHost
from repro.core.sockets import EPOLLIN, EPOLLOUT
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


def netkernel_pair(sim):
    host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                      default_delay_sec=usec(25)))
    nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
    vm_a = host.add_vm("a", vcpus=1, nsm=nsm)
    vm_b = host.add_vm("b", vcpus=1, nsm=nsm)
    return (vm_a, vm_b, host.socket_api(vm_a), host.socket_api(vm_b),
            ("nsm0", 80))


def baseline_pair(sim):
    host = BaselineHost(sim, Network(sim, default_rate_bps=gbps(10),
                                     default_delay_sec=usec(25)))
    vm_a = host.add_vm("a", vcpus=1)
    vm_b = host.add_vm("b", vcpus=1)
    return (vm_a, vm_b, host.socket_api(vm_a), host.socket_api(vm_b),
            ("a", 80))


@pytest.mark.parametrize("pair", [netkernel_pair, baseline_pair],
                         ids=["netkernel", "baseline"])
class TestEpoll:
    def test_epoll_wakes_on_accept(self, pair):
        sim = Simulator()
        vm_a, vm_b, api_a, api_b, addr = pair(sim)
        events_seen = []

        def server():
            listener = yield from api_a.socket()
            yield from api_a.bind(listener, 80)
            yield from api_a.listen(listener)
            epoll = api_a.epoll_create()
            api_a.epoll_ctl(epoll, listener, EPOLLIN)
            events = yield from api_a.epoll_wait(epoll)
            events_seen.extend(events)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_b.socket()
            yield from api_b.connect(sock, addr)

        vm_a.spawn(server())
        vm_b.spawn(client())
        sim.run(until=5.0)
        assert events_seen
        fd, mask = events_seen[0]
        assert mask & EPOLLIN

    def test_epoll_wakes_on_data(self, pair):
        sim = Simulator()
        vm_a, vm_b, api_a, api_b, addr = pair(sim)
        got = {}

        def server():
            listener = yield from api_a.socket()
            yield from api_a.bind(listener, 80)
            yield from api_a.listen(listener)
            conn = yield from api_a.accept(listener)
            epoll = api_a.epoll_create()
            api_a.epoll_ctl(epoll, conn, EPOLLIN)
            events = yield from api_a.epoll_wait(epoll)
            assert events and events[0][1] & EPOLLIN
            got["data"] = yield from api_a.recv(conn, 1024)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_b.socket()
            yield from api_b.connect(sock, addr)
            yield sim.timeout(0.01)
            yield from api_b.send(sock, b"ding")

        vm_a.spawn(server())
        vm_b.spawn(client())
        sim.run(until=5.0)
        assert got["data"] == b"ding"

    def test_epoll_timeout_returns_empty(self, pair):
        sim = Simulator()
        vm_a, _, api_a, _, _ = pair(sim)
        result = {}

        def app():
            sock = yield from api_a.socket()
            yield from api_a.bind(sock, 80)
            yield from api_a.listen(sock)
            epoll = api_a.epoll_create()
            api_a.epoll_ctl(epoll, sock, EPOLLIN)
            started = sim.now
            events = yield from api_a.epoll_wait(epoll, timeout=0.05)
            result["events"] = events
            result["elapsed"] = sim.now - started

        vm_a.spawn(app())
        sim.run(until=1.0)
        assert result["events"] == []
        assert result["elapsed"] == pytest.approx(0.05, rel=0.1)

    def test_epollout_on_writable_socket(self, pair):
        sim = Simulator()
        vm_a, vm_b, api_a, api_b, addr = pair(sim)
        result = {}

        def server():
            listener = yield from api_a.socket()
            yield from api_a.bind(listener, 80)
            yield from api_a.listen(listener)
            yield from api_a.accept(listener)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_b.socket()
            yield from api_b.connect(sock, addr)
            epoll = api_b.epoll_create()
            api_b.epoll_ctl(epoll, sock, EPOLLOUT)
            events = yield from api_b.epoll_wait(epoll)
            result["events"] = events

        vm_a.spawn(server())
        vm_b.spawn(client())
        sim.run(until=5.0)
        assert result["events"]
        assert result["events"][0][1] & EPOLLOUT

    def test_unwatch_stops_events(self, pair):
        sim = Simulator()
        vm_a, vm_b, api_a, api_b, addr = pair(sim)
        result = {"events": None}

        def server():
            listener = yield from api_a.socket()
            yield from api_a.bind(listener, 80)
            yield from api_a.listen(listener)
            epoll = api_a.epoll_create()
            api_a.epoll_ctl(epoll, listener, EPOLLIN)
            api_a.epoll_ctl(epoll, listener, 0)  # unwatch
            events = yield from api_a.epoll_wait(epoll, timeout=0.05)
            result["events"] = events

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_b.socket()
            yield from api_b.connect(sock, addr)

        vm_a.spawn(server())
        vm_b.spawn(client())
        sim.run(until=5.0)
        assert result["events"] == []

    def test_level_triggered_repeats_until_drained(self, pair):
        sim = Simulator()
        vm_a, vm_b, api_a, api_b, addr = pair(sim)
        result = {}

        def server():
            listener = yield from api_a.socket()
            yield from api_a.bind(listener, 80)
            yield from api_a.listen(listener)
            conn = yield from api_a.accept(listener)
            epoll = api_a.epoll_create()
            api_a.epoll_ctl(epoll, conn, EPOLLIN)
            yield from api_a.epoll_wait(epoll)
            # Read only part of the data; epoll must fire again.
            first = yield from api_a.recv(conn, 2)
            events = yield from api_a.epoll_wait(epoll, timeout=0.1)
            second = yield from api_a.recv(conn, 100)
            result["first"], result["second"] = first, second
            result["again"] = bool(events)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_b.socket()
            yield from api_b.connect(sock, addr)
            yield sim.timeout(0.01)
            yield from api_b.send(sock, b"abcdef")

        vm_a.spawn(server())
        vm_b.spawn(client())
        sim.run(until=5.0)
        assert result["first"] == b"ab"
        assert result["again"] is True
        assert result["second"] == b"cdef"
