"""Tests for CoreEngine's connection table (Fig. 6 semantics)."""

import pytest

from repro.core.conn_table import ConnectionTable, ConnectionTableError


class TestConnectionTable:
    def test_insert_then_complete_flow(self):
        table = ConnectionTable()
        vm_tuple = (1, 0, 42)
        entry = table.insert(vm_tuple, nsm_id=7, nsm_queue_set=2)
        assert not entry.complete
        assert table.lookup_vm(vm_tuple) is entry
        assert table.lookup_nsm((7, 2, 55)) is None

        table.complete(vm_tuple, nsm_socket_id=55)
        assert entry.complete
        assert entry.nsm_tuple == (7, 2, 55)
        assert table.lookup_nsm((7, 2, 55)) is entry

    def test_duplicate_vm_tuple_rejected(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        with pytest.raises(ConnectionTableError):
            table.insert((1, 0, 1), 1, 0)

    def test_complete_unknown_tuple_rejected(self):
        table = ConnectionTable()
        with pytest.raises(ConnectionTableError):
            table.complete((9, 9, 9), 1)

    def test_complete_twice_same_id_is_idempotent(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        table.complete((1, 0, 1), 10)
        table.complete((1, 0, 1), 10)  # no error

    def test_complete_conflicting_id_rejected(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        table.complete((1, 0, 1), 10)
        with pytest.raises(ConnectionTableError):
            table.complete((1, 0, 1), 11)

    def test_remove_cleans_both_directions(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        table.complete((1, 0, 1), 10)
        table.remove_vm((1, 0, 1))
        assert table.lookup_vm((1, 0, 1)) is None
        assert table.lookup_nsm((1, 0, 10)) is None
        assert len(table) == 0

    def test_remove_unknown_is_noop(self):
        table = ConnectionTable()
        table.remove_vm((5, 5, 5))  # silently ignored

    def test_one_nsm_serves_many_vms(self):
        """The multiplexing property: same NSM, distinct tuples."""
        table = ConnectionTable()
        for vm in range(1, 6):
            table.insert((vm, 0, 1), nsm_id=1, nsm_queue_set=0)
            table.complete((vm, 0, 1), nsm_socket_id=100 + vm)
        assert len(table) == 5
        for vm in range(1, 6):
            assert table.lookup_nsm((1, 0, 100 + vm)).vm_tuple == (vm, 0, 1)

    def test_entries_for_vm(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        table.insert((1, 0, 2), 1, 0)
        table.insert((2, 0, 1), 1, 0)
        assert len(table.entries_for_vm(1)) == 2
        assert len(table.entries_for_vm(2)) == 1

    def test_counters(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        table.remove_vm((1, 0, 1))
        assert table.inserted == 1
        assert table.removed == 1

    def test_nsm_loads(self):
        table = ConnectionTable()
        assert table.nsm_loads() == {}
        table.insert((1, 0, 1), nsm_id=7, nsm_queue_set=0)
        table.insert((1, 0, 2), nsm_id=7, nsm_queue_set=0)
        table.insert((2, 0, 1), nsm_id=8, nsm_queue_set=0)
        assert table.nsm_loads() == {7: 2, 8: 1}
        table.remove_vm((1, 0, 1))
        assert table.nsm_loads() == {7: 1, 8: 1}


class TestNsmTupleCollisions:
    """Regressions for the silent-aliasing bug: complete()/rebind_vm()
    used to overwrite _by_nsm[nsm_tuple] last-writer-wins, so two live
    connections could claim one NSM socket and reverse lookups would
    route one VM's traffic to the other."""

    def test_complete_collision_rejected_and_rolled_back(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), nsm_id=7, nsm_queue_set=0)
        table.complete((1, 0, 1), nsm_socket_id=50)
        victim = table.insert((2, 0, 1), nsm_id=7, nsm_queue_set=0)
        with pytest.raises(ConnectionTableError):
            table.complete((2, 0, 1), nsm_socket_id=50)
        # The original binding survives; the colliding entry stays
        # pending rather than half-bound.
        assert table.lookup_nsm((7, 0, 50)).vm_tuple == (1, 0, 1)
        assert not victim.complete

    def test_same_socket_id_on_distinct_nsms_is_fine(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), nsm_id=7, nsm_queue_set=0)
        table.complete((1, 0, 1), nsm_socket_id=50)
        table.insert((2, 0, 1), nsm_id=8, nsm_queue_set=0)
        table.complete((2, 0, 1), nsm_socket_id=50)
        assert table.lookup_nsm((7, 0, 50)).vm_tuple == (1, 0, 1)
        assert table.lookup_nsm((8, 0, 50)).vm_tuple == (2, 0, 1)

    def test_rebind_collision_rejected(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), nsm_id=7, nsm_queue_set=0)
        table.complete((1, 0, 1), nsm_socket_id=50)
        table.insert((2, 0, 1), nsm_id=8, nsm_queue_set=0)
        table.complete((2, 0, 1), nsm_socket_id=50)
        # Migrating VM 2 onto NSM 7 would land its socket 50 on top of
        # VM 1's established (7, 0, 50) binding.
        with pytest.raises(ConnectionTableError):
            table.rebind_vm(2, 7, lambda vm_tuple: 0)
        assert table.lookup_nsm((7, 0, 50)).vm_tuple == (1, 0, 1)


class _NoScan(dict):
    """A dict that refuses to be iterated: installed over the main maps
    to prove owner-scoped queries are served from the per-owner indexes,
    never by scanning the whole table."""

    def _scan(self, *_):
        raise AssertionError("full-table scan")

    __iter__ = items = values = keys = _scan


class TestNoFullScans:
    def test_owner_queries_never_scan_the_main_maps(self):
        table = ConnectionTable()
        for vm in range(1, 5):
            table.insert((vm, 0, 1), nsm_id=1 + vm % 2, nsm_queue_set=0)
            table.complete((vm, 0, 1), nsm_socket_id=10 + vm)
        table._by_vm = _NoScan(table._by_vm)
        table._by_nsm = _NoScan(table._by_nsm)
        assert [e.vm_tuple for e in table.entries_for_vm(1)] == [(1, 0, 1)]
        assert len(table.entries_for_nsm(1)) == 2
        assert table.vms_for_nsm(2) == [1, 3]
        assert table.nsm_loads() == {1: 2, 2: 2}
        assert table.rebind_vm(1, 1, lambda vm_tuple: 0) == 1
        assert table.nsm_loads() == {1: 3, 2: 1}
        table.remove_vm((2, 0, 1))
        assert table.nsm_loads() == {1: 2, 2: 1}


class TestLoadBalancedAssignment:
    def test_assign_vm_auto_uses_live_connection_counts(self):
        """assign_vm_auto balances on the public nsm_loads() signal."""
        from repro.core.coreengine import CoreEngine
        from repro.cpu.core import Core
        from repro.sim import Simulator

        sim = Simulator()
        engine = CoreEngine(sim, Core(sim))
        nsm_a, _ = engine.register_nsm("a", queue_sets=1)
        nsm_b, _ = engine.register_nsm("b", queue_sets=1)
        nsm_c, _ = engine.register_nsm("c", queue_sets=1)
        # a: 2 connections, b: 1, c: 0 -> c wins, then b.
        engine.table.insert((90, 0, 1), nsm_a, 0)
        engine.table.insert((90, 0, 2), nsm_a, 0)
        engine.table.insert((91, 0, 1), nsm_b, 0)
        vm1, _ = engine.register_vm("vm1", queue_sets=1)
        vm2, _ = engine.register_vm("vm2", queue_sets=1)
        assert engine.assign_vm_auto(vm1) == nsm_c
        # Assignment alone adds no table entries, so c still has zero
        # live connections and wins again (ties break by id order).
        assert engine.assign_vm_auto(vm2) == nsm_c
