"""Tests for CoreEngine's connection table (Fig. 6 semantics)."""

import pytest

from repro.core.conn_table import ConnectionTable, ConnectionTableError


class TestConnectionTable:
    def test_insert_then_complete_flow(self):
        table = ConnectionTable()
        vm_tuple = (1, 0, 42)
        entry = table.insert(vm_tuple, nsm_id=7, nsm_queue_set=2)
        assert not entry.complete
        assert table.lookup_vm(vm_tuple) is entry
        assert table.lookup_nsm((7, 2, 55)) is None

        table.complete(vm_tuple, nsm_socket_id=55)
        assert entry.complete
        assert entry.nsm_tuple == (7, 2, 55)
        assert table.lookup_nsm((7, 2, 55)) is entry

    def test_duplicate_vm_tuple_rejected(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        with pytest.raises(ConnectionTableError):
            table.insert((1, 0, 1), 1, 0)

    def test_complete_unknown_tuple_rejected(self):
        table = ConnectionTable()
        with pytest.raises(ConnectionTableError):
            table.complete((9, 9, 9), 1)

    def test_complete_twice_same_id_is_idempotent(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        table.complete((1, 0, 1), 10)
        table.complete((1, 0, 1), 10)  # no error

    def test_complete_conflicting_id_rejected(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        table.complete((1, 0, 1), 10)
        with pytest.raises(ConnectionTableError):
            table.complete((1, 0, 1), 11)

    def test_remove_cleans_both_directions(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        table.complete((1, 0, 1), 10)
        table.remove_vm((1, 0, 1))
        assert table.lookup_vm((1, 0, 1)) is None
        assert table.lookup_nsm((1, 0, 10)) is None
        assert len(table) == 0

    def test_remove_unknown_is_noop(self):
        table = ConnectionTable()
        table.remove_vm((5, 5, 5))  # silently ignored

    def test_one_nsm_serves_many_vms(self):
        """The multiplexing property: same NSM, distinct tuples."""
        table = ConnectionTable()
        for vm in range(1, 6):
            table.insert((vm, 0, 1), nsm_id=1, nsm_queue_set=0)
            table.complete((vm, 0, 1), nsm_socket_id=100 + vm)
        assert len(table) == 5
        for vm in range(1, 6):
            assert table.lookup_nsm((1, 0, 100 + vm)).vm_tuple == (vm, 0, 1)

    def test_entries_for_vm(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        table.insert((1, 0, 2), 1, 0)
        table.insert((2, 0, 1), 1, 0)
        assert len(table.entries_for_vm(1)) == 2
        assert len(table.entries_for_vm(2)) == 1

    def test_counters(self):
        table = ConnectionTable()
        table.insert((1, 0, 1), 1, 0)
        table.remove_vm((1, 0, 1))
        assert table.inserted == 1
        assert table.removed == 1
