"""Tests for the baseline (stack-in-guest) architecture."""

import pytest

from repro.baseline.host import BaselineHost
from repro.errors import ConfigurationError, SocketError
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


@pytest.fixture
def env():
    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(10),
                      default_delay_sec=usec(25))
    return sim, BaselineHost(sim, network)


class TestBaselineHost:
    def test_duplicate_vm_rejected(self, env):
        _, host = env
        host.add_vm("vm1")
        with pytest.raises(ConfigurationError):
            host.add_vm("vm1")

    def test_unknown_stack_rejected(self, env):
        _, host = env
        with pytest.raises(ConfigurationError):
            host.add_vm("vm1", stack="exotic")

    def test_transfer_integrity(self, env):
        sim, host = env
        server_vm = host.add_vm("server", vcpus=1)
        client_vm = host.add_vm("client", vcpus=1)
        api_s = host.socket_api(server_vm)
        api_c = host.socket_api(client_vm)
        payload = bytes(i % 253 for i in range(150_000))
        result = {}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            conn = yield from api_s.accept(listener)
            data = bytearray()
            while True:
                chunk = yield from api_s.recv(conn, 65536)
                if not chunk:
                    break
                data.extend(chunk)
            result["data"] = bytes(data)

        def client():
            yield sim.timeout(0.0005)
            sock = yield from api_c.socket()
            yield from api_c.connect(sock, ("server", 80))
            yield from api_c.send(sock, payload)
            yield from api_c.close(sock)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=10.0)
        assert result["data"] == payload

    def test_connect_refused_surfaces(self, env):
        sim, host = env
        vm_a = host.add_vm("a", vcpus=1)
        host.add_vm("b", vcpus=1)
        api = host.socket_api(vm_a)
        outcome = {}

        def client():
            sock = yield from api.socket()
            try:
                yield from api.connect(sock, ("b", 12345))
            except SocketError as error:
                outcome["errno"] = error.errno_name

        vm_a.spawn(client())
        sim.run(until=5.0)
        assert outcome["errno"] == "ECONNREFUSED"

    def test_request_response_roundtrip(self, env):
        sim, host = env
        server_vm = host.add_vm("server", vcpus=1)
        client_vm = host.add_vm("client", vcpus=1)
        api_s = host.socket_api(server_vm)
        api_c = host.socket_api(client_vm)
        result = {}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            conn = yield from api_s.accept(listener)
            request = yield from api_s.recv(conn, 1024)
            yield from api_s.send(conn, b"re:" + request)
            yield from api_s.close(conn)

        def client():
            yield sim.timeout(0.0005)
            sock = yield from api_c.socket()
            yield from api_c.connect(sock, ("server", 80))
            yield from api_c.send(sock, b"ping")
            result["reply"] = yield from api_c.recv(sock, 1024)
            yield from api_c.close(sock)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=5.0)
        assert result["reply"] == b"re:ping"

    def test_stack_work_charged_to_vm_cores(self, env):
        sim, host = env
        server_vm = host.add_vm("server", vcpus=1)
        client_vm = host.add_vm("client", vcpus=1)
        api_s = host.socket_api(server_vm)
        api_c = host.socket_api(client_vm)

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            conn = yield from api_s.accept(listener)
            while True:
                chunk = yield from api_s.recv(conn, 65536)
                if not chunk:
                    break

        def client():
            yield sim.timeout(0.0005)
            sock = yield from api_c.socket()
            yield from api_c.connect(sock, ("server", 80))
            yield from api_c.send(sock, b"w" * 100_000)
            yield from api_c.close(sock)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=5.0)
        cycles = host.cycles_by_role()
        assert cycles["vms"] > 0
        assert cycles["nsms"] == 0
        assert cycles["coreengine"] == 0
        components = server_vm.cores[0].busy_by_component
        assert any(key.startswith("kernel.") for key in components)

    def test_nic_rate_cap_limits_throughput(self, env):
        sim, host = env
        from repro.units import mbps

        server_vm = host.add_vm("server", vcpus=1)
        client_vm = host.add_vm("client", vcpus=1, nic_rate_bps=mbps(10))
        api_s = host.socket_api(server_vm)
        api_c = host.socket_api(client_vm)
        got = {"bytes": 0}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            conn = yield from api_s.accept(listener)
            while True:
                chunk = yield from api_s.recv(conn, 65536)
                if not chunk:
                    break
                got["bytes"] += len(chunk)

        def client():
            yield sim.timeout(0.0005)
            sock = yield from api_c.socket()
            yield from api_c.connect(sock, ("server", 80))
            deadline = sim.now + 1.0
            while sim.now < deadline:
                yield from api_c.send(sock, b"r" * 8192)
            yield from api_c.close(sock)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=3.0)
        # The client buffers ahead, but delivery is capped at 10 Mbps
        # for the whole 3s window (plus queue slack).
        assert got["bytes"] * 8 <= 10e6 * 3.3
        assert got["bytes"] * 8 >= 4e6
