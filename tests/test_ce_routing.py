"""CoreEngine routing tests with hand-built NQEs (no GuestLib/ServiceLib).

Drives the switch directly: push NQEs into a VM device's produce rings,
run the simulator, and observe which NSM ring they land in — the Fig. 6
switching behaviour in isolation.
"""

import pytest

from repro.core.coreengine import CoreEngine
from repro.core.nqe import Nqe, NqeOp
from repro.cpu.core import Core
from repro.sim import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    engine = CoreEngine(sim, Core(sim), batch_size=4)
    vm_id, vm_dev = engine.register_vm("vm", queue_sets=1)
    nsm_id, nsm_dev = engine.register_nsm("nsm", queue_sets=2)
    engine.assign_vm(vm_id, nsm_id)
    return sim, engine, vm_id, vm_dev, nsm_id, nsm_dev


def push_vm_nqe(vm_dev, nqe, data=False):
    qs = vm_dev.queue_sets[0]
    ring = qs.send if data else qs.job
    ring.push(nqe, owner="guest")
    vm_dev.ring_doorbell()


class TestVmToNsmRouting:
    def test_job_nqe_lands_in_nsm_job_ring(self, setup):
        sim, engine, vm_id, vm_dev, nsm_id, nsm_dev = setup
        nqe = Nqe(NqeOp.SOCKET, vm_id, 0, 42)
        push_vm_nqe(vm_dev, nqe)
        sim.run(until=0.01)
        depths = [len(qs.job) for qs in nsm_dev.queue_sets]
        assert sum(depths) == 1
        assert engine.table.lookup_vm((vm_id, 0, 42)) is not None

    def test_send_nqe_lands_in_nsm_send_ring(self, setup):
        sim, engine, vm_id, vm_dev, nsm_id, nsm_dev = setup
        push_vm_nqe(vm_dev, Nqe(NqeOp.SOCKET, vm_id, 0, 42))
        sim.run(until=0.01)
        push_vm_nqe(vm_dev, Nqe(NqeOp.SEND, vm_id, 0, 42, size=100),
                    data=True)
        sim.run(until=0.02)
        assert sum(len(qs.send) for qs in nsm_dev.queue_sets) == 1
        assert sum(len(qs.job) for qs in nsm_dev.queue_sets) == 1

    def test_same_socket_pins_to_one_nsm_queue_set(self, setup):
        sim, engine, vm_id, vm_dev, nsm_id, nsm_dev = setup
        for _ in range(3):
            push_vm_nqe(vm_dev, Nqe(NqeOp.BIND, vm_id, 0, 7, op_data=80))
        sim.run(until=0.01)
        depths = [qs.inbound_depth() + len(qs.job) + len(qs.send)
                  for qs in nsm_dev.queue_sets]
        non_empty = [d for d in depths if d]
        assert non_empty == [3]  # all three in the same lane

    def test_nqes_switched_counter(self, setup):
        sim, engine, vm_id, vm_dev, *_ = setup
        for index in range(5):
            push_vm_nqe(vm_dev, Nqe(NqeOp.SOCKET, vm_id, 0, 100 + index))
        sim.run(until=0.01)
        assert engine.nqes_switched == 5

    def test_vm_without_nsm_assignment_raises(self):
        from repro.errors import ConfigurationError

        sim = Simulator()
        engine = CoreEngine(sim, Core(sim))
        vm_id, vm_dev = engine.register_vm("lone", queue_sets=1)
        push_vm_nqe(vm_dev, Nqe(NqeOp.SOCKET, vm_id, 0, 1))
        with pytest.raises(ConfigurationError):
            sim.run(until=0.01)


class TestNsmToVmRouting:
    def test_result_completes_table_and_lands_in_completion(self, setup):
        sim, engine, vm_id, vm_dev, nsm_id, nsm_dev = setup
        request = Nqe(NqeOp.SOCKET, vm_id, 0, 42)
        push_vm_nqe(vm_dev, request)
        sim.run(until=0.01)
        # NSM responds with its socket id in op_data (Fig. 6 step 3).
        response = request.response(NqeOp.OP_RESULT, op_data=777)
        target = next(qs for qs in nsm_dev.queue_sets if len(qs.job))
        target.completion.push(response, owner="servicelib")
        nsm_dev.ring_doorbell()
        sim.run(until=0.02)
        entry = engine.table.lookup_vm((vm_id, 0, 42))
        assert entry.nsm_socket_id == 777
        assert engine.table.lookup_nsm(entry.nsm_tuple) is entry
        assert len(vm_dev.queue_sets[0].completion) == 1

    def test_event_lands_in_receive_ring(self, setup):
        sim, engine, vm_id, vm_dev, nsm_id, nsm_dev = setup
        event = Nqe(NqeOp.DATA_ARRIVED, vm_id, 0, 42, size=64)
        nsm_dev.queue_sets[0].receive.push(event, owner="servicelib")
        nsm_dev.ring_doorbell()
        sim.run(until=0.01)
        assert len(vm_dev.queue_sets[0].receive) == 1
        assert len(vm_dev.queue_sets[0].completion) == 0

    def test_close_result_removes_table_entry(self, setup):
        sim, engine, vm_id, vm_dev, nsm_id, nsm_dev = setup
        request = Nqe(NqeOp.SOCKET, vm_id, 0, 42)
        push_vm_nqe(vm_dev, request)
        sim.run(until=0.01)
        close_result = Nqe(NqeOp.OP_RESULT, vm_id, 0, 42, op_data=0,
                           aux={"req_op": NqeOp.CLOSE})
        nsm_dev.queue_sets[0].completion.push(close_result,
                                              owner="servicelib")
        nsm_dev.ring_doorbell()
        sim.run(until=0.02)
        assert engine.table.lookup_vm((vm_id, 0, 42)) is None

    def test_response_for_departed_vm_dropped(self, setup):
        sim, engine, vm_id, vm_dev, nsm_id, nsm_dev = setup
        engine.deregister(vm_id)
        orphan = Nqe(NqeOp.DATA_ARRIVED, vm_id, 0, 42, size=64)
        nsm_dev.queue_sets[0].receive.push(orphan, owner="servicelib")
        nsm_dev.ring_doorbell()
        sim.run(until=0.01)  # must not raise

    def test_backpressure_stalls_until_ring_drains(self, setup):
        sim, engine, vm_id, vm_dev, nsm_id, nsm_dev = setup
        # Fill the VM's receive ring to capacity.
        rx = vm_dev.queue_sets[0].receive
        for index in range(rx.capacity):
            rx.push(Nqe(NqeOp.DATA_ARRIVED, vm_id, 0, 1), owner=engine)
        event = Nqe(NqeOp.DATA_ARRIVED, vm_id, 0, 42)
        nsm_dev.queue_sets[0].receive.push(event, owner="servicelib")
        nsm_dev.ring_doorbell()
        sim.run(until=0.001)
        assert rx.full  # the new event is still waiting
        # Drain one slot; CoreEngine must complete the delivery.
        rx.pop(owner="guest-consumer")
        sim.run(until=0.002)
        assert rx.full  # refilled with the stalled event
