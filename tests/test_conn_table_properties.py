"""Property test: the indexed ConnectionTable is observationally
identical to the old single-dict design.

``NaiveTable`` reimplements the pre-index table — one dict per
direction, every owner-scoped query a full scan — with the same
collision rules.  A seeded random workload of insert / complete /
remove / rebind / quarantine-style sweeps is applied to both tables in
lockstep; after every operation the two must agree on every observable:
live entries and their bindings, per-owner query results (including
order, which failover timelines depend on), load counts, lengths,
counters, and which operations raise.
"""

import random

import pytest

from repro.core.conn_table import ConnectionTable, ConnectionTableError


class _NaiveEntry:
    def __init__(self, vm_tuple, nsm_id, nsm_queue_set):
        self.vm_tuple = vm_tuple
        self.nsm_id = nsm_id
        self.nsm_queue_set = nsm_queue_set
        self.nsm_socket_id = None

    @property
    def complete(self):
        return self.nsm_socket_id is not None

    @property
    def nsm_tuple(self):
        if self.nsm_socket_id is None:
            return None
        return (self.nsm_id, self.nsm_queue_set, self.nsm_socket_id)


class NaiveTable:
    """The reference semantics, scans and all."""

    def __init__(self):
        self._by_vm = {}
        self._by_nsm = {}
        self.inserted = 0
        self.removed = 0

    def __len__(self):
        return len(self._by_vm)

    def insert(self, vm_tuple, nsm_id, nsm_queue_set):
        if vm_tuple in self._by_vm:
            raise ConnectionTableError(f"duplicate VM tuple {vm_tuple}")
        entry = _NaiveEntry(vm_tuple, nsm_id, nsm_queue_set)
        self._by_vm[vm_tuple] = entry
        self.inserted += 1
        return entry

    def complete(self, vm_tuple, nsm_socket_id):
        entry = self._by_vm.get(vm_tuple)
        if entry is None:
            raise ConnectionTableError(f"no entry for VM tuple {vm_tuple}")
        if entry.complete:
            if entry.nsm_socket_id != nsm_socket_id:
                raise ConnectionTableError("conflicting NSM socket")
            return entry
        nsm_tuple = (entry.nsm_id, entry.nsm_queue_set, nsm_socket_id)
        if nsm_tuple in self._by_nsm:
            raise ConnectionTableError(f"alias of {nsm_tuple}")
        entry.nsm_socket_id = nsm_socket_id
        self._by_nsm[nsm_tuple] = entry
        return entry

    def lookup_vm(self, vm_tuple):
        return self._by_vm.get(vm_tuple)

    def lookup_nsm(self, nsm_tuple):
        return self._by_nsm.get(nsm_tuple)

    def remove_vm(self, vm_tuple):
        entry = self._by_vm.pop(vm_tuple, None)
        if entry is None:
            return
        if entry.nsm_tuple is not None:
            self._by_nsm.pop(entry.nsm_tuple, None)
        self.removed += 1

    def entries_for_vm(self, vm_id):
        return [e for e in self._by_vm.values() if e.vm_tuple[0] == vm_id]

    def entries_for_nsm(self, nsm_id):
        return [e for e in self._by_vm.values() if e.nsm_id == nsm_id]

    def rebind_vm(self, vm_id, new_nsm_id, queue_set_for):
        rebound = 0
        for entry in self.entries_for_vm(vm_id):
            if entry.nsm_tuple is not None:
                self._by_nsm.pop(entry.nsm_tuple, None)
            entry.nsm_id = new_nsm_id
            entry.nsm_queue_set = queue_set_for(entry.vm_tuple)
            if entry.nsm_tuple is not None:
                holder = self._by_nsm.get(entry.nsm_tuple)
                if holder is not None and holder is not entry:
                    raise ConnectionTableError(f"alias of {entry.nsm_tuple}")
                self._by_nsm[entry.nsm_tuple] = entry
            rebound += 1
        return rebound

    def vms_for_nsm(self, nsm_id):
        return sorted({e.vm_tuple[0] for e in self._by_vm.values()
                       if e.nsm_id == nsm_id})

    def nsm_loads(self):
        loads = {}
        for entry in self._by_vm.values():
            loads[entry.nsm_id] = loads.get(entry.nsm_id, 0) + 1
        return loads


VM_IDS = range(1, 9)
NSM_IDS = range(1, 5)
SOCKETS = range(1, 5)      # small ranges on purpose: force collisions


def _observe(table):
    """Everything a caller can see, in one comparable structure."""
    bindings = {vt: (e.nsm_id, e.nsm_queue_set, e.nsm_socket_id)
                for vt, e in table._by_vm.items()}
    return {
        "len": len(table),
        "inserted": table.inserted,
        "removed": table.removed,
        "bindings": bindings,
        "nsm_loads": table.nsm_loads(),
        "per_vm": {vm: [e.vm_tuple for e in table.entries_for_vm(vm)]
                   for vm in VM_IDS},
        "per_nsm": {nsm: [e.vm_tuple for e in table.entries_for_nsm(nsm)]
                    for nsm in NSM_IDS},
        "vms_per_nsm": {nsm: table.vms_for_nsm(nsm) for nsm in NSM_IDS},
    }


def _apply(table, op):
    """Returns (result, error_type): never lets the exception escape so
    both tables can be driven through identical failures."""
    try:
        kind = op[0]
        if kind == "insert":
            table.insert(op[1], op[2], op[3])
            return None, None
        if kind == "complete":
            table.complete(op[1], op[2])
            return None, None
        if kind == "remove":
            table.remove_vm(op[1])
            return None, None
        if kind == "rebind":
            return table.rebind_vm(op[1], op[2], lambda vt: vt[1]), None
        if kind == "quarantine":
            # What failover does to a dead NSM: walk its entries in
            # order and retire every connection.
            victims = [e.vm_tuple for e in table.entries_for_nsm(op[1])]
            for vm_tuple in victims:
                table.remove_vm(vm_tuple)
            return victims, None
        raise AssertionError(f"unknown op {kind}")
    except ConnectionTableError as error:
        return None, type(error)


def _random_op(rng):
    roll = rng.random()
    vm_tuple = (rng.choice(VM_IDS), rng.randrange(2), rng.choice(SOCKETS))
    if roll < 0.40:
        return ("insert", vm_tuple, rng.choice(NSM_IDS), rng.randrange(2))
    if roll < 0.70:
        return ("complete", vm_tuple, rng.choice(SOCKETS))
    if roll < 0.85:
        return ("remove", vm_tuple)
    if roll < 0.95:
        return ("rebind", rng.choice(VM_IDS), rng.choice(NSM_IDS))
    return ("quarantine", rng.choice(NSM_IDS))


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 17])
def test_indexed_table_matches_naive_reference(seed):
    rng = random.Random(seed)
    indexed, naive = ConnectionTable(), NaiveTable()
    raised = 0
    for step in range(600):
        op = _random_op(rng)
        result_i, error_i = _apply(indexed, op)
        result_n, error_n = _apply(naive, op)
        assert error_i == error_n, (seed, step, op)
        assert result_i == result_n, (seed, step, op)
        if error_i is not None:
            raised += 1
        assert _observe(indexed) == _observe(naive), (seed, step, op)
    # The workload must actually exercise the failure paths.
    assert raised > 0
    assert indexed.removed > 0
