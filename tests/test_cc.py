"""Tests for the congestion-control algorithms."""

import pytest

from repro.stack.cc.base import CongestionControl, INITIAL_WINDOW_MSS
from repro.stack.cc.cubic import CubicCC
from repro.stack.cc.dctcp import DctcpCC
from repro.stack.cc.reno import RenoCC
from repro.stack.cc.vmcc import VmCC, VmSharedWindow

MSS = 1448


class TestBase:
    def test_initial_window(self):
        cc = CongestionControl(MSS)
        assert cc.cwnd == INITIAL_WINDOW_MSS * MSS

    def test_window_floor_is_one_mss(self):
        cc = CongestionControl(MSS)
        cc.cwnd = 10.0
        assert cc.window_bytes == MSS

    def test_invalid_mss(self):
        with pytest.raises(ValueError):
            CongestionControl(0)


class TestReno:
    def test_slow_start_doubles_per_rtt(self):
        cc = RenoCC(MSS)
        start = cc.cwnd
        cc.on_ack(int(start))  # a full window of ACKs
        assert cc.cwnd == pytest.approx(2 * start)

    def test_congestion_avoidance_additive(self):
        cc = RenoCC(MSS)
        cc.ssthresh = cc.cwnd  # leave slow start
        start = cc.cwnd
        cc.on_ack(int(start))
        assert cc.cwnd == pytest.approx(start + MSS, rel=0.01)

    def test_fast_retransmit_halves(self):
        cc = RenoCC(MSS)
        cc.cwnd = 100 * MSS
        cc.on_fast_retransmit()
        assert cc.cwnd == pytest.approx(50 * MSS)
        assert cc.ssthresh == pytest.approx(50 * MSS)

    def test_timeout_resets_to_one_mss(self):
        cc = RenoCC(MSS)
        cc.cwnd = 100 * MSS
        cc.on_timeout()
        assert cc.cwnd == MSS
        assert cc.ssthresh == pytest.approx(50 * MSS)

    def test_window_never_below_two_mss_after_loss(self):
        cc = RenoCC(MSS)
        cc.cwnd = float(MSS)
        cc.on_fast_retransmit()
        assert cc.ssthresh >= 2 * MSS

    def test_zero_ack_is_noop(self):
        cc = RenoCC(MSS)
        start = cc.cwnd
        cc.on_ack(0)
        assert cc.cwnd == start


class TestCubic:
    def test_slow_start_grows(self):
        cc = CubicCC(MSS, clock=lambda: 0.0)
        start = cc.cwnd
        cc.on_ack(MSS)
        assert cc.cwnd > start

    def test_cubic_growth_after_loss(self):
        clock = {"t": 0.0}
        cc = CubicCC(MSS, clock=lambda: clock["t"])
        cc.cwnd = 100 * MSS
        cc.ssthresh = 50 * MSS
        cc.on_fast_retransmit()
        w_after_loss = cc.cwnd
        # Advance time; window should grow back toward w_max.
        for step in range(50):
            clock["t"] += 0.01
            cc.on_ack(MSS)
        assert cc.cwnd > w_after_loss

    def test_timeout_collapses(self):
        cc = CubicCC(MSS, clock=lambda: 1.0)
        cc.cwnd = 80 * MSS
        cc.on_timeout()
        assert cc.cwnd == MSS

    def test_beta_decrease(self):
        cc = CubicCC(MSS, clock=lambda: 0.0)
        cc.cwnd = 100 * MSS
        cc.ssthresh = 1.0  # not slow start
        cc.on_fast_retransmit()
        assert cc.cwnd == pytest.approx(70 * MSS, rel=0.01)


class TestDctcp:
    def test_no_marks_behaves_like_reno_growth(self):
        cc = DctcpCC(MSS)
        cc.ssthresh = cc.cwnd
        start = cc.cwnd
        cc.on_ack(int(start), ecn_echo=False)
        assert cc.cwnd > start

    def test_alpha_rises_with_marks(self):
        cc = DctcpCC(MSS)
        cc.ssthresh = cc.cwnd  # congestion avoidance
        for _ in range(40):
            cc.on_ack(int(cc.cwnd), ecn_echo=True)
        assert cc.alpha > 0.3

    def test_full_marking_raises_alpha_after_a_window(self):
        cc = DctcpCC(MSS)
        cc.ssthresh = cc.cwnd
        before_alpha = cc.alpha
        # Two windows' worth of fully marked ACKs guarantees at least one
        # once-per-window alpha update despite window growth in between.
        cc.on_ack(int(cc.cwnd), ecn_echo=True)
        cc.on_ack(int(cc.cwnd), ecn_echo=True)
        assert cc.alpha > before_alpha

    def test_mark_in_slow_start_exits_slow_start(self):
        cc = DctcpCC(MSS)
        assert cc.in_slow_start
        cc.on_ack(MSS, ecn_echo=True)
        assert not cc.in_slow_start

    def test_unmarked_traffic_keeps_alpha_decaying(self):
        cc = DctcpCC(MSS)
        cc.ssthresh = cc.cwnd
        cc.alpha = 0.5
        for _ in range(30):
            cc.on_ack(int(cc.cwnd), ecn_echo=False)
        assert cc.alpha < 0.5


class TestVmCC:
    def test_flows_share_one_window(self):
        shared = VmSharedWindow(MSS)
        flows = [VmCC(MSS, shared=shared) for _ in range(4)]
        per_flow = flows[0].window_bytes
        assert per_flow == pytest.approx(shared.cwnd / 4, abs=MSS)

    def test_more_flows_means_smaller_slice(self):
        shared = VmSharedWindow(MSS)
        VmCC(MSS, shared=shared)
        one_flow = shared.per_flow_window()
        VmCC(MSS, shared=shared)
        assert shared.per_flow_window() == pytest.approx(one_flow / 2)

    def test_any_flow_ack_advances_shared_window(self):
        shared = VmSharedWindow(MSS)
        f1 = VmCC(MSS, shared=shared)
        f2 = VmCC(MSS, shared=shared)
        start = shared.cwnd
        f1.on_ack(MSS)
        f2.on_ack(MSS)
        assert shared.cwnd == pytest.approx(start + 2 * MSS)

    def test_any_flow_loss_cuts_shared_window(self):
        shared = VmSharedWindow(MSS)
        f1 = VmCC(MSS, shared=shared)
        VmCC(MSS, shared=shared)
        shared.cwnd = 100 * MSS
        shared.ssthresh = 50 * MSS
        f1.on_fast_retransmit()
        assert shared.cwnd == pytest.approx(50 * MSS)

    def test_close_unregisters_flow(self):
        shared = VmSharedWindow(MSS)
        f1 = VmCC(MSS, shared=shared)
        VmCC(MSS, shared=shared)
        assert shared.active_flows == 2
        f1.on_connection_close()
        assert shared.active_flows == 1

    def test_total_window_independent_of_flow_count(self):
        # The defining VMCC property: N flows never get more than the
        # one shared window in aggregate.
        shared = VmSharedWindow(MSS)
        flows = [VmCC(MSS, shared=shared) for _ in range(8)]
        total = sum(f.window_bytes for f in flows)
        assert total <= shared.cwnd + 8 * MSS  # floor slack only

    def test_requires_shared_window(self):
        with pytest.raises(ValueError):
            VmCC(MSS, shared=None)

    def test_mss_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VmCC(1200, shared=VmSharedWindow(MSS))
