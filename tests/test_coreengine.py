"""Tests for CoreEngine: registration, switching, and isolation."""

import pytest

from repro.core.coreengine import CoreEngine, TokenBucket
from repro.core.host import NetKernelHost
from repro.core.nqe import Nqe, NqeOp
from repro.cpu.core import Core
from repro.errors import ConfigurationError
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, mbps, usec


@pytest.fixture
def sim():
    return Simulator()


class TestTokenBucket:
    def test_consumes_up_to_burst(self, sim):
        bucket = TokenBucket(sim, rate_per_sec=1000.0, burst=100.0)
        assert bucket.try_consume(100.0)
        assert not bucket.try_consume(1.0)

    def test_refills_over_time(self, sim):
        bucket = TokenBucket(sim, rate_per_sec=1000.0, burst=100.0)
        bucket.try_consume(100.0)
        sim.timeout(0.05)
        sim.run()
        assert bucket.try_consume(50.0)

    def test_time_until(self, sim):
        bucket = TokenBucket(sim, rate_per_sec=100.0, burst=10.0)
        bucket.try_consume(10.0)
        assert bucket.time_until(10.0) == pytest.approx(0.1)

    def test_never_exceeds_burst(self, sim):
        bucket = TokenBucket(sim, rate_per_sec=1e3, burst=10.0)
        sim.timeout(100.0)
        sim.run()
        bucket._refill()
        assert bucket.tokens == pytest.approx(10.0)

    def test_burst_floor_keeps_bucket_usable(self, sim):
        # The bucket floors its burst at 1ms of rate so a single NQE can
        # ever pass even if the caller requests a microscopic burst.
        bucket = TokenBucket(sim, rate_per_sec=1e9, burst=1.0)
        assert bucket.burst == pytest.approx(1e6)

    def test_invalid_rate(self, sim):
        with pytest.raises(ConfigurationError):
            TokenBucket(sim, rate_per_sec=0.0, burst=1.0)

    def test_oversized_consume_does_not_widen_burst(self, sim):
        # Regression: an oversized request used to permanently widen the
        # burst, weakening the cap for the rest of the run.
        bucket = TokenBucket(sim, rate_per_sec=1000.0, burst=100.0)
        bucket.try_consume(500.0)
        assert bucket.burst == pytest.approx(100.0)

    def test_time_until_does_not_widen_burst(self, sim):
        bucket = TokenBucket(sim, rate_per_sec=1000.0, burst=100.0)
        bucket.time_until(500.0)
        assert bucket.burst == pytest.approx(100.0)

    def test_oversized_enforces_average_rate(self, sim):
        # An oversized op is admitted at a full bucket and runs a token
        # deficit, so back-to-back oversized ops still average the rate.
        bucket = TokenBucket(sim, rate_per_sec=1000.0, burst=100.0)
        assert bucket.try_consume(500.0)       # full bucket: admitted
        assert bucket.tokens == pytest.approx(-400.0)
        assert not bucket.try_consume(500.0)   # deficit: denied
        # Refilling back to full takes (500 tokens)/(1000/s) = 0.5 s,
        # i.e. exactly one 500-token op per 0.5 s -> 1000 tokens/s.
        assert bucket.time_until(500.0) == pytest.approx(0.5)
        sim.timeout(0.5)
        sim.run()
        assert bucket.try_consume(500.0)

    def test_refund_clamped_to_burst(self, sim):
        # Regression: the ops-failure refund used to add tokens without
        # clamping, letting the level exceed the configured burst.
        bucket = TokenBucket(sim, rate_per_sec=1000.0, burst=100.0)
        bucket.try_consume(50.0)
        bucket.refund(500.0)
        assert bucket.tokens == pytest.approx(100.0)


class TestRegistration:
    def test_register_assigns_unique_ids(self, sim):
        engine = CoreEngine(sim, Core(sim))
        vm_id, vm_dev = engine.register_vm("vm1", queue_sets=1)
        nsm_id, nsm_dev = engine.register_nsm("nsm1", queue_sets=2)
        assert vm_id != nsm_id
        assert vm_dev.role == "vm"
        assert nsm_dev.role == "nsm"
        assert len(nsm_dev.queue_sets) == 2

    def test_assign_requires_known_parties(self, sim):
        engine = CoreEngine(sim, Core(sim))
        vm_id, _ = engine.register_vm("vm1", queue_sets=1)
        with pytest.raises(ConfigurationError):
            engine.assign_vm(vm_id, 999)
        with pytest.raises(ConfigurationError):
            engine.assign_vm(999, vm_id)

    def test_deregister_vm_clears_state(self, sim):
        engine = CoreEngine(sim, Core(sim))
        vm_id, _ = engine.register_vm("vm1", queue_sets=1)
        nsm_id, _ = engine.register_nsm("nsm1", queue_sets=1)
        engine.assign_vm(vm_id, nsm_id)
        engine.table.insert((vm_id, 0, 1), nsm_id, 0)
        engine.deregister(vm_id)
        assert vm_id not in engine.vm_to_nsm
        assert len(engine.table) == 0

    def test_device_setup_cost_charged(self, sim):
        core = Core(sim)
        engine = CoreEngine(sim, core)
        engine.register_vm("vm1", queue_sets=1)
        assert core.busy_by_component["ce.device_setup"] > 0

    def test_invalid_batch_size(self, sim):
        with pytest.raises(ConfigurationError):
            CoreEngine(sim, Core(sim), batch_size=0)


def _throughput_host(sim, caps):
    """A NetKernel host with one NSM, VMs with given caps, and a sink."""
    from repro.stack.tcp.engine import TcpEngine

    # A 2G fabric and jumbo MSS keep the packet count (wall time) down;
    # the isolation mechanics under test are rate-relative.
    network = Network(sim, default_rate_bps=gbps(2),
                      default_delay_sec=usec(25))
    host = NetKernelHost(sim, network)
    nsm = host.add_nsm("nsm0", vcpus=2, stack="kernel",
                       stack_kwargs={"mss": 32000})
    sink = TcpEngine(sim, network, "sink", mss=32000)
    received = {}

    def add_sender(name, port, cap):
        listener = sink.socket()
        sink.bind(listener, port)
        sink.listen(listener, 32)
        received[name] = {"bytes": 0}

        def on_accept(lst):
            child = sink.accept(lst)
            if child is None:
                return

            def drain(conn):
                while True:
                    data = sink.recv(conn, 1 << 20)
                    if not data:
                        break
                    received[name]["bytes"] += len(data)

            child.on_readable = drain

        listener.on_accept_ready = on_accept
        vm = host.add_vm(name, vcpus=1, nsm=nsm)
        if cap is not None:
            host.coreengine.set_bandwidth_limit(vm.vm_id, cap)
        api = host.socket_api(vm)

        def sender():
            sock = yield from api.socket()
            yield from api.connect(sock, ("sink", port))
            deadline = sim.now + 0.6
            while sim.now < deadline:
                yield from api.send(sock, b"z" * 32768)
            yield from api.close(sock)

        vm.spawn(sender())
        return vm

    for index, (name, cap) in enumerate(caps.items()):
        add_sender(name, 9000 + index, cap)
    return host, received


class TestIsolation:
    def test_bandwidth_cap_enforced(self, sim):
        host, received = _throughput_host(sim, {"vm1": mbps(50)})
        sim.run(until=1.0)
        bits = received["vm1"]["bytes"] * 8
        assert bits <= 50e6 * 0.8 + 5e6  # 0.6s at the cap + burst slack
        assert bits >= 15e6              # and the VM is not starved

    def test_uncapped_vm_exceeds_capped_vm(self, sim):
        host, received = _throughput_host(
            sim, {"capped": mbps(30), "open": None})
        sim.run(until=1.0)
        assert received["open"]["bytes"] > 2 * received["capped"]["bytes"]

    def test_ops_limit_enforced(self, sim):
        host, received = _throughput_host(sim, {"vm1": None})
        vm = host.vms["vm1"]
        # 100 send-NQEs per second, 32KB each -> ~3.2 MB/s ceiling.
        host.coreengine.set_ops_limit(vm.vm_id, 100.0)
        sim.run(until=1.0)
        assert received["vm1"]["bytes"] <= 4e6

    def test_clear_bandwidth_limit(self, sim):
        host, received = _throughput_host(sim, {"vm1": mbps(20)})
        vm = host.vms["vm1"]

        def lift():
            host.coreengine.clear_bandwidth_limit(vm.vm_id)

        sim.call_later(0.3, lift)
        sim.run(until=1.0)
        # After lifting the cap the VM must beat a pure-20Mbps run
        # (0.6s at 20M would be 12e6 bits).
        assert received["vm1"]["bytes"] * 8 > 16e6

    def test_rate_limit_stall_counter(self, sim):
        host, received = _throughput_host(sim, {"vm1": mbps(10)})
        sim.run(until=1.0)
        assert host.coreengine.rate_limited_stalls > 0


class TestControlOpsAdmission:
    def test_control_ring_ops_are_rate_limited(self, sim):
        # Regression: job-queue (control) NQEs used to be popped before
        # any admission check, bypassing the §4.4 per-VM ops bucket.
        engine = CoreEngine(sim, Core(sim))
        nsm_id, nsm_dev = engine.register_nsm("nsm", queue_sets=1)
        vm_id, vm_dev = engine.register_vm("vm", queue_sets=1)
        engine.assign_vm(vm_id, nsm_id)
        engine.set_ops_limit(vm_id, 100.0)  # burst = 1 op

        control_ring, _ = vm_dev.produce_rings(vm_dev.queue_sets[0])
        for i in range(50):
            control_ring.push(Nqe(NqeOp.SOCKET, vm_id, 0, 100 + i),
                              owner="guest")
        vm_dev.ring_doorbell()
        sim.run(until=0.1)

        # 100 ops/s over 0.1 s plus the 1-op burst admits ~11 NQEs; the
        # pre-fix engine switches all 50 immediately.
        assert engine.nqes_switched <= 20
        assert engine.nqes_switched >= 5
        assert engine.rate_limited_stalls > 0


class _SlowScanEngine(CoreEngine):
    """CoreEngine whose per-device scan has an explicit suspension point,
    modelling any mid-pass yield (batch cost charging, backpressure...)
    so the kick-during-scan window can be hit deterministically."""

    def _service_device(self, reg):
        yield self.sim.timeout(1e-9)
        return (yield from super()._service_device(reg))


class TestDoorbellRace:
    def test_kick_mid_scan_is_not_lost(self, sim):
        # Regression (lost-doorbell wakeup race): a kick() that fires
        # while _run is suspended mid-scan succeeds the old doorbell and
        # installs a fresh one.  If the push landed after its rings were
        # scanned and the pass otherwise made no progress, an engine that
        # sleeps on the *fresh* doorbell sleeps forever — nobody will
        # ring it again.  The fix captures the doorbell before the scan.
        engine = _SlowScanEngine(sim, Core(sim))
        nsm_id, _ = engine.register_nsm("nsm", queue_sets=1)
        vma_id, vma_dev = engine.register_vm("vma", queue_sets=1)
        vmb_id, _ = engine.register_vm("vmb", queue_sets=1)
        engine.assign_vm(vma_id, nsm_id)
        engine.assign_vm(vmb_id, nsm_id)

        def producer():
            # The pass scans vma at t=1ns, vmb at 2ns, nsm at 3ns; this
            # push+kick lands at 2.5ns — after vma's rings were scanned,
            # while the engine is suspended on the nsm scan step.
            yield sim.timeout(2.5e-9)
            ring, _ = vma_dev.produce_rings(vma_dev.queue_sets[0])
            ring.push(Nqe(NqeOp.SOCKET, vma_id, 0, 7), owner="guest")
            vma_dev.ring_doorbell()

        sim.process(producer())
        sim.run(until=0.01)
        assert not vma_dev.produce_pending(), "push never scanned: stalled"
        assert engine.nqes_switched == 1


class TestAutoAssignment:
    def test_least_loaded_nsm_chosen(self, sim):
        engine = CoreEngine(sim, Core(sim))
        nsm_a, _ = engine.register_nsm("a", queue_sets=1)
        nsm_b, _ = engine.register_nsm("b", queue_sets=1)
        # Load NSM a with two live connections.
        engine.table.insert((90, 0, 1), nsm_a, 0)
        engine.table.insert((90, 0, 2), nsm_a, 0)
        vm_id, _ = engine.register_vm("vm", queue_sets=1)
        chosen = engine.assign_vm_auto(vm_id)
        assert chosen == nsm_b
        assert engine.vm_to_nsm[vm_id] == nsm_b

    def test_requires_an_nsm(self, sim):
        engine = CoreEngine(sim, Core(sim))
        vm_id, _ = engine.register_vm("vm", queue_sets=1)
        with pytest.raises(ConfigurationError):
            engine.assign_vm_auto(vm_id)

    def test_host_add_vm_without_nsm_balances(self, sim):
        host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                          default_delay_sec=usec(25)))
        host.add_nsm("n1", vcpus=1, stack="kernel")
        host.add_nsm("n2", vcpus=1, stack="kernel")
        vm = host.add_vm("vm1", vcpus=1)  # no NSM given
        assert vm.vm_id in host.coreengine.vm_to_nsm
        api = host.socket_api(vm)
        done = {}

        def app():
            sock = yield from api.socket()
            yield from api.bind(sock, 80)
            yield from api.listen(sock)
            done["ok"] = True

        vm.spawn(app())
        sim.run(until=1.0)
        assert done.get("ok")
