"""Tests for the synthetic AG trace generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.ag_trace import (
    AgTrace,
    aggregate,
    generate_ag_trace,
    generate_fleet,
    most_utilized,
)


class TestAgTrace:
    def test_basic_stats(self):
        trace = AgTrace("t", [10.0, 20.0, 30.0])
        assert trace.peak == 30.0
        assert trace.mean == pytest.approx(20.0)
        assert trace.mean_utilization == pytest.approx(0.2)

    def test_negative_values_clamped(self):
        trace = AgTrace("t", [-5.0, 5.0])
        assert trace.values[0] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AgTrace("t", [])

    def test_quantile(self):
        trace = AgTrace("t", list(range(100)))
        assert trace.quantile(0.5) == 50
        assert trace.quantile(0.99) == 99


class TestGenerator:
    def test_deterministic_under_seed(self):
        a = generate_ag_trace(seed=42)
        b = generate_ag_trace(seed=42)
        assert a.values == b.values

    def test_different_seeds_differ(self):
        assert (generate_ag_trace(seed=1).values
                != generate_ag_trace(seed=2).values)

    def test_fleet_profile_has_low_mean_utilization(self):
        fleet = generate_fleet(100, seed=5)
        mean_util = sum(t.mean_utilization for t in fleet) / len(fleet)
        assert mean_util < 0.06  # "very low most of the time"

    def test_hot_profile_is_bursty(self):
        traces = [generate_ag_trace(profile="hot", seed=s)
                  for s in range(40)]
        peaky = [t for t in traces if t.peak > 8 * max(t.mean, 0.1)]
        assert len(peaky) > len(traces) // 2

    def test_values_bounded(self):
        for seed in range(20):
            trace = generate_ag_trace(profile="hot", seed=seed)
            assert all(0.0 <= v <= 120.0 for v in trace.values)

    def test_length_matches_minutes(self):
        assert len(generate_ag_trace(minutes=30)) == 30

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_generator_never_produces_invalid_traces(self, seed):
        trace = generate_ag_trace(seed=seed)
        assert len(trace) == 60
        assert all(0.0 <= v <= 120.0 for v in trace.values)
        assert trace.peak >= trace.mean


class TestAggregate:
    def test_sums_per_interval(self):
        a = AgTrace("a", [1.0, 2.0])
        b = AgTrace("b", [10.0, 20.0])
        assert aggregate([a, b]) == [11.0, 22.0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            aggregate([AgTrace("a", [1.0]), AgTrace("b", [1.0, 2.0])])

    def test_empty(self):
        assert aggregate([]) == []

    def test_most_utilized_orders_by_mean(self):
        fleet = generate_fleet(50, seed=9)
        top = most_utilized(fleet, 3)
        assert len(top) == 3
        rest_max = max(t.mean for t in fleet if t not in top)
        assert min(t.mean for t in top) >= rest_max

    def test_aggregate_smoother_than_parts(self):
        """The statistical-multiplexing property: peak-to-mean of the sum
        is below the mean peak-to-mean of the parts."""
        fleet = generate_fleet(50, seed=21)
        agg = aggregate(fleet)
        agg_ratio = max(agg) / (sum(agg) / len(agg))
        part_ratios = [t.peak / max(t.mean, 1e-9) for t in fleet]
        assert agg_ratio < sum(part_ratios) / len(part_ratios)
