"""Documentation coverage: every public module, class, and function in
the library carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_NAME_PREFIXES = ("_",)


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith(EXEMPT_NAME_PREFIXES):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_docstring():
    missing = [m.__name__ for m in iter_modules() if not m.__doc__]
    assert not missing, f"modules missing docstrings: {missing}"


def test_every_public_class_and_function_has_docstring():
    missing = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_methods_documented_on_key_classes():
    """The user-facing API surface must be fully documented."""
    from repro.core.coreengine import CoreEngine
    from repro.core.guestlib import GuestLib
    from repro.core.host import NetKernelHost
    from repro.core.servicelib import ServiceLib
    from repro.stack.tcp.engine import TcpEngine

    missing = []
    for cls in (NetKernelHost, CoreEngine, GuestLib, ServiceLib, TcpEngine):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            if not inspect.getdoc(member):
                missing.append(f"{cls.__name__}.{name}")
    assert not missing, f"undocumented public methods: {missing}"
