"""Tests for the application models: epoll server, load gen, iperf.

Each app runs on both architectures through the same code — the
transparency property NetKernel promises (§4.1).
"""

import pytest

from repro.apps.epoll_server import EpollServer
from repro.apps.iperf import StreamReceiver, StreamSender
from repro.apps.load_gen import LoadGenerator, LoadStats
from repro.baseline.host import BaselineHost
from repro.core.host import NetKernelHost
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


def netkernel_env(sim, stack="kernel", server_vcpus=1, client_vcpus=2):
    network = Network(sim, default_rate_bps=gbps(10),
                      default_delay_sec=usec(25))
    host = NetKernelHost(sim, network)
    nsm_s = host.add_nsm("nsmS", vcpus=1, stack=stack)
    nsm_c = host.add_nsm("nsmC", vcpus=1, stack=stack)
    server_vm = host.add_vm("server", vcpus=server_vcpus, nsm=nsm_s)
    client_vm = host.add_vm("client", vcpus=client_vcpus, nsm=nsm_c)
    return (host, server_vm, client_vm, host.socket_api(server_vm),
            host.socket_api(client_vm), ("nsmS", 80))


def baseline_env(sim, server_vcpus=1, client_vcpus=2):
    network = Network(sim, default_rate_bps=gbps(10),
                      default_delay_sec=usec(25))
    host = BaselineHost(sim, network)
    server_vm = host.add_vm("server", vcpus=server_vcpus)
    client_vm = host.add_vm("client", vcpus=client_vcpus)
    return (host, server_vm, client_vm, host.socket_api(server_vm),
            host.socket_api(client_vm), ("server", 80))


@pytest.mark.parametrize("env_factory", [netkernel_env, baseline_env],
                         ids=["netkernel", "baseline"])
class TestEpollServerWithLoadGen:
    def test_serves_all_requests(self, env_factory):
        sim = Simulator()
        (_, server_vm, client_vm, api_s, api_c, remote) = env_factory(sim)
        server = EpollServer(sim, api_s, port=80, request_size=64,
                             response_size=64)
        server.start(server_vm)
        load = LoadGenerator(sim, api_c, remote, total_requests=60,
                             concurrency=8)
        sim.run(until=0.005)
        load.start(client_vm)
        sim.run(until=30.0)
        assert load.stats.completed == 60
        assert load.stats.errors == 0
        assert server.stats.requests == 60
        assert load.stats.rps > 0

    def test_latency_summary_fields(self, env_factory):
        sim = Simulator()
        (_, server_vm, client_vm, api_s, api_c, remote) = env_factory(sim)
        server = EpollServer(sim, api_s, port=80)
        server.start(server_vm)
        load = LoadGenerator(sim, api_c, remote, total_requests=20,
                             concurrency=4)
        sim.run(until=0.005)
        load.start(client_vm)
        sim.run(until=30.0)
        summary = load.stats.latency_summary()
        assert summary["min"] <= summary["median"] <= summary["max"]
        assert summary["mean"] > 0
        assert load.stats.percentile(50) <= load.stats.percentile(99)

    def test_keepalive_mode(self, env_factory):
        sim = Simulator()
        (_, server_vm, client_vm, api_s, api_c, remote) = env_factory(sim)
        server = EpollServer(sim, api_s, port=80, keepalive=True)
        server.start(server_vm)
        load = LoadGenerator(sim, api_c, remote, total_requests=40,
                             concurrency=4, keepalive=True)
        sim.run(until=0.005)
        load.start(client_vm)
        sim.run(until=30.0)
        assert load.stats.completed >= 40
        assert server.stats.requests >= 40


@pytest.mark.parametrize("env_factory", [netkernel_env, baseline_env],
                         ids=["netkernel", "baseline"])
class TestIperf:
    def test_stream_goodput_measured(self, env_factory):
        sim = Simulator()
        (_, server_vm, client_vm, api_s, api_c, remote) = env_factory(sim)
        receiver = StreamReceiver(sim, api_s, port=80)
        receiver.start(server_vm)
        sender = StreamSender(sim, api_c, remote, message_size=8192,
                              duration=0.05, streams=2)
        sim.run(until=0.005)
        sender.start(client_vm)
        sim.run(until=5.0)
        assert receiver.stats.bytes > 0
        assert receiver.stats.bytes == sender.stats.bytes
        assert sender.stats.goodput_gbps > 0


class TestLoadStats:
    def test_empty_summary(self):
        stats = LoadStats()
        summary = stats.latency_summary()
        assert summary == {"min": 0.0, "mean": 0.0, "stddev": 0.0,
                           "median": 0.0, "max": 0.0}
        assert stats.percentile(99) == 0.0
        assert stats.rps == 0.0

    def test_summary_math(self):
        stats = LoadStats()
        for latency in (0.001, 0.002, 0.003):
            stats.record(latency)
        summary = stats.latency_summary()
        assert summary["min"] == pytest.approx(1.0)
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["median"] == pytest.approx(2.0)
        assert summary["max"] == pytest.approx(3.0)
