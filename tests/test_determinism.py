"""Determinism: identical configurations must produce identical runs.

Reproducibility of experiments depends on the simulator being fully
deterministic (heap ties broken by insertion order, all randomness
seeded).
"""

from repro.core.host import NetKernelHost
from repro.experiments.fig09_fairness import _run_one
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.trace.ag_trace import generate_fleet
from repro.units import gbps, usec


def run_transfer_fingerprint():
    sim = Simulator()
    host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                      default_delay_sec=usec(25)))
    nsm = host.add_nsm("nsm0", vcpus=2, stack="kernel")
    server_vm = host.add_vm("srv", vcpus=2, nsm=nsm)
    client_vm = host.add_vm("cli", vcpus=1, nsm=nsm)
    api_s, api_c = host.socket_api(server_vm), host.socket_api(client_vm)
    trace = []

    def server():
        listener = yield from api_s.socket()
        yield from api_s.bind(listener, 80)
        yield from api_s.listen(listener)
        conn = yield from api_s.accept(listener)
        while True:
            data = yield from api_s.recv(conn, 65536)
            if not data:
                break
            trace.append((round(sim.now, 9), len(data)))

    def client():
        yield sim.timeout(0.001)
        sock = yield from api_c.socket()
        yield from api_c.connect(sock, ("nsm0", 80))
        yield from api_c.send(sock, b"m" * 150_000)
        yield from api_c.close(sock)

    server_vm.spawn(server())
    client_vm.spawn(client())
    sim.run(until=5.0)
    stats = host.coreengine.stats()
    return (tuple(trace), stats["nqes_switched"], stats["batches"],
            round(host.ce_core.busy_cycles, 3))


class TestDeterminism:
    def test_netkernel_run_is_reproducible(self):
        assert run_transfer_fingerprint() == run_transfer_fingerprint()

    def test_fairness_run_is_reproducible(self):
        first = _run_one(16, vm_level_cc=True, duration=0.3)
        second = _run_one(16, vm_level_cc=True, duration=0.3)
        assert first == second

    def test_trace_generation_is_reproducible(self):
        fleet_a = generate_fleet(30, seed=11)
        fleet_b = generate_fleet(30, seed=11)
        assert all(a.values == b.values for a, b in zip(fleet_a, fleet_b))
