"""Half-close (shutdown(SHUT_WR)) on both architectures: the classic
send-request / FIN / read-full-response pattern."""

import pytest

from repro.baseline.host import BaselineHost
from repro.core.host import NetKernelHost
from repro.errors import InvalidSocketStateError, NotConnectedError, \
    SocketError
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


def netkernel_env(sim):
    host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                      default_delay_sec=usec(25)))
    nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
    server_vm = host.add_vm("srv", vcpus=1, nsm=nsm)
    client_vm = host.add_vm("cli", vcpus=1, nsm=nsm)
    return (server_vm, client_vm, host.socket_api(server_vm),
            host.socket_api(client_vm), ("nsm0", 80))


def baseline_env(sim):
    host = BaselineHost(sim, Network(sim, default_rate_bps=gbps(10),
                                     default_delay_sec=usec(25)))
    server_vm = host.add_vm("srv", vcpus=1)
    client_vm = host.add_vm("cli", vcpus=1)
    return (server_vm, client_vm, host.socket_api(server_vm),
            host.socket_api(client_vm), ("srv", 80))


@pytest.mark.parametrize("env", [netkernel_env, baseline_env],
                         ids=["netkernel", "baseline"])
class TestHalfClose:
    def test_request_eof_response(self, env):
        """Client sends, shutdowns, and still reads the whole response."""
        sim = Simulator()
        server_vm, client_vm, api_s, api_c, addr = env(sim)
        request = b"Q" * 50_000
        response = b"R" * 80_000
        result = {}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            conn = yield from api_s.accept(listener)
            got = bytearray()
            while True:  # read until the client's FIN
                data = yield from api_s.recv(conn, 65536)
                if not data:
                    break
                got.extend(data)
            result["request"] = bytes(got)
            yield from api_s.send(conn, response)
            yield from api_s.close(conn)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_c.socket()
            yield from api_c.connect(sock, addr)
            yield from api_c.send(sock, request)
            yield from api_c.shutdown(sock)      # half-close: FIN
            got = bytearray()
            while True:
                data = yield from api_c.recv(sock, 65536)
                if not data:
                    break
                got.extend(data)
            result["response"] = bytes(got)
            yield from api_c.close(sock)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=20.0)
        assert result["request"] == request
        assert result["response"] == response

    def test_send_after_shutdown_rejected(self, env):
        sim = Simulator()
        server_vm, client_vm, api_s, api_c, addr = env(sim)
        outcome = {}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            yield from api_s.accept(listener)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_c.socket()
            yield from api_c.connect(sock, addr)
            yield from api_c.shutdown(sock)
            try:
                yield from api_c.send(sock, b"too late")
            except (InvalidSocketStateError, NotConnectedError,
                    SocketError):
                outcome["rejected"] = True

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=5.0)
        assert outcome.get("rejected")
