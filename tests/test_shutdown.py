"""Half-close (shutdown(SHUT_WR)) on both architectures: the classic
send-request / FIN / read-full-response pattern."""

import pytest

from repro.baseline.host import BaselineHost
from repro.core.host import NetKernelHost
from repro.errors import InvalidSocketStateError, NotConnectedError, \
    SocketError
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


def netkernel_env(sim):
    host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                      default_delay_sec=usec(25)))
    nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
    server_vm = host.add_vm("srv", vcpus=1, nsm=nsm)
    client_vm = host.add_vm("cli", vcpus=1, nsm=nsm)
    return (server_vm, client_vm, host.socket_api(server_vm),
            host.socket_api(client_vm), ("nsm0", 80))


def baseline_env(sim):
    host = BaselineHost(sim, Network(sim, default_rate_bps=gbps(10),
                                     default_delay_sec=usec(25)))
    server_vm = host.add_vm("srv", vcpus=1)
    client_vm = host.add_vm("cli", vcpus=1)
    return (server_vm, client_vm, host.socket_api(server_vm),
            host.socket_api(client_vm), ("srv", 80))


@pytest.mark.parametrize("env", [netkernel_env, baseline_env],
                         ids=["netkernel", "baseline"])
class TestHalfClose:
    def test_request_eof_response(self, env):
        """Client sends, shutdowns, and still reads the whole response."""
        sim = Simulator()
        server_vm, client_vm, api_s, api_c, addr = env(sim)
        request = b"Q" * 50_000
        response = b"R" * 80_000
        result = {}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            conn = yield from api_s.accept(listener)
            got = bytearray()
            while True:  # read until the client's FIN
                data = yield from api_s.recv(conn, 65536)
                if not data:
                    break
                got.extend(data)
            result["request"] = bytes(got)
            yield from api_s.send(conn, response)
            yield from api_s.close(conn)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_c.socket()
            yield from api_c.connect(sock, addr)
            yield from api_c.send(sock, request)
            yield from api_c.shutdown(sock)      # half-close: FIN
            got = bytearray()
            while True:
                data = yield from api_c.recv(sock, 65536)
                if not data:
                    break
                got.extend(data)
            result["response"] = bytes(got)
            yield from api_c.close(sock)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=20.0)
        assert result["request"] == request
        assert result["response"] == response

    def test_send_after_shutdown_rejected(self, env):
        sim = Simulator()
        server_vm, client_vm, api_s, api_c, addr = env(sim)
        outcome = {}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            yield from api_s.accept(listener)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_c.socket()
            yield from api_c.connect(sock, addr)
            yield from api_c.shutdown(sock)
            try:
                yield from api_c.send(sock, b"too late")
            except (InvalidSocketStateError, NotConnectedError,
                    SocketError):
                outcome["rejected"] = True

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=5.0)
        assert outcome.get("rejected")


class TestDeregisteredVmDrop:
    """NQEs in flight toward a VM that deregistered mid-delivery."""

    def test_dropped_event_frees_hugepage_buffer(self):
        # Regression: CoreEngine used to discard NQEs addressed to a
        # vanished VM without releasing their hugepage payload, leaking
        # the buffer for the lifetime of the region.
        from repro.core.coreengine import CoreEngine
        from repro.core.nqe import Nqe, NqeOp
        from repro.cpu.core import Core
        from repro.mem.hugepages import HugepageRegion

        sim = Simulator()
        engine = CoreEngine(sim, Core(sim))
        region = HugepageRegion(name="vm.hp")
        nsm_id, nsm_dev = engine.register_nsm("nsm", queue_sets=1)
        vm_id, _ = engine.register_vm("vm", queue_sets=1, hugepages=region)
        engine.assign_vm(vm_id, nsm_id)

        # The NSM has produced a data event for the VM...
        buffer = region.alloc(4096)
        buffer.write(b"d" * 4096)
        _, receive_ring = nsm_dev.produce_rings(nsm_dev.queue_sets[0])
        receive_ring.push(
            Nqe(NqeOp.DATA_ARRIVED, vm_id, 0, 1,
                data_ptr=buffer.buffer_id, size=4096),
            owner="servicelib")
        # ...but the VM shuts down before CoreEngine switches it.
        engine.deregister(vm_id)
        nsm_dev.ring_doorbell()
        sim.run(until=0.01)

        assert engine.nqes_dropped == 1
        assert engine.stats()["nqes_dropped"] == 1
        assert buffer.freed
        assert region.live_buffers == 0
        assert region.allocated == 0

    def test_drop_without_payload_only_counts(self):
        from repro.core.coreengine import CoreEngine
        from repro.core.nqe import Nqe, NqeOp
        from repro.cpu.core import Core

        sim = Simulator()
        engine = CoreEngine(sim, Core(sim))
        nsm_id, nsm_dev = engine.register_nsm("nsm", queue_sets=1)
        vm_id, _ = engine.register_vm("vm", queue_sets=1)
        engine.assign_vm(vm_id, nsm_id)

        completion_ring, _ = nsm_dev.produce_rings(nsm_dev.queue_sets[0])
        completion_ring.push(
            Nqe(NqeOp.OP_RESULT, vm_id, 0, 1), owner="servicelib")
        engine.deregister(vm_id)
        nsm_dev.ring_doorbell()
        sim.run(until=0.01)

        assert engine.nqes_dropped == 1
