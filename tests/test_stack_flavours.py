"""Tests for the kernel/mTCP stack flavours' cost behaviour."""

import pytest

from repro.cpu.core import Core
from repro.cpu.cost_model import DEFAULT_COST_MODEL
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.stack.cc.bbr import BbrCC
from repro.stack.kernel_stack import KernelStack
from repro.stack.mtcp_stack import MtcpStack
from repro.units import gbps, mbps, usec


@pytest.fixture
def sim():
    return Simulator()


def make(sim, cls, name, cores=1, **kwargs):
    network = Network(sim, default_rate_bps=gbps(10),
                      default_delay_sec=usec(25))
    return cls(sim, network, name, [Core(sim) for _ in range(cores)],
               **kwargs)


class TestKernelStack:
    def test_rx_costs_dominate_tx(self, sim):
        stack = make(sim, KernelStack, "k")
        assert (stack._segment_rx_cycles(8192)
                > stack._segment_tx_cycles(8192))

    def test_request_rate_calibration(self, sim):
        stack = make(sim, KernelStack, "k")
        # ~70K rps/core (Fig. 17) before app work.
        assert stack.request_rate_per_core() == pytest.approx(75.7e3,
                                                              rel=0.02)

    def test_pure_ack_cheap(self, sim):
        stack = make(sim, KernelStack, "k")
        assert stack._segment_tx_cycles(0) < stack._segment_tx_cycles(64)
        assert stack._segment_rx_cycles(0) < stack._segment_rx_cycles(64)

    def test_connection_costs_nonzero(self, sim):
        stack = make(sim, KernelStack, "k")
        assert stack._conn_setup_cycles() > 0
        assert stack._conn_teardown_cycles() > 0


class TestMtcpStack:
    def test_cheaper_than_kernel_per_request(self, sim):
        kernel = make(sim, KernelStack, "k1")
        mtcp = make(sim, MtcpStack, "m1")
        assert mtcp.request_rate_per_core() > 2 * kernel.request_rate_per_core()

    def test_core_count_envelope_enforced(self, sim):
        # §7.4 fn. 4: mTCP is only stable at 1/2/4/8 vCPUs.
        with pytest.raises(ValueError):
            make(sim, MtcpStack, "m2", cores=3)

    def test_core_count_override(self, sim):
        stack = make(sim, MtcpStack, "m3", cores=3,
                     strict_core_counts=False)
        assert len(stack.cores) == 3

    def test_supported_counts_ok(self, sim):
        for index, count in enumerate(MtcpStack.SUPPORTED_CORE_COUNTS):
            make(sim, MtcpStack, f"m4-{index}", cores=count)


class TestBbr:
    def test_startup_grows_exponentially(self):
        cc = BbrCC(1448, clock=lambda: 0.0)
        start = cc.cwnd
        cc.on_ack(int(start))
        assert cc.cwnd >= 2 * start

    def test_tracks_bandwidth_delay_product(self):
        clock = {"t": 0.0}
        cc = BbrCC(1448, clock=lambda: clock["t"])
        # Feed a steady 100 Mbps with 10ms RTT: BDP = 125 KB.
        for _ in range(50):
            clock["t"] += 0.01
            cc.on_ack(125_000, rtt=0.01)
        assert cc.min_rtt == pytest.approx(0.01)
        bdp = cc.bandwidth_estimate * cc.min_rtt
        assert cc.cwnd == pytest.approx(2.0 * bdp, rel=0.05)

    def test_ignores_isolated_loss(self):
        cc = BbrCC(1448)
        cc.cwnd = 100 * 1448
        cc.on_fast_retransmit()
        assert cc.cwnd == 100 * 1448

    def test_timeout_resets_model(self):
        clock = {"t": 0.0}
        cc = BbrCC(1448, clock=lambda: clock["t"])
        for _ in range(10):
            clock["t"] += 0.01
            cc.on_ack(50_000, rtt=0.01)
        cc.on_timeout()
        assert cc.cwnd == 4 * 1448
        assert cc.bandwidth_estimate == 0.0

    def test_functional_transfer_with_bbr(self, sim):
        """BBR drives a real transfer through the functional TCP."""
        from repro.stack.tcp.engine import TcpEngine

        network = Network(sim, default_rate_bps=mbps(100),
                          default_delay_sec=usec(200))
        def factory(mss):
            return BbrCC(mss, clock=lambda: sim.now)

        a = TcpEngine(sim, network, "A", cc_factory=factory)
        b = TcpEngine(sim, network, "B", cc_factory=factory)
        listener = b.socket()
        b.bind(listener, 80)
        b.listen(listener)
        received = bytearray()

        def on_accept(lst):
            child = b.accept(lst)

            def drain(conn):
                while True:
                    data = b.recv(conn, 1 << 20)
                    if not data:
                        break
                    received.extend(data)

            child.on_readable = drain

        listener.on_accept_ready = on_accept
        conn = a.socket()
        payload = b"b" * 200_000
        progress = {"sent": 0}

        def push(c):
            while progress["sent"] < len(payload):
                took = a.send(c, payload[progress["sent"]:])
                if took == 0:
                    return
                progress["sent"] += took
            a.close(c)

        conn.on_connected = push
        conn.on_writable = push
        a.connect(conn, ("B", 80))
        sim.run(until=10.0)
        assert len(received) == len(payload)
